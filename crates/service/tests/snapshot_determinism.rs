//! The persistence law: **restored session ≡ uninterrupted session,
//! byte for byte**, at every subsequent push / observe / checkpoint /
//! finish — for every openable colorer spec, every snapshot point, and
//! every engine config.
//!
//! Three layers of evidence:
//!
//! * a proptest that cuts a random session script at a random point,
//!   carries the snapshot blob to a **fresh host**, and byte-diffs the
//!   remainder of the transcript against the uninterrupted run;
//! * the adaptive-adversary game interrupted mid-game: the attacker
//!   reacts to every coloring, so one drifted byte after the restore
//!   would compound into a diverged transcript;
//! * the reactor's evict-to-disk over **real sockets**: a session cap
//!   of 1 forces two tenants to ping-pong through disk on every
//!   command, and the responses still match an uncapped reactor's.
//!
//! `stats` and `host_stats` are deliberately outside the law: the
//! query-cache counters they report are warm in the uninterrupted run
//! and cold after a restore (the *bytes* of every coloring still match
//! — incremental ≡ scratch is the engine's own law).

use proptest::prelude::*;
use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use sc_engine::{wire, ColorerSpec};
use sc_graph::generators;
use sc_service::Service;
use sc_stream::{EngineConfig, QuerySchedule};

/// SplitMix64, for reproducible scripts derived from one seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

/// Every colorer the service can open (`bcg20` needs a materialized
/// graph and is a documented open-time error; its state codec is
/// round-trip-tested at the engine layer).
fn openable_colorers() -> Vec<(&'static str, ColorerSpec)> {
    vec![
        ("robust", ColorerSpec::Robust { beta: None }),
        ("robust-beta", ColorerSpec::Robust { beta: Some(0.5) }),
        ("auto", ColorerSpec::Auto),
        ("alg3", ColorerSpec::RandEfficient),
        ("cgs22", ColorerSpec::Cgs22),
        ("bg18", ColorerSpec::Bg18 { buckets: None }),
        ("ps", ColorerSpec::PaletteSparsification { lists: Some(6) }),
        ("store-all", ColorerSpec::StoreAll),
        ("dynamic", ColorerSpec::DynamicSr { sparsity: None }),
        ("trivial", ColorerSpec::Trivial),
    ]
}

/// Engine configs worth distinguishing: chunking on/off, mid-stream
/// checkpoint schedules, incremental vs scratch queries.
fn engine_configs() -> Vec<EngineConfig> {
    vec![
        EngineConfig::default(),
        EngineConfig::per_edge(),
        EngineConfig::batched(7),
        EngineConfig { chunk_size: 16, schedule: QuerySchedule::EveryEdges(5), incremental: false },
        EngineConfig {
            chunk_size: 3,
            schedule: QuerySchedule::AtPrefixes(vec![2, 9, 30]),
            incremental: true,
        },
    ]
}

fn open_line(
    name: &str,
    spec: &ColorerSpec,
    n: usize,
    delta: usize,
    seed: u64,
    engine: &EngineConfig,
) -> String {
    let mut open = FlatObject::new();
    open.insert("cmd".into(), Scalar::Str("open".into()));
    open.insert("session".into(), Scalar::Str(name.into()));
    open.insert("n".into(), Scalar::Uint(n as u64));
    open.insert("delta".into(), Scalar::Uint(delta as u64));
    open.insert("seed".into(), Scalar::Uint(seed));
    open.insert("engine".into(), Scalar::Str(engine.wire_encode()));
    wire::colorer_to_wire(spec, &mut open);
    encode_object(&open)
}

/// Everything after the open: a random mix of the law's commands
/// (push / push_batch / observe / checkpoint), then observe + finish.
/// When `dynamic`, previously inserted edges are also retracted through
/// both signed vocabularies, so snapshots get cut among live deletions.
fn tail_script(name: &str, n: usize, delta: usize, seed: u64, dynamic: bool) -> Vec<String> {
    let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
    let edges: Vec<_> = generators::shuffled_edges(&g, seed ^ 0xFEED);
    let mut deletable: Vec<sc_graph::Edge> = Vec::new();
    let mut rng = Gen::new(seed ^ 0x5E55);
    let mut lines = Vec::new();
    let mut i = 0;
    while i < edges.len() {
        if dynamic && !deletable.is_empty() && rng.below(4) == 0 {
            let j = rng.below(deletable.len() as u64) as usize;
            let e = deletable.swap_remove(j);
            if rng.below(2) == 0 {
                lines.push(format!(
                    r#"{{"cmd":"push","session":"{name}","edge":"{}-{}","sign":"delete"}}"#,
                    e.u(),
                    e.v()
                ));
            } else {
                lines.push(format!(
                    r#"{{"cmd":"push_batch","session":"{name}","edges":"-{}-{}"}}"#,
                    e.u(),
                    e.v()
                ));
            }
            continue;
        }
        match rng.below(5) {
            0 => {
                lines.push(format!(
                    r#"{{"cmd":"push","session":"{name}","edge":"{}-{}"}}"#,
                    edges[i].u(),
                    edges[i].v()
                ));
                deletable.push(edges[i]);
                i += 1;
            }
            1 | 2 => {
                let k = 1 + rng.below(7) as usize;
                let end = (i + k).min(edges.len());
                let batch = wire::encode_edges(edges[i..end].iter().copied());
                lines.push(format!(
                    r#"{{"cmd":"push_batch","session":"{name}","edges":"{batch}"}}"#
                ));
                deletable.extend(edges[i..end].iter().copied());
                i = end;
            }
            3 => lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#)),
            _ => lines.push(format!(r#"{{"cmd":"checkpoint","session":"{name}"}}"#)),
        }
    }
    lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
    lines.push(format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
    lines
}

fn transcript(service: &mut Service, lines: &[String]) -> Vec<String> {
    lines.iter().filter_map(|l| service.respond(l)).collect()
}

/// Snapshots `name` out of `service`, asserting success, and returns
/// the blob.
fn snapshot_blob(service: &mut Service, name: &str) -> String {
    let response = service.respond(&format!(r#"{{"cmd":"snapshot","session":"{name}"}}"#)).unwrap();
    let obj = parse_object(&response).unwrap();
    assert_eq!(obj.get("ok").and_then(Scalar::as_bool), Some(true), "{response}");
    obj.get("snapshot").and_then(Scalar::as_str).expect("snapshot response carries blob").into()
}

/// Restores `blob` as `name` into `service`, asserting success.
fn restore_into(service: &mut Service, name: &str, blob: &str) {
    let mut restore = FlatObject::new();
    restore.insert("cmd".into(), Scalar::Str("restore".into()));
    restore.insert("session".into(), Scalar::Str(name.into()));
    restore.insert("snapshot".into(), Scalar::Str(blob.into()));
    let response = service.respond(&encode_object(&restore)).unwrap();
    assert!(response.contains("\"ok\":true"), "restore failed: {response}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Cut every colorer's session at a random point, move it to a
    /// fresh host through a snapshot blob, and the rest of the
    /// transcript is byte-identical to never having moved at all.
    #[test]
    fn restored_transcripts_match_uninterrupted_ones(seed in any::<u64>()) {
        let mut rng = Gen::new(seed);
        let n = 24 + rng.below(16) as usize;
        let delta = 3 + rng.below(4) as usize;
        let configs = engine_configs();
        for (name, spec) in openable_colorers() {
            let session_seed = rng.next();
            let engine = &configs[rng.below(configs.len() as u64) as usize];
            let mut lines = vec![open_line(name, &spec, n, delta, session_seed, engine)];
            let dynamic = matches!(spec, ColorerSpec::DynamicSr { .. });
            lines.extend(tail_script(name, n, delta, session_seed, dynamic));

            // Uninterrupted reference.
            let mut reference = Service::new();
            let uninterrupted = transcript(&mut reference, &lines);

            // Interrupted run: cut anywhere after the open (a snapshot
            // needs a session), including right before the finish.
            let cut = 1 + rng.below(lines.len() as u64 - 1) as usize;
            let mut before = Service::new();
            let head = transcript(&mut before, &lines[..cut]);
            let blob = snapshot_blob(&mut before, name);
            drop(before); // the source host is gone; only bytes survive
            let mut after = Service::new();
            restore_into(&mut after, name, &blob);
            let tail = transcript(&mut after, &lines[cut..]);

            let stitched: Vec<String> = head.into_iter().chain(tail).collect();
            prop_assert_eq!(
                &stitched,
                &uninterrupted,
                "{} diverged after restore at cut {} (engine {}, seed {})",
                name,
                cut,
                engine.wire_encode(),
                seed
            );
        }
    }
}

/// The adaptive game, interrupted: the attacker chooses each edge from
/// the previous coloring, so the interrupted transcript only matches if
/// every restored response is byte-exact.
mod game {
    use super::*;
    use sc_adversary::{Adversary, MonochromaticAttacker, OscillationAttacker};
    use sc_graph::Graph;
    use sc_service::service::parse_coloring;

    /// Plays `rounds` of the game, snapshotting to a fresh host after
    /// `snap_at` rounds (`None` = never), and returns every raw
    /// response line the client saw (snapshot/restore excluded — they
    /// are the transport, not the transcript). With `oscillating`, the
    /// attacker is the deletion-aware [`OscillationAttacker`] and
    /// deletions travel as `"sign":"delete"` pushes.
    fn game_transcript(
        victim: &ColorerSpec,
        n: usize,
        delta: usize,
        rounds: usize,
        seed: u64,
        snap_at: Option<usize>,
        oscillating: bool,
    ) -> Vec<String> {
        let mut service = Service::new();
        let name = "game";
        let engine = EngineConfig::per_edge();
        let mut transcript = Vec::new();
        let drive = |service: &mut Service, line: &str, transcript: &mut Vec<String>| {
            let response = service.respond(line).unwrap();
            assert!(response.contains("\"ok\":true"), "{response}");
            transcript.push(response);
        };

        drive(&mut service, &open_line(name, victim, n, delta, seed, &engine), &mut transcript);
        let mut attacker: Box<dyn Adversary> = if oscillating {
            Box::new(OscillationAttacker::new(n, delta, seed))
        } else {
            Box::new(MonochromaticAttacker::new(n, delta, seed))
        };
        let mut graph = Graph::empty(n);
        let observe = format!(r#"{{"cmd":"observe","session":"{name}"}}"#);
        drive(&mut service, &observe, &mut transcript);

        for round in 1..=rounds {
            let coloring = {
                let obj = parse_object(transcript.last().unwrap()).unwrap();
                let text = obj.get("coloring").and_then(Scalar::as_str).unwrap();
                parse_coloring(text, n).unwrap()
            };
            let Some(t) = attacker.next_token(&coloring, &graph) else { break };
            let e = t.edge;
            let push = if t.is_insert() {
                graph.add_edge(e);
                format!(r#"{{"cmd":"push","session":"{name}","edge":"{}-{}"}}"#, e.u(), e.v())
            } else {
                graph.remove_edge(e);
                format!(
                    r#"{{"cmd":"push","session":"{name}","edge":"{}-{}","sign":"delete"}}"#,
                    e.u(),
                    e.v()
                )
            };
            drive(&mut service, &push, &mut transcript);
            drive(&mut service, &observe, &mut transcript);

            if snap_at == Some(round) {
                let blob = snapshot_blob(&mut service, name);
                service = Service::new();
                restore_into(&mut service, name, &blob);
            }
        }
        drive(&mut service, &format!(r#"{{"cmd":"finish","session":"{name}"}}"#), &mut transcript);
        transcript
    }

    #[test]
    fn snapshot_during_the_adaptive_game_changes_nothing() {
        let (n, delta, rounds, seed) = (40, 5, 60, 11);
        for (victim, oscillating) in [
            (ColorerSpec::Robust { beta: None }, false),
            (ColorerSpec::Cgs22, false),
            (ColorerSpec::PaletteSparsification { lists: Some(4) }, false),
            (ColorerSpec::DynamicSr { sparsity: None }, true),
        ] {
            let uninterrupted =
                game_transcript(&victim, n, delta, rounds, seed, None, oscillating);
            for snap_at in [1, rounds / 2, rounds] {
                let interrupted =
                    game_transcript(&victim, n, delta, rounds, seed, Some(snap_at), oscillating);
                assert_eq!(
                    interrupted, uninterrupted,
                    "{victim:?} diverged after mid-game snapshot at round {snap_at}"
                );
            }
        }
    }
}

/// Evict-to-disk over real sockets: with a session cap of 1 and a
/// snapshot dir, two tenants on one connection evict each other through
/// disk on nearly every command — and the responses still match an
/// uncapped reactor byte for byte.
mod sockets {
    use sc_cluster::{Reactor, Tcp, Transport as _};
    use std::time::Duration;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sc-snaplaw-{}-{tag}", std::process::id()))
    }

    #[test]
    fn reactor_evict_to_disk_replays_byte_identically_over_sockets() {
        let dir = scratch_dir("reactor");
        let _ = std::fs::remove_dir_all(&dir);

        let mut capped = Reactor::bind("127.0.0.1:0")
            .unwrap()
            .with_max_sessions(1)
            .with_snapshot_dir(dir.clone());
        let capped_addr = capped.local_addr().unwrap().to_string();
        let mut plain = Reactor::bind("127.0.0.1:0").unwrap();
        let plain_addr = plain.local_addr().unwrap().to_string();
        let capped_handle = std::thread::spawn(move || capped.run(Some(1)).unwrap());
        let plain_handle = std::thread::spawn(move || plain.run(Some(1)).unwrap());

        let mut to_capped = Tcp::connect(&capped_addr).unwrap();
        let mut to_plain = Tcp::connect(&plain_addr).unwrap();

        // Two tenants under a cap of one: every switch of session is an
        // LRU eviction to disk plus a transparent restore.
        let lines = [
            r#"{"cmd":"open","session":"a","n":24,"delta":4,"colorer":"robust","seed":5}"#
                .to_string(),
            r#"{"cmd":"open","session":"b","n":24,"delta":4,"colorer":"cgs22","seed":6}"#
                .to_string(),
            r#"{"cmd":"push_batch","session":"a","edges":"0-1 1-2 2-3 3-4"}"#.to_string(),
            r#"{"cmd":"push_batch","session":"b","edges":"5-6 6-7 7-8"}"#.to_string(),
            r#"{"cmd":"observe","session":"a"}"#.to_string(),
            r#"{"cmd":"checkpoint","session":"b"}"#.to_string(),
            r#"{"cmd":"push","session":"a","edge":"4-5"}"#.to_string(),
            r#"{"cmd":"observe","session":"b"}"#.to_string(),
            r#"{"cmd":"finish","session":"a"}"#.to_string(),
            r#"{"cmd":"finish","session":"b"}"#.to_string(),
        ];
        for line in &lines {
            to_capped.send(line).unwrap();
            to_plain.send(line).unwrap();
            let evicted = to_capped.recv(Duration::from_secs(10)).unwrap();
            let reference = to_plain.recv(Duration::from_secs(10)).unwrap();
            assert!(reference.contains("\"ok\":true"), "{reference}");
            assert_eq!(evicted, reference, "evict-to-disk leaked into {line}");
        }

        drop(to_capped);
        drop(to_plain);
        capped_handle.join().unwrap();
        plain_handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
