//! The multi-tenant determinism law.
//!
//! A service hosting K named sessions must be observationally identical
//! to K single-session services: interleaving the sessions' command
//! streams in *any* order yields, per session, byte-identical response
//! lines to running that session alone — for every streaming colorer
//! the workspace exposes and every thread count of the script runner.
//! This is what makes the serving layer safe to scale: tenants cannot
//! perturb each other, deliberately or accidentally.

use proptest::prelude::*;
use sc_engine::{wire, ColorerSpec};
use sc_graph::generators;
use sc_service::Service;

/// SplitMix64, for reproducible interleavings derived from one seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

/// Every colorer the service can open without a materialized graph
/// (`bcg20` sizes its palette from exact degeneracy and is therefore a
/// documented open-time error, covered in the crate's unit tests).
fn openable_colorers() -> Vec<(&'static str, ColorerSpec)> {
    vec![
        ("robust", ColorerSpec::Robust { beta: None }),
        ("robust-beta", ColorerSpec::Robust { beta: Some(0.5) }),
        ("auto", ColorerSpec::Auto),
        ("alg3", ColorerSpec::RandEfficient),
        ("cgs22", ColorerSpec::Cgs22),
        ("bg18", ColorerSpec::Bg18 { buckets: None }),
        ("ps", ColorerSpec::PaletteSparsification { lists: Some(6) }),
        ("store-all", ColorerSpec::StoreAll),
        ("dynamic", ColorerSpec::DynamicSr { sparsity: None }),
        ("trivial", ColorerSpec::Trivial),
    ]
}

/// Builds one session's full command-line sequence: open, a mix of
/// push / push_batch / observe / checkpoint / stats, then finish.
/// Dynamic colorers additionally get turnstile traffic: previously
/// inserted edges are retracted through both signed vocabularies
/// (`"sign":"delete"` on `push`, `-u-v` tokens on `push_batch`).
fn session_script(
    name: &str,
    spec: &ColorerSpec,
    n: usize,
    delta: usize,
    seed: u64,
) -> Vec<String> {
    let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
    let edges: Vec<_> = generators::shuffled_edges(&g, seed ^ 0xFEED);
    let dynamic = matches!(spec, ColorerSpec::DynamicSr { .. });
    let mut deletable: Vec<sc_graph::Edge> = Vec::new();
    let mut rng = Gen::new(seed ^ 0x5E55);
    let mut open = sc_engine::flatjson::FlatObject::new();
    open.insert("cmd".into(), sc_engine::flatjson::Scalar::Str("open".into()));
    open.insert("session".into(), sc_engine::flatjson::Scalar::Str(name.into()));
    open.insert("n".into(), sc_engine::flatjson::Scalar::Uint(n as u64));
    open.insert("delta".into(), sc_engine::flatjson::Scalar::Uint(delta as u64));
    open.insert("seed".into(), sc_engine::flatjson::Scalar::Uint(seed));
    wire::colorer_to_wire(spec, &mut open);
    let mut lines = vec![sc_engine::flatjson::encode_object(&open)];
    let mut i = 0;
    while i < edges.len() {
        if dynamic && !deletable.is_empty() && rng.below(4) == 0 {
            let j = rng.below(deletable.len() as u64) as usize;
            let e = deletable.swap_remove(j);
            if rng.below(2) == 0 {
                lines.push(format!(
                    r#"{{"cmd":"push","session":"{name}","edge":"{}-{}","sign":"delete"}}"#,
                    e.u(),
                    e.v()
                ));
            } else {
                lines.push(format!(
                    r#"{{"cmd":"push_batch","session":"{name}","edges":"-{}-{}"}}"#,
                    e.u(),
                    e.v()
                ));
            }
            continue;
        }
        match rng.below(5) {
            0 => {
                lines.push(format!(
                    r#"{{"cmd":"push","session":"{name}","edge":"{}-{}"}}"#,
                    edges[i].u(),
                    edges[i].v()
                ));
                deletable.push(edges[i]);
                i += 1;
            }
            1 | 2 => {
                let k = 1 + rng.below(7) as usize;
                let end = (i + k).min(edges.len());
                let batch = wire::encode_edges(edges[i..end].iter().copied());
                lines.push(format!(
                    r#"{{"cmd":"push_batch","session":"{name}","edges":"{batch}"}}"#
                ));
                deletable.extend(edges[i..end].iter().copied());
                i = end;
            }
            3 => lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#)),
            _ => lines.push(format!(r#"{{"cmd":"{}","session":"{name}"}}"#, {
                if rng.below(2) == 0 {
                    "checkpoint"
                } else {
                    "stats"
                }
            })),
        }
    }
    lines.push(format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
    lines.push(format!(r#"{{"cmd":"stats","session":"{name}"}}"#));
    lines.push(format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// K interleaved tenants ≡ K isolated runs, byte for byte, per
    /// session — over all colorers and a random interleaving.
    #[test]
    fn interleaved_sessions_match_isolated_runs(seed in any::<u64>()) {
        let mut rng = Gen::new(seed);
        let n = 24 + rng.below(16) as usize;
        let delta = 3 + rng.below(4) as usize;
        let scripts: Vec<(String, Vec<String>)> = openable_colorers()
            .into_iter()
            .map(|(name, spec)| {
                let session_seed = rng.next();
                (name.to_string(), session_script(name, &spec, n, delta, session_seed))
            })
            .collect();

        // Isolated reference: one fresh service per session.
        let isolated: Vec<Vec<String>> = scripts
            .iter()
            .map(|(_, lines)| {
                let mut service = Service::new();
                lines.iter().filter_map(|l| service.respond(l)).collect()
            })
            .collect();

        // Interleaved run: one service, sessions advanced in a random
        // global order (per-session order preserved).
        let mut cursors = vec![0usize; scripts.len()];
        let mut service = Service::new();
        let mut interleaved: Vec<Vec<String>> = vec![Vec::new(); scripts.len()];
        loop {
            let live: Vec<usize> = (0..scripts.len())
                .filter(|&s| cursors[s] < scripts[s].1.len())
                .collect();
            if live.is_empty() {
                break;
            }
            let s = live[rng.below(live.len() as u64) as usize];
            let line = &scripts[s].1[cursors[s]];
            cursors[s] += 1;
            if let Some(response) = service.respond(line) {
                interleaved[s].push(response);
            }
        }
        prop_assert!(service.session_names().is_empty(), "every session finished");
        for (s, (name, _)) in scripts.iter().enumerate() {
            prop_assert_eq!(
                &interleaved[s],
                &isolated[s],
                "tenant {} diverged under interleaving (seed {})",
                name,
                seed
            );
        }

        // And the script runner agrees with line-at-a-time responding,
        // for several thread counts, on the same interleaving.
        let mut cursors = vec![0usize; scripts.len()];
        let mut rng2 = Gen::new(seed ^ 0x1234);
        let mut script_text = String::new();
        loop {
            let live: Vec<usize> = (0..scripts.len())
                .filter(|&s| cursors[s] < scripts[s].1.len())
                .collect();
            if live.is_empty() {
                break;
            }
            let s = live[rng2.below(live.len() as u64) as usize];
            script_text.push_str(&scripts[s].1[cursors[s]]);
            script_text.push('\n');
            cursors[s] += 1;
        }
        let line_by_line = {
            let mut service = Service::new();
            let mut out = String::new();
            for line in script_text.lines() {
                if let Some(response) = service.respond(line) {
                    out.push_str(&response);
                    out.push('\n');
                }
            }
            out
        };
        for threads in [1usize, 4] {
            let mut service = Service::with_threads(threads);
            prop_assert_eq!(
                service.run_script(&script_text),
                line_by_line.clone(),
                "run_script with {} threads diverged (seed {})",
                threads,
                seed
            );
        }
    }
}
