//! The adaptive-adversary game played over the service line protocol.
//!
//! [`sc_adversary::run_game`] referees the game against an in-process
//! colorer; this module plays the *same* game where the victim lives
//! behind a [`Service`] and every interaction is a literal protocol
//! line — `open`, then `push`/`observe` per round — exactly what a
//! remote client (or a future networked worker) would send. The
//! adversary reacts to the coloring parsed back out of each `observe`
//! response, so the test below is end-to-end evidence that colorings
//! survive the wire: any encode/decode drift would change the adaptive
//! transcript and diverge from the in-process referee.

use crate::service::{parse_coloring, Service};
use sc_adversary::{Adversary, GameReport};
use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use sc_engine::{wire, ColorerSpec};
use sc_graph::{Coloring, Graph};
use sc_stream::EngineConfig;

/// Sends one protocol line and decodes the response object, erroring on
/// `"ok": false`.
fn call(service: &mut Service, request: &FlatObject) -> Result<FlatObject, String> {
    let line = encode_object(request);
    let response = service.respond(&line).ok_or("command line produced no response")?;
    let obj = parse_object(&response).map_err(|e| format!("unparseable response: {e}"))?;
    match obj.get("ok").and_then(Scalar::as_bool) {
        Some(true) => Ok(obj),
        _ => Err(obj
            .get("error")
            .and_then(Scalar::as_str)
            .unwrap_or("request failed without an error message")
            .to_string()),
    }
}

fn observe(service: &mut Service, session: &str, n: usize) -> Result<(Coloring, usize), String> {
    let mut request = FlatObject::new();
    request.insert("cmd".into(), Scalar::Str("observe".into()));
    request.insert("session".into(), Scalar::Str(session.to_string()));
    let obj = call(service, &request)?;
    let text = obj.get("coloring").and_then(Scalar::as_str).ok_or("observe lacks coloring")?;
    let colors = obj.get("colors").and_then(Scalar::as_u64).ok_or("observe lacks colors")? as usize;
    Ok((parse_coloring(text, n)?, colors))
}

/// Referees a game between a service-hosted `victim` and `adversary` on
/// `n` vertices for at most `max_rounds` insertions — the protocol twin
/// of [`sc_adversary::run_game_with_config`], producing an identical
/// [`GameReport`] for identical seeds (the `config` controls the query
/// path; per-edge observation is forced by the model, as in-process).
///
/// # Errors
/// Propagates protocol errors (unbuildable victims, malformed
/// responses); the game itself never errors.
pub fn run_game_via_service<A: Adversary + ?Sized>(
    victim: &ColorerSpec,
    adversary: &mut A,
    n: usize,
    delta: usize,
    max_rounds: usize,
    victim_seed: u64,
    config: EngineConfig,
) -> Result<GameReport, String> {
    let mut service = Service::new();
    let session = "game";

    let mut open = FlatObject::new();
    open.insert("cmd".into(), Scalar::Str("open".into()));
    open.insert("session".into(), Scalar::Str(session.to_string()));
    open.insert("n".into(), Scalar::Uint(n as u64));
    open.insert("delta".into(), Scalar::Uint(delta as u64));
    open.insert("seed".into(), Scalar::Uint(victim_seed));
    // The adaptive model forces per-edge observation; the rest of the
    // config (query path) passes through.
    let engine = EngineConfig { chunk_size: 1, ..config };
    open.insert("engine".into(), Scalar::Str(engine.wire_encode()));
    wire::colorer_to_wire(victim, &mut open);
    call(&mut service, &open)?;

    let mut graph = Graph::empty(n);
    let mut improper = 0usize;
    let mut first_failure = None;
    let mut max_colors = 0usize;
    let mut rounds = 0usize;

    // Initial observation: the adversary sees the empty-graph coloring
    // before its first move, exactly as in the in-process referee.
    let (mut output, colors) = observe(&mut service, session, n)?;
    let _ = colors; // empty-graph colors are not part of the report

    for round in 1..=max_rounds {
        let Some(e) = adversary.next_edge(&output, &graph) else { break };
        graph.add_edge(e);
        let mut push = FlatObject::new();
        push.insert("cmd".into(), Scalar::Str("push".into()));
        push.insert("session".into(), Scalar::Str(session.to_string()));
        push.insert("edge".into(), Scalar::Str(format!("{}-{}", e.u(), e.v())));
        call(&mut service, &push)?;
        rounds = round;

        let (coloring, colors) = observe(&mut service, session, n)?;
        max_colors = max_colors.max(colors);
        output = coloring;
        if !output.is_proper_total(&graph) {
            improper += 1;
            if first_failure.is_none() {
                first_failure = Some(round);
            }
        }
    }

    let mut finish = FlatObject::new();
    finish.insert("cmd".into(), Scalar::Str("finish".into()));
    finish.insert("session".into(), Scalar::Str(session.to_string()));
    call(&mut service, &finish)?;

    Ok(GameReport {
        rounds,
        deletions: 0,
        improper_outputs: improper,
        first_failure_round: first_failure,
        max_colors,
        final_graph: graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_adversary::{run_game_with_config, MonochromaticAttacker, ObliviousReplay};
    use sc_graph::generators;

    /// The protocol twin must reproduce the in-process referee's
    /// transcript exactly — for a *feedback* adversary, so any coloring
    /// drift across the wire would compound and diverge.
    #[test]
    fn service_game_matches_in_process_game() {
        let (n, delta, rounds, seed) = (60, 6, 150, 11);
        for victim in [
            ColorerSpec::Robust { beta: None },
            ColorerSpec::StoreAll,
            ColorerSpec::PaletteSparsification { lists: Some(4) },
        ] {
            let via_service = {
                let mut attacker = MonochromaticAttacker::new(n, delta, seed);
                run_game_via_service(
                    &victim,
                    &mut attacker,
                    n,
                    delta,
                    rounds,
                    seed,
                    EngineConfig::per_edge(),
                )
                .unwrap()
            };
            let in_process = {
                let mut attacker = MonochromaticAttacker::new(n, delta, seed);
                let mut colorer = victim.build(n, delta, seed, None).unwrap();
                run_game_with_config(
                    &mut colorer,
                    &mut attacker,
                    n,
                    rounds,
                    EngineConfig::per_edge(),
                )
            };
            assert_eq!(via_service.rounds, in_process.rounds, "{victim:?}");
            assert_eq!(via_service.improper_outputs, in_process.improper_outputs, "{victim:?}");
            assert_eq!(
                via_service.first_failure_round, in_process.first_failure_round,
                "{victim:?}"
            );
            assert_eq!(via_service.max_colors, in_process.max_colors, "{victim:?}");
            assert_eq!(via_service.final_graph.m(), in_process.final_graph.m(), "{victim:?}");
        }
    }

    #[test]
    fn replay_game_over_the_service_survives() {
        let g = generators::gnp_with_max_degree(40, 5, 0.4, 2);
        let edges: Vec<_> = generators::shuffled_edges(&g, 2);
        let mut adversary = ObliviousReplay::new(edges.iter().copied());
        let report = run_game_via_service(
            &ColorerSpec::Robust { beta: None },
            &mut adversary,
            40,
            5,
            10_000,
            3,
            EngineConfig::per_edge(),
        )
        .unwrap();
        assert_eq!(report.rounds, edges.len());
        assert!(report.survived());
    }

    #[test]
    fn unbuildable_victims_error_cleanly() {
        let mut adversary = MonochromaticAttacker::new(10, 3, 1);
        let e = run_game_via_service(
            &ColorerSpec::Bcg20 { epsilon: 0.5 },
            &mut adversary,
            10,
            3,
            10,
            1,
            EngineConfig::per_edge(),
        )
        .unwrap_err();
        assert!(e.contains("bcg20"), "{e}");
    }
}
