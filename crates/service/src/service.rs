//! The session host and its flat-JSON line protocol.
//!
//! One request object per line in, one canonical response object per
//! line out. Requests name a session (`"session"`) and a command
//! (`"cmd"`); responses echo both plus `"ok"`. The full command set:
//!
//! ```text
//! {"cmd":"open","session":"a","n":100,"delta":8,"colorer":"robust","seed":7}
//! {"cmd":"push","session":"a","edge":"0-1"}
//! {"cmd":"push","session":"a","edge":"0-1","sign":"delete"}
//! {"cmd":"push_batch","session":"a","edges":"1-2 2-3 3-4"}
//! {"cmd":"push_batch","session":"a","edges":"+1-2 -1-2 +2-3"}
//! {"cmd":"observe","session":"a"}
//! {"cmd":"checkpoint","session":"a"}
//! {"cmd":"stats","session":"a"}
//! {"cmd":"finish","session":"a"}
//! {"cmd":"snapshot","session":"a"}
//! {"cmd":"restore","session":"a","snapshot":"…"}
//! {"cmd":"run_job","session":"j","spec":"…","shard":0,"of":4}
//! ```
//!
//! `open` reuses the scenario wire vocabulary for its algorithm fields
//! ([`sc_engine::wire::colorer_from_wire`]: `"colorer"` plus per-spec
//! parameters like `"beta"` / `"buckets"`) and an optional `"engine"`
//! string ([`EngineConfig::wire_decode`]); `"delta"` defaults to `n − 1`
//! and `"seed"` to 7. Edges travel as `"u-v"` tokens
//! ([`sc_engine::wire::decode_edges`]), validated against the session's
//! `n`. Unknown keys and unknown commands are errors, never silently
//! ignored.
//!
//! **Turnstile streams**: `push` takes an optional `"sign"` field
//! (`"insert"`, the default, or `"delete"`), and `push_batch` accepts
//! signed tokens (`"+u-v"` / `"-u-v"`; bare `u-v` means insert —
//! [`sc_stream::decode_signed_list`]). A batch is applied
//! **atomically**: if any token is invalid — a deletion of a
//! never-inserted edge, or any deletion through an insert-only colorer
//! — the whole command errors (naming the offending edge) and the
//! session state is unchanged.
//!
//! `snapshot` serializes a session's entire state — colorer state blob,
//! pending tail, checkpoint history, engine config, and the spec
//! vocabulary needed to rebuild the colorer — into one canonical string
//! (itself a flat-JSON object) returned in the `"snapshot"` response
//! field. `restore` opens a session from such a blob; the restored
//! session then answers **byte-identically** to the uninterrupted
//! original at every subsequent command (the persistence law,
//! `crates/service/tests/snapshot_determinism.rs`). The same blob
//! format backs [`Service::with_snapshot_dir`] evict-to-disk and
//! `sc-cluster` session migration.
//!
//! `run_job` is the **worker half of cluster sharding** (`sc-cluster`):
//! a stateless command that carries a whole [`ShardJob`] spec file (the
//! `"spec"` string is the [`ShardJob::encode`] text, newlines escaped by
//! the line codec) plus a `"shard"`/`"of"` slice selector, runs the
//! deterministic [`sc_engine::shard::partition`] slice through the
//! ordinary [`Runner`], and answers with an `"output"` string holding
//! the [`sc_engine::shard::encode_worker_output`] file verbatim. It
//! opens no tenant session and touches none — the `"session"` name is
//! just a correlation id — so any `streamcolor serve` process (stdio
//! child or TCP listener) doubles as a remote shard worker with zero new
//! wire vocabulary. An optional `"threads"` field (default 1) sets the
//! worker-internal `Runner` thread count; the output is identical for
//! every value.
//!
//! Responses are canonical ([`sc_engine::flatjson::encode_object`]:
//! sorted keys,
//! shortest-round-trip numbers), carry no wall-clock fields, and each
//! session's state is a deterministic function of its own command
//! sequence — which together give the protocol law the golden-file CI
//! job and the determinism property test pin down: **byte-identical
//! output across runs, interleavings, and thread counts**.

use sc_engine::flatjson::{encode_object, parse_object, FlatObject, Scalar};
use sc_engine::shard::ShardJob;
use sc_engine::{wire, ColorerSpec, Runner};
use sc_graph::Coloring;
use sc_stream::{Checkpoint, DynamicSupport, EngineConfig, Session, SessionSnapshot};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One hosted session: the owned engine session, the open-time
/// parameters needed to rebuild its colorer from a snapshot (`delta`,
/// `seed`, `spec`), the vertex bound its edges are validated against,
/// and the host clock tick of its last command (the LRU eviction
/// order).
struct Tenant {
    n: usize,
    delta: usize,
    seed: u64,
    spec: ColorerSpec,
    session: Session,
    last_used: u64,
}

/// Host-level lifecycle counters, surfaced by the `host_stats` command
/// and by [`Service::counters`]. Connection counts are fed by whatever
/// serving surface owns the sockets (the reactor calls
/// [`Service::record_connections`]; stdio and per-connection hosts
/// leave them 0) — they describe the *host*, not a session, so they are
/// deliberately outside the per-session determinism law.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HostCounters {
    /// Sessions successfully opened.
    pub sessions_opened: u64,
    /// Sessions closed by `finish`.
    pub sessions_finished: u64,
    /// Sessions evicted by the LRU policy (see
    /// [`Service::with_lru_eviction`]).
    pub sessions_evicted: u64,
    /// Sessions dropped because their owning connection closed
    /// ([`Service::drop_owner`]).
    pub sessions_dropped: u64,
    /// Currently open connections (reactor-fed).
    pub connections_open: u64,
    /// Connections accepted since the host started (reactor-fed).
    pub connections_accepted: u64,
    /// Successful `snapshot` commands (interactive paths only).
    pub snapshots: u64,
    /// Successful `restore` commands (interactive paths only).
    pub restores: u64,
    /// Evictions that wrote a snapshot to the snapshot directory
    /// instead of leaving a bare tombstone
    /// ([`Service::with_snapshot_dir`]).
    pub disk_evictions: u64,
    /// Disk-evicted sessions transparently restored by a later command.
    pub disk_restores: u64,
}

/// A host for many named, independent, concurrent coloring sessions.
///
/// ```
/// use sc_service::Service;
///
/// let mut service = Service::new();
/// let open = service
///     .respond(r#"{"cmd":"open","session":"a","n":10,"delta":3,"colorer":"store-all"}"#)
///     .unwrap();
/// assert!(open.contains("\"ok\":true"));
/// let push = service.respond(r#"{"cmd":"push","session":"a","edge":"0-1"}"#).unwrap();
/// assert!(push.contains("\"len\":1"));
/// let observe = service.respond(r#"{"cmd":"observe","session":"a"}"#).unwrap();
/// assert!(observe.contains("\"coloring\""));
/// ```
pub struct Service {
    /// Tenants keyed by `(owner, name)`. The owner is a connection id
    /// in reactor mode ([`Service::respond_as`]) and 0 everywhere else,
    /// so two reactor connections may both own an `"alpha"` without
    /// sharing a byte of state — exactly the isolation the
    /// per-connection listener gives for free.
    sessions: BTreeMap<(u64, String), Tenant>,
    /// Evicted-session tombstones: commands for an evicted name answer
    /// a "session evicted" error (never a bare "unknown session") until
    /// the client reopens it.
    evicted: BTreeMap<(u64, String), String>,
    threads: usize,
    max_sessions: Option<usize>,
    /// When true, an `open` at the `max_sessions` cap evicts the
    /// least-recently-used session instead of answering an error — the
    /// reactor's policy.
    lru_eviction: bool,
    /// Monotone command tick driving the LRU order.
    clock: u64,
    /// When set, LRU eviction writes the victim's snapshot blob here
    /// (one `.snap` file per session) and the evicted session's next
    /// command transparently restores it — eviction stops losing state.
    snapshot_dir: Option<PathBuf>,
    counters: HostCounters,
}

impl Default for Service {
    fn default() -> Self {
        Self::new()
    }
}

impl Service {
    /// An empty host (script execution runs sessions one at a time).
    pub fn new() -> Self {
        Self::with_threads(1)
    }

    /// An empty host whose [`Service::run_script`] fans independent
    /// sessions out across up to `threads` worker threads. Sessions
    /// share nothing, so the thread count can never change a response
    /// byte — it only changes wall-clock.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            sessions: BTreeMap::new(),
            evicted: BTreeMap::new(),
            threads: threads.max(1),
            max_sessions: None,
            lru_eviction: false,
            clock: 0,
            snapshot_dir: None,
            counters: HostCounters::default(),
        }
    }

    /// Bounds the number of concurrently open sessions: an `open` beyond
    /// the limit is an **error response** (never an abort), so one rogue
    /// client on a shared listener cannot exhaust the host by opening
    /// unbounded named sessions. `finish` frees a slot. Stateless
    /// commands (`run_job`) are never limited.
    ///
    /// In [`Service::run_script`], slots are reserved by *command order*
    /// — an `open` for a new name reserves it and a `finish` for that
    /// name releases it, whether or not the underlying command succeeds
    /// — which keeps script output byte-identical for every thread
    /// count. The interactive paths ([`Service::respond`] /
    /// [`Service::serve`]) count actually-open sessions.
    #[must_use]
    pub fn with_max_sessions(mut self, limit: usize) -> Self {
        self.max_sessions = Some(limit);
        self
    }

    /// Switches the session-limit policy from "error response" to
    /// "evict the least-recently-used session" — the reactor's policy:
    /// an `open` at the [`Service::with_max_sessions`] cap silently
    /// closes the session whose last command is oldest (any owner) and
    /// admits the new one. The evicted session leaves a tombstone, so
    /// its owner's next command answers `session evicted (lru)` —
    /// an error response, never an abort — and reopening the name
    /// clears the tombstone and replays byte-identically.
    ///
    /// Interactive-path policy only ([`Service::respond`] /
    /// [`Service::respond_as`] / [`Service::serve`]);
    /// [`Service::run_script`] keeps its reservation-by-command-order
    /// limit semantics.
    #[must_use]
    pub fn with_lru_eviction(mut self) -> Self {
        self.lru_eviction = true;
        self
    }

    /// Upgrades eviction from evict-to-tombstone to **evict-to-disk**:
    /// the LRU victim's snapshot blob is written to
    /// `dir/<owner>-<hex(name)>.snap` and its tombstone reads `disk`
    /// instead of `lru`. The evicted session's *next command* then
    /// transparently restores from the file (deleting it) and proceeds
    /// as if the eviction never happened — byte-identical responses,
    /// per the persistence law. If the snapshot cannot be written (full
    /// disk, un-snapshottable colorer) the eviction falls back to the
    /// plain `lru` tombstone, so the host never aborts.
    ///
    /// Reopening a disk-evicted name discards the stale file, and
    /// [`Service::drop_owner`] reaps the owner's files along with its
    /// tombstones.
    #[must_use]
    pub fn with_snapshot_dir(mut self, dir: PathBuf) -> Self {
        self.snapshot_dir = Some(dir);
        self
    }

    /// Open sessions, in `(owner, name)` order.
    pub fn session_names(&self) -> Vec<&str> {
        self.sessions.keys().map(|(_, name)| name.as_str()).collect()
    }

    /// Host-level lifecycle counters (see [`HostCounters`]).
    pub fn counters(&self) -> HostCounters {
        self.counters
    }

    /// Feeds the connection counters a serving surface owns into the
    /// host (the reactor calls this on every accept and close, so
    /// `host_stats` can report them).
    pub fn record_connections(&mut self, open: u64, accepted: u64) {
        self.counters.connections_open = open;
        self.counters.connections_accepted = accepted;
    }

    /// Drops every session (and eviction tombstone) owned by `owner` —
    /// the reactor calls this when a connection closes, mirroring the
    /// per-connection listener where a dropped connection takes its
    /// whole `Service` with it. Returns the number of sessions dropped.
    pub fn drop_owner(&mut self, owner: u64) -> usize {
        let doomed: Vec<(u64, String)> =
            self.sessions.keys().filter(|(o, _)| *o == owner).cloned().collect();
        for key in &doomed {
            self.sessions.remove(key);
        }
        if let Some(dir) = &self.snapshot_dir {
            for (o, name) in self.evicted.keys() {
                if *o == owner {
                    let _ = std::fs::remove_file(snapshot_path(dir, *o, name));
                }
            }
        }
        self.evicted.retain(|(o, _), _| *o != owner);
        self.counters.sessions_dropped += doomed.len() as u64;
        doomed.len()
    }

    /// Handles one protocol line. Returns `None` for blank lines and
    /// `#` comments, otherwise exactly one canonical response line
    /// (errors are responses too — the protocol never panics on input).
    pub fn respond(&mut self, line: &str) -> Option<String> {
        self.respond_as(0, line)
    }

    /// [`Service::respond`] scoped to an owner: session names resolve
    /// to `(owner, name)`, so every connection multiplexed onto this
    /// host sees its own private namespace. The stdio/script paths are
    /// owner 0.
    pub fn respond_as(&mut self, owner: u64, line: &str) -> Option<String> {
        match classify(line) {
            LineKind::Skip => None,
            LineKind::Local(response) => Some(response),
            LineKind::Command { session, obj } => {
                let cmd = obj.get("cmd").and_then(Scalar::as_str);
                if cmd == Some("host_stats") {
                    return Some(encode_object(&self.apply_host_stats(&session, &obj)));
                }
                let key = (owner, session);
                let mut slot = self.sessions.remove(&key);
                let mut had_tenant = slot.is_some();
                let opening = slot.is_none() && cmd == Some("open");
                // A command for an evicted session either restores it
                // transparently from disk (reason "disk") or names the
                // eviction instead of pretending the session never
                // existed; reopening clears the tombstone.
                if slot.is_none() && !opening {
                    if let Some(reason) = self.evicted.get(&key).cloned() {
                        if reason == "disk" {
                            match self.restore_from_disk(&key) {
                                Ok(tenant) => {
                                    // The session is back: treat it as if
                                    // it had never left. Re-evict someone
                                    // else if that pushed us over the cap.
                                    slot = Some(tenant);
                                    had_tenant = true;
                                    if let Some(cap) = self.max_sessions {
                                        if self.lru_eviction && self.sessions.len() >= cap {
                                            self.evict_lru();
                                        }
                                    }
                                }
                                Err(e) => {
                                    let message =
                                        format!("session evicted (disk) and restore failed: {e}");
                                    return Some(encode_object(&error_response(
                                        cmd,
                                        Some(&key.1),
                                        &message,
                                    )));
                                }
                            }
                        } else {
                            let message =
                                format!("session evicted ({reason}); reopen it to continue");
                            return Some(encode_object(&error_response(
                                cmd,
                                Some(&key.1),
                                &message,
                            )));
                        }
                    }
                }
                let over_limit = self
                    .max_sessions
                    .filter(|cap| opening && self.sessions.len() >= *cap)
                    .filter(|cap| {
                        if self.lru_eviction {
                            self.evict_lru();
                            self.sessions.len() >= *cap // cap 0: nothing to evict
                        } else {
                            true
                        }
                    });
                let response = match over_limit {
                    Some(cap) => {
                        error_response(Some("open"), Some(&key.1), &session_limit_message(cap))
                    }
                    None => apply(&mut slot, &key.1, &obj),
                };
                if matches!(response.get("ok"), Some(Scalar::Bool(true))) {
                    match cmd {
                        Some("snapshot") => self.counters.snapshots += 1,
                        Some("restore") => self.counters.restores += 1,
                        _ => {}
                    }
                }
                match slot {
                    Some(mut tenant) => {
                        if !had_tenant {
                            self.counters.sessions_opened += 1;
                            self.clear_tombstone(&key);
                        }
                        self.clock += 1;
                        tenant.last_used = self.clock;
                        self.sessions.insert(key, tenant);
                    }
                    None => {
                        if had_tenant {
                            self.counters.sessions_finished += 1;
                        }
                    }
                }
                Some(encode_object(&response))
            }
        }
    }

    /// Evicts the least-recently-used session (any owner). With a
    /// snapshot directory configured the victim's state goes to disk
    /// (tombstone `disk`, transparently restorable); otherwise — or if
    /// the write fails — it leaves a plain `lru` tombstone so its owner
    /// learns the fate from the next response.
    fn evict_lru(&mut self) {
        let Some(key) = self
            .sessions
            .iter()
            .min_by_key(|(_, tenant)| tenant.last_used)
            .map(|(key, _)| key.clone())
        else {
            return;
        };
        let tenant = self.sessions.remove(&key).expect("key came from the map");
        let mut reason = "lru";
        if let Some(dir) = &self.snapshot_dir {
            let saved = std::fs::create_dir_all(dir)
                .map_err(|e| e.to_string())
                .and_then(|()| encode_snapshot_blob(&tenant))
                .and_then(|blob| {
                    std::fs::write(snapshot_path(dir, key.0, &key.1), blob)
                        .map_err(|e| e.to_string())
                });
            if saved.is_ok() {
                reason = "disk";
                self.counters.disk_evictions += 1;
            }
        }
        self.evicted.insert(key, reason.to_string());
        self.counters.sessions_evicted += 1;
    }

    /// Loads, decodes, and deletes a disk-evicted session's snapshot
    /// file, clearing its tombstone. The caller reinserts the tenant.
    fn restore_from_disk(&mut self, key: &(u64, String)) -> Result<Tenant, String> {
        let dir = self.snapshot_dir.as_ref().ok_or("no snapshot directory configured")?;
        let path = snapshot_path(dir, key.0, &key.1);
        let blob = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let tenant = decode_snapshot_blob(&blob)?;
        let _ = std::fs::remove_file(&path);
        self.evicted.remove(key);
        self.counters.disk_restores += 1;
        Ok(tenant)
    }

    /// Clears an eviction tombstone and any stale on-disk snapshot (a
    /// reopen supersedes the evicted state).
    fn clear_tombstone(&mut self, key: &(u64, String)) {
        if self.evicted.remove(key).is_some() {
            if let Some(dir) = &self.snapshot_dir {
                let _ = std::fs::remove_file(snapshot_path(dir, key.0, &key.1));
            }
        }
    }

    /// The `host_stats` command: host-scoped lifecycle counters. The
    /// `"session"` field is only a correlation id (like `run_job`), and
    /// the counters describe the whole host — they sit deliberately
    /// outside the per-session determinism law (documented in
    /// `docs/PROTOCOL.md`).
    fn apply_host_stats(&self, session: &str, obj: &FlatObject) -> FlatObject {
        if let Err(message) = check_keys(obj, &["cmd", "session"]) {
            return error_response(Some("host_stats"), Some(session), &message);
        }
        let mut response = ok_response("host_stats", session);
        let c = self.counters;
        response.insert("sessions_open".into(), Scalar::Uint(self.sessions.len() as u64));
        response.insert("sessions_opened".into(), Scalar::Uint(c.sessions_opened));
        response.insert("sessions_finished".into(), Scalar::Uint(c.sessions_finished));
        response.insert("sessions_evicted".into(), Scalar::Uint(c.sessions_evicted));
        response.insert("sessions_dropped".into(), Scalar::Uint(c.sessions_dropped));
        response.insert("connections_open".into(), Scalar::Uint(c.connections_open));
        response.insert("connections_accepted".into(), Scalar::Uint(c.connections_accepted));
        response.insert("snapshots".into(), Scalar::Uint(c.snapshots));
        response.insert("restores".into(), Scalar::Uint(c.restores));
        response.insert("disk_evictions".into(), Scalar::Uint(c.disk_evictions));
        response.insert("disk_restores".into(), Scalar::Uint(c.disk_restores));
        response
    }

    /// Runs a whole command script and returns the response lines
    /// (newline-terminated, in input order).
    ///
    /// Commands for *different* sessions are independent, so they fan
    /// out across the host's thread pool — per-session order is
    /// preserved, responses are reassembled in input order, and the
    /// output is byte-identical for every thread count. This is the
    /// serving-layer parallelism model in miniature: serial within a
    /// session, parallel across sessions.
    pub fn run_script(&mut self, script: &str) -> String {
        // Classify every line; route session commands into per-session
        // groups (first-appearance order), everything else is resolved
        // in place.
        let mut responses: Vec<Option<String>> = Vec::new();
        let mut group_of: BTreeMap<String, usize> = BTreeMap::new();
        let mut groups: Vec<(String, Vec<(usize, FlatObject)>)> = Vec::new();
        // Session-limit slots are reserved in command order (see
        // `with_max_sessions`): the decision depends only on the script
        // text and the pre-existing sessions, never on which pool thread
        // finishes first.
        let mut reserved: std::collections::BTreeSet<String> =
            self.sessions.keys().map(|(_, name)| name.clone()).collect();
        for line in script.lines() {
            let idx = responses.len();
            match classify(line) {
                LineKind::Skip => responses.push(None),
                LineKind::Local(response) => responses.push(Some(response)),
                LineKind::Command { session, obj } => {
                    if let Some(cap) = self.max_sessions {
                        match obj.get("cmd").and_then(Scalar::as_str) {
                            Some("open") if !reserved.contains(&session) => {
                                if reserved.len() >= cap {
                                    responses.push(Some(encode_object(&error_response(
                                        Some("open"),
                                        Some(&session),
                                        &session_limit_message(cap),
                                    ))));
                                    continue;
                                }
                                reserved.insert(session.clone());
                            }
                            Some("finish") => {
                                reserved.remove(&session);
                            }
                            _ => {}
                        }
                    }
                    responses.push(Some(String::new())); // placeholder
                    let g = *group_of.entry(session.clone()).or_insert_with(|| {
                        groups.push((session, Vec::new()));
                        groups.len() - 1
                    });
                    groups[g].1.push((idx, obj));
                }
            }
        }

        // Move each group's tenant (if any) out of the host, run the
        // groups on the pool (per-session command order preserved; the
        // sessions share nothing), then move the survivors back in.
        let names: Vec<String> = groups.iter().map(|(name, _)| name.clone()).collect();
        let work: Vec<GroupCell> = groups
            .into_iter()
            .map(|(name, commands)| Mutex::new(Some((self.sessions.remove(&(0, name)), commands))))
            .collect();
        let outcomes = sc_engine::par_map(self.threads, &work, |i, cell| {
            let (mut slot, commands) =
                cell.lock().expect("no panics hold this lock").take().expect("each cell runs once");
            let mut out = Vec::with_capacity(commands.len());
            for (idx, obj) in &commands {
                let response = apply(&mut slot, &names[i], obj);
                out.push((*idx, encode_object(&response)));
            }
            (slot, out)
        });
        for (name, (slot, lines)) in names.into_iter().zip(outcomes) {
            if let Some(tenant) = slot {
                self.sessions.insert((0, name), tenant);
            }
            for (idx, line) in lines {
                responses[idx] = Some(line);
            }
        }

        let mut out = String::new();
        for response in responses.into_iter().flatten() {
            out.push_str(&response);
            out.push('\n');
        }
        out
    }

    /// The stdin/stdout serving loop behind `streamcolor serve`: reads
    /// protocol lines from `input`, writes one response line per
    /// command to `output` (flushed per line, so interactive pipes see
    /// answers immediately).
    ///
    /// # Errors
    /// Propagates I/O errors; protocol-level problems are error
    /// *responses*, not `Err`s.
    pub fn serve<R: BufRead, W: Write + ?Sized>(
        &mut self,
        input: R,
        output: &mut W,
    ) -> std::io::Result<()> {
        for line in input.lines() {
            if let Some(response) = self.respond(&line?) {
                writeln!(output, "{response}")?;
                output.flush()?;
            }
        }
        Ok(())
    }
}

/// One session's share of a script: its tenant (if already open) and
/// its command lines, handed to a pool thread as a unit.
type GroupCell = Mutex<Option<(Option<Tenant>, Vec<(usize, FlatObject)>)>>;

// ---------------------------------------------------------------------
// Line classification.
// ---------------------------------------------------------------------

enum LineKind {
    /// Blank or comment: no response.
    Skip,
    /// Resolvable from the line alone (parse errors, missing session).
    Local(String),
    /// A command addressed to a named session.
    Command { session: String, obj: FlatObject },
}

fn classify(line: &str) -> LineKind {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return LineKind::Skip;
    }
    let obj = match parse_object(trimmed) {
        Ok(obj) => obj,
        Err(e) => return LineKind::Local(encode_object(&error_response(None, None, &e))),
    };
    match obj.get("session").and_then(Scalar::as_str) {
        Some(name) if !name.is_empty() => LineKind::Command { session: name.to_string(), obj },
        Some(_) => LineKind::Local(encode_object(&error_response(
            obj.get("cmd").and_then(Scalar::as_str),
            None,
            "\"session\" must be a non-empty string",
        ))),
        None => LineKind::Local(encode_object(&error_response(
            obj.get("cmd").and_then(Scalar::as_str),
            None,
            "missing string field \"session\"",
        ))),
    }
}

// ---------------------------------------------------------------------
// Per-session command application (pure: a function of the session slot
// and the command object — the determinism law in code).
// ---------------------------------------------------------------------

fn session_limit_message(cap: usize) -> String {
    format!("session limit reached ({cap} open); finish one first")
}

fn error_response(cmd: Option<&str>, session: Option<&str>, message: &str) -> FlatObject {
    let mut obj = FlatObject::new();
    obj.insert("ok".into(), Scalar::Bool(false));
    obj.insert("error".into(), Scalar::Str(message.to_string()));
    if let Some(cmd) = cmd {
        obj.insert("cmd".into(), Scalar::Str(cmd.to_string()));
    }
    if let Some(session) = session {
        obj.insert("session".into(), Scalar::Str(session.to_string()));
    }
    obj
}

fn ok_response(cmd: &str, session: &str) -> FlatObject {
    let mut obj = FlatObject::new();
    obj.insert("ok".into(), Scalar::Bool(true));
    obj.insert("cmd".into(), Scalar::Str(cmd.to_string()));
    obj.insert("session".into(), Scalar::Str(session.to_string()));
    obj
}

// Field accessors come from `sc_engine::wire` — one vocabulary, one set
// of diagnostics for spec files and protocol lines alike. The only
// service-specific reader is the optional-with-default integer.
use wire::{str_field, usize_field};

fn opt_u64(obj: &FlatObject, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or(format!("field {key:?} must be a non-negative integer")),
    }
}

/// Errors on any key outside `allowed` (sorted reporting, first wins).
fn check_keys(obj: &FlatObject, allowed: &[&str]) -> Result<(), String> {
    for key in obj.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?}"));
        }
    }
    Ok(())
}

/// Renders a coloring as the protocol's `"0,1,-,2"` form (`-` marks an
/// uncolored vertex) — the same shape `sc_engine::shard::RunSummary`
/// uses, so service observations and shard summaries diff cleanly.
pub fn coloring_string(c: &Coloring) -> String {
    let cells: Vec<String> =
        (0..c.n() as u32).map(|v| c.get(v).map_or("-".to_string(), |k| k.to_string())).collect();
    cells.join(",")
}

/// Parses a [`coloring_string`] back into a coloring over `n` vertices.
///
/// # Errors
/// Returns a message naming the malformed cell or a length mismatch.
pub fn parse_coloring(text: &str, n: usize) -> Result<Coloring, String> {
    let mut coloring = Coloring::empty(n);
    if n == 0 && text.is_empty() {
        return Ok(coloring);
    }
    let cells: Vec<&str> = text.split(',').collect();
    if cells.len() != n {
        return Err(format!("coloring has {} cells, expected {n}", cells.len()));
    }
    for (v, cell) in cells.iter().enumerate() {
        if *cell == "-" {
            continue;
        }
        let color = cell.parse().map_err(|e| format!("cell {v} {cell:?}: {e}"))?;
        coloring.set(v as u32, color);
    }
    Ok(coloring)
}

fn apply(slot: &mut Option<Tenant>, session: &str, obj: &FlatObject) -> FlatObject {
    let cmd = match obj.get("cmd").and_then(Scalar::as_str) {
        Some(cmd) => cmd.to_string(),
        None => return error_response(None, Some(session), "missing string field \"cmd\""),
    };
    let result = match cmd.as_str() {
        "open" => apply_open(slot, obj),
        "push" | "push_batch" => apply_push(slot, obj, &cmd),
        "observe" | "checkpoint" => apply_observe(slot, obj, &cmd),
        "stats" => apply_stats(slot, obj),
        "finish" => apply_finish(slot, obj),
        "snapshot" => apply_snapshot(slot, obj),
        "restore" => apply_restore(slot, obj),
        "run_job" => apply_run_job(obj),
        // Interactive paths intercept host_stats before apply(); reaching
        // it here means a script, where host counters would expose the
        // pool's scheduling — so the answer is a deterministic error.
        "host_stats" => Err("host_stats is interactive-only (scripts run sessions in parallel, \
                             so host counters would not be deterministic)"
            .to_string()),
        other => Err(format!(
            "unknown cmd {other:?} (open | push | push_batch | observe | checkpoint | stats | \
             finish | snapshot | restore | run_job | host_stats)"
        )),
    };
    match result {
        Ok(mut response) => {
            response.append(&mut ok_response(&cmd, session));
            response
        }
        Err(message) => error_response(Some(&cmd), Some(session), &message),
    }
}

/// Largest vertex count one `open` may request. Colorers allocate
/// `O(n)` (and up to `O(n · ∆)`) state eagerly at construction; without
/// a bound, a single tenant's `{"n": 10^12}` would abort the whole host
/// on allocation failure — the opposite of the "errors are responses,
/// tenants cannot perturb each other" contract. 2²⁴ vertices is far
/// beyond every experiment in this workspace while keeping worst-case
/// per-session construction in the hundreds of MB, not terabytes.
pub const MAX_SESSION_VERTICES: usize = 1 << 24;

fn apply_open(slot: &mut Option<Tenant>, obj: &FlatObject) -> Result<FlatObject, String> {
    if slot.is_some() {
        return Err("session already open".to_string());
    }
    let n = usize_field(obj, "n")?;
    if n > MAX_SESSION_VERTICES {
        return Err(format!("n = {n} exceeds this host's limit ({MAX_SESSION_VERTICES} vertices)"));
    }
    let delta = match obj.get("delta") {
        None => n.saturating_sub(1).max(1),
        Some(_) => usize_field(obj, "delta")?,
    };
    if delta > n {
        return Err(format!("delta = {delta} exceeds n = {n}"));
    }
    let seed = opt_u64(obj, "seed", 7)?;
    let config = match obj.get("engine") {
        None => EngineConfig::default(),
        Some(_) => EngineConfig::wire_decode(str_field(obj, "engine")?)?,
    };
    let spec = wire::colorer_from_wire(obj)?;
    // Allowed keys = the fixed open vocabulary plus exactly the fields
    // this colorer's canonical wire form uses (same trick as the spec
    // decoder: misspelled parameters error instead of running defaults).
    let mut canonical = FlatObject::new();
    for key in ["cmd", "session", "n", "delta", "seed", "engine"] {
        canonical.insert(key.into(), Scalar::Bool(true));
    }
    wire::colorer_to_wire(&spec, &mut canonical);
    check_keys(obj, &canonical.keys().map(String::as_str).collect::<Vec<_>>())?;

    let colorer = spec.build(n, delta, seed, None)?;
    let mut response = FlatObject::new();
    response.insert("algo".into(), Scalar::Str(colorer.name().to_string()));
    response.insert("n".into(), Scalar::Uint(n as u64));
    *slot =
        Some(Tenant { n, delta, seed, spec, session: Session::new(colorer, config), last_used: 0 });
    Ok(response)
}

fn apply_push(
    slot: &mut Option<Tenant>,
    obj: &FlatObject,
    cmd: &str,
) -> Result<FlatObject, String> {
    let tenant = slot.as_mut().ok_or("unknown session (open it first)")?;
    let tokens = if cmd == "push" {
        check_keys(obj, &["cmd", "session", "edge", "sign"])?;
        let edges = wire::decode_edges(str_field(obj, "edge")?, Some(tenant.n))?;
        if edges.len() != 1 {
            return Err(format!("push takes exactly one edge, got {}", edges.len()));
        }
        let sign = match obj.get("sign") {
            None => sc_stream::Sign::Insert,
            Some(v) => match v.as_str() {
                Some("insert") => sc_stream::Sign::Insert,
                Some("delete") => sc_stream::Sign::Delete,
                Some(other) => {
                    return Err(format!(
                        "field \"sign\" must be \"insert\" or \"delete\", got {other:?}"
                    ))
                }
                None => return Err("field \"sign\" must be a string".into()),
            },
        };
        vec![sc_stream::SignedEdge { edge: edges[0], sign }]
    } else {
        check_keys(obj, &["cmd", "session", "edges"])?;
        sc_stream::decode_signed_list(str_field(obj, "edges")?, tenant.n)?
    };
    // Atomic: the session validates the whole batch (support
    // multiplicities, insert-only colorers) before staging anything, so
    // an Err here leaves the tenant byte-identical to before the command.
    tenant.session.push_signed_slice(&tokens)?;
    let mut response = FlatObject::new();
    response.insert("len".into(), Scalar::Uint(tenant.session.len() as u64));
    response.insert("pushed".into(), Scalar::Uint(tokens.len() as u64));
    Ok(response)
}

fn apply_observe(
    slot: &mut Option<Tenant>,
    obj: &FlatObject,
    cmd: &str,
) -> Result<FlatObject, String> {
    check_keys(obj, &["cmd", "session"])?;
    let tenant = slot.as_mut().ok_or("unknown session (open it first)")?;
    let cp = if cmd == "checkpoint" {
        tenant.session.checkpoint().clone()
    } else {
        tenant.session.observe()
    };
    let mut response = FlatObject::new();
    response.insert("prefix".into(), Scalar::Uint(cp.prefix_len as u64));
    response.insert("colors".into(), Scalar::Uint(cp.colors as u64));
    response.insert("space_bits".into(), Scalar::Uint(cp.space_bits));
    response.insert("coloring".into(), Scalar::Str(coloring_string(&cp.coloring)));
    if cmd == "checkpoint" {
        response.insert("recorded".into(), Scalar::Uint(tenant.session.checkpoints().len() as u64));
    }
    Ok(response)
}

fn apply_stats(slot: &mut Option<Tenant>, obj: &FlatObject) -> Result<FlatObject, String> {
    check_keys(obj, &["cmd", "session"])?;
    let tenant = slot.as_ref().ok_or("unknown session (open it first)")?;
    let mut response = FlatObject::new();
    response.insert("algo".into(), Scalar::Str(tenant.session.algo().to_string()));
    response.insert("edges".into(), Scalar::Uint(tenant.session.len() as u64));
    response.insert("pending".into(), Scalar::Uint(tenant.session.pending() as u64));
    response.insert("chunks".into(), Scalar::Uint(tenant.session.chunks() as u64));
    response.insert("checkpoints".into(), Scalar::Uint(tenant.session.checkpoints().len() as u64));
    response.insert("space_bits".into(), Scalar::Uint(tenant.session.peak_space_bits()));
    match tenant.session.query_cache_stats() {
        Some(stats) => {
            response.insert("cache_hits".into(), Scalar::Uint(stats.hits));
            response.insert("cache_patches".into(), Scalar::Uint(stats.patches));
            response.insert("cache_misses".into(), Scalar::Uint(stats.misses));
            response.insert("cache_invalidations".into(), Scalar::Uint(stats.invalidations));
            response.insert("cache_patched_vertices".into(), Scalar::Uint(stats.patched_vertices));
        }
        None => {
            response.insert("cache".into(), Scalar::Str("none".into()));
        }
    }
    Ok(response)
}

// ---------------------------------------------------------------------
// Session snapshots: one canonical flat-JSON blob carrying everything a
// fresh host needs to resume the session byte-identically — the spec
// vocabulary to rebuild the colorer, the colorer's own state string,
// and the engine position (pending tail, counts, checkpoint history).
// ---------------------------------------------------------------------

/// Where a disk-evicted session's blob lives: the owner id plus the
/// hex-encoded session name (names are arbitrary strings; hex keeps the
/// file name filesystem-safe and collision-free).
fn snapshot_path(dir: &Path, owner: u64, name: &str) -> PathBuf {
    let mut hex = String::with_capacity(name.len() * 2);
    for b in name.as_bytes() {
        hex.push_str(&format!("{b:02x}"));
    }
    dir.join(format!("{owner}-{hex}.snap"))
}

/// Checkpoint history as `prefix@space_bits@coloring` records joined by
/// `|` (the `colors` count is derivable and recomputed on decode).
fn encode_checkpoints(checkpoints: &[Checkpoint]) -> String {
    let parts: Vec<String> = checkpoints
        .iter()
        .map(|cp| format!("{}@{}@{}", cp.prefix_len, cp.space_bits, coloring_string(&cp.coloring)))
        .collect();
    parts.join("|")
}

fn decode_checkpoints(text: &str, n: usize) -> Result<Vec<Checkpoint>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for (i, part) in text.split('|').enumerate() {
        let mut fields = part.splitn(3, '@');
        let (prefix, space, coloring) = match (fields.next(), fields.next(), fields.next()) {
            (Some(p), Some(s), Some(c)) => (p, s, c),
            _ => return Err(format!("checkpoint {i}: {part:?} is not prefix@space_bits@coloring")),
        };
        let prefix_len: usize =
            prefix.parse().map_err(|e| format!("checkpoint {i}: prefix {prefix:?}: {e}"))?;
        let space_bits: u64 =
            space.parse().map_err(|e| format!("checkpoint {i}: space_bits {space:?}: {e}"))?;
        let coloring = parse_coloring(coloring, n).map_err(|e| format!("checkpoint {i}: {e}"))?;
        let colors = coloring.num_distinct_colors();
        out.push(Checkpoint { prefix_len, coloring, space_bits, colors });
    }
    Ok(out)
}

/// Serializes a tenant into the snapshot blob (a canonical flat-JSON
/// object). Non-destructive: the tenant continues unchanged.
fn encode_snapshot_blob(tenant: &Tenant) -> Result<String, String> {
    let snap = tenant.session.snapshot()?;
    let mut obj = FlatObject::new();
    obj.insert("kind".into(), Scalar::Str("session-snapshot".into()));
    obj.insert("n".into(), Scalar::Uint(tenant.n as u64));
    obj.insert("delta".into(), Scalar::Uint(tenant.delta as u64));
    obj.insert("seed".into(), Scalar::Uint(tenant.seed));
    wire::colorer_to_wire(&tenant.spec, &mut obj);
    obj.insert("engine".into(), Scalar::Str(snap.config.wire_encode()));
    obj.insert("algo".into(), Scalar::Str(tenant.session.algo().to_string()));
    obj.insert("state".into(), Scalar::Str(snap.colorer_state));
    obj.insert("pending".into(), Scalar::Str(sc_stream::encode_signed_list(&snap.pending)));
    obj.insert("ingested".into(), Scalar::Uint(snap.ingested as u64));
    obj.insert("chunks".into(), Scalar::Uint(snap.chunks as u64));
    obj.insert("checkpoints".into(), Scalar::Str(encode_checkpoints(&snap.checkpoints)));
    // The live-edge multiset travels only for dynamic colorers, so
    // insert-only snapshot blobs keep their settled vocabulary.
    if let Some(support) = &snap.support {
        obj.insert("support".into(), Scalar::Str(support.encode()));
    }
    Ok(encode_object(&obj))
}

/// Rebuilds a tenant from a snapshot blob: the colorer is constructed
/// fresh from the blob's spec vocabulary (same `n`, `∆`, seed — the
/// randomness is re-derived, never serialized) and its state string is
/// replayed into it, validated rather than trusted. Every malformed
/// field answers an error naming the offender.
fn decode_snapshot_blob(blob: &str) -> Result<Tenant, String> {
    let obj = parse_object(blob).map_err(|e| format!("snapshot: {e}"))?;
    match obj.get("kind").and_then(Scalar::as_str) {
        Some("session-snapshot") => {}
        Some(other) => {
            return Err(format!("snapshot: kind {other:?} is not \"session-snapshot\""));
        }
        None => return Err("snapshot: missing string field \"kind\"".to_string()),
    }
    let fail = |e: String| format!("snapshot: {e}");
    let n = usize_field(&obj, "n").map_err(fail)?;
    if n > MAX_SESSION_VERTICES {
        return Err(format!(
            "snapshot: n = {n} exceeds this host's limit ({MAX_SESSION_VERTICES} vertices)"
        ));
    }
    let delta = usize_field(&obj, "delta").map_err(fail)?;
    if delta > n {
        return Err(format!("snapshot: delta = {delta} exceeds n = {n}"));
    }
    let seed = obj
        .get("seed")
        .and_then(Scalar::as_u64)
        .ok_or("snapshot: field \"seed\" must be a non-negative integer")?;
    let config = EngineConfig::wire_decode(str_field(&obj, "engine").map_err(fail)?)
        .map_err(|e| format!("snapshot: engine: {e}"))?;
    let spec = wire::colorer_from_wire(&obj).map_err(fail)?;
    // Same unknown-key discipline as `open`: the allowed keys are the
    // fixed snapshot vocabulary plus exactly this spec's wire fields.
    let mut canonical = FlatObject::new();
    for key in [
        "kind",
        "n",
        "delta",
        "seed",
        "engine",
        "algo",
        "state",
        "pending",
        "ingested",
        "chunks",
        "checkpoints",
        "support",
    ] {
        canonical.insert(key.into(), Scalar::Bool(true));
    }
    wire::colorer_to_wire(&spec, &mut canonical);
    check_keys(&obj, &canonical.keys().map(String::as_str).collect::<Vec<_>>()).map_err(fail)?;

    let colorer = spec.build(n, delta, seed, None).map_err(fail)?;
    let algo = str_field(&obj, "algo").map_err(fail)?;
    if algo != colorer.name() {
        return Err(format!("snapshot: algo {algo:?} is not {:?}", colorer.name()));
    }
    let pending = sc_stream::decode_signed_list(str_field(&obj, "pending").map_err(fail)?, n)
        .map_err(|e| format!("snapshot: pending: {e}"))?;
    let ingested = usize_field(&obj, "ingested").map_err(fail)?;
    let chunks = usize_field(&obj, "chunks").map_err(fail)?;
    let checkpoints = decode_checkpoints(str_field(&obj, "checkpoints").map_err(fail)?, n)
        .map_err(|e| format!("snapshot: checkpoints: {e}"))?;
    // Optional: present exactly for dynamic colorers (Session::restore
    // rejects a mismatch, naming the colorer).
    let support = match obj.get("support") {
        Some(s) => {
            let text = s.as_str().ok_or("snapshot: field \"support\" must be a string")?;
            Some(
                DynamicSupport::decode(text, n)
                    .map_err(|e| format!("snapshot: support: {e}"))?,
            )
        }
        None => None,
    };
    let snapshot = SessionSnapshot {
        config,
        pending,
        ingested,
        chunks,
        checkpoints,
        support,
        colorer_state: str_field(&obj, "state").map_err(fail)?.to_string(),
    };
    let session = Session::restore(colorer, snapshot).map_err(|e| format!("snapshot: {e}"))?;
    Ok(Tenant { n, delta, seed, spec, session, last_used: 0 })
}

/// The `snapshot` command: answers the session's blob in the
/// `"snapshot"` field. Non-destructive — the session keeps running, so
/// migration can copy first and drop later.
fn apply_snapshot(slot: &mut Option<Tenant>, obj: &FlatObject) -> Result<FlatObject, String> {
    check_keys(obj, &["cmd", "session"])?;
    let tenant = slot.as_ref().ok_or("unknown session (open it first)")?;
    let blob = encode_snapshot_blob(tenant)?;
    let mut response = FlatObject::new();
    response.insert("edges".into(), Scalar::Uint(tenant.session.len() as u64));
    response.insert("pending".into(), Scalar::Uint(tenant.session.pending() as u64));
    response.insert("snapshot".into(), Scalar::Str(blob));
    Ok(response)
}

/// The `restore` command: opens the session from a snapshot blob. The
/// restored session answers byte-identically to the uninterrupted
/// original from this point on (the persistence law).
fn apply_restore(slot: &mut Option<Tenant>, obj: &FlatObject) -> Result<FlatObject, String> {
    if slot.is_some() {
        return Err("session already open".to_string());
    }
    check_keys(obj, &["cmd", "session", "snapshot"])?;
    let tenant = decode_snapshot_blob(str_field(obj, "snapshot")?)?;
    let mut response = FlatObject::new();
    response.insert("algo".into(), Scalar::Str(tenant.session.algo().to_string()));
    response.insert("n".into(), Scalar::Uint(tenant.n as u64));
    response.insert("edges".into(), Scalar::Uint(tenant.session.len() as u64));
    *slot = Some(tenant);
    Ok(response)
}

/// The stateless cluster-worker command: runs one deterministic shard
/// slice of a [`ShardJob`] spec and answers with the worker-output file
/// as a string. Ignores (and never perturbs) any tenant session sharing
/// the correlation name.
fn apply_run_job(obj: &FlatObject) -> Result<FlatObject, String> {
    check_keys(obj, &["cmd", "session", "spec", "shard", "of", "threads"])?;
    let of = usize_field(obj, "of")?;
    if of == 0 {
        return Err("\"of\" must be at least 1".to_string());
    }
    let shard = usize_field(obj, "shard")?;
    if shard >= of {
        return Err(format!("shard {shard} out of range for of {of}"));
    }
    let threads = usize::try_from(opt_u64(obj, "threads", 1)?).unwrap_or(1).max(1);
    let job = ShardJob::decode(str_field(obj, "spec")?).map_err(|e| format!("spec: {e}"))?;
    let range = sc_engine::shard::partition(job.len(), of)[shard].clone();
    let outcome = sc_engine::shard::run_job(&Runner::with_threads(threads), &job, range);
    let mut response = FlatObject::new();
    response.insert("shard".into(), Scalar::Uint(shard as u64));
    response.insert("of".into(), Scalar::Uint(of as u64));
    response.insert("items".into(), Scalar::Uint(job.len() as u64));
    response.insert(
        "output".into(),
        Scalar::Str(sc_engine::shard::encode_worker_output(shard, of, &outcome)),
    );
    Ok(response)
}

fn apply_finish(slot: &mut Option<Tenant>, obj: &FlatObject) -> Result<FlatObject, String> {
    check_keys(obj, &["cmd", "session"])?;
    let tenant = slot.take().ok_or("unknown session (open it first)")?;
    let report = tenant.session.finish();
    let mut response = FlatObject::new();
    response.insert("edges".into(), Scalar::Uint(report.edges as u64));
    response.insert("chunks".into(), Scalar::Uint(report.chunks as u64));
    response
        .insert("colors".into(), Scalar::Uint(report.final_coloring.num_distinct_colors() as u64));
    response.insert("space_bits".into(), Scalar::Uint(report.peak_space_bits));
    response.insert("checkpoints".into(), Scalar::Uint(report.checkpoints.len() as u64));
    response.insert("coloring".into(), Scalar::Str(coloring_string(&report.final_coloring)));
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{generators, Graph};

    fn open_line(session: &str, n: usize, delta: usize, colorer: &str, seed: u64) -> String {
        format!(
            r#"{{"cmd":"open","session":"{session}","n":{n},"delta":{delta},"colorer":"{colorer}","seed":{seed}}}"#
        )
    }

    #[test]
    fn open_push_observe_finish_lifecycle() {
        let mut service = Service::new();
        let open = service.respond(&open_line("a", 20, 4, "store-all", 1)).unwrap();
        assert!(open.contains("\"ok\":true") && open.contains("\"algo\":\"store-all\""), "{open}");

        let g = generators::gnp_with_max_degree(20, 4, 0.4, 3);
        let edges: Vec<_> = g.edges().collect();
        for (i, e) in edges.iter().enumerate() {
            let push = service
                .respond(&format!(r#"{{"cmd":"push","session":"a","edge":"{}-{}"}}"#, e.u(), e.v()))
                .unwrap();
            assert!(push.contains(&format!("\"len\":{}", i + 1)), "{push}");
        }
        let observe = service.respond(r#"{"cmd":"observe","session":"a"}"#).unwrap();
        let obj = parse_object(&observe).unwrap();
        assert_eq!(obj["prefix"].as_u64(), Some(edges.len() as u64));
        let coloring = parse_coloring(obj["coloring"].as_str().unwrap(), 20).unwrap();
        assert!(coloring.is_proper_total(&g), "service coloring must be proper");

        let finish = service.respond(r#"{"cmd":"finish","session":"a"}"#).unwrap();
        assert!(finish.contains("\"ok\":true"), "{finish}");
        assert!(service.session_names().is_empty(), "finish closes the session");
        let again = service.respond(r#"{"cmd":"observe","session":"a"}"#).unwrap();
        assert!(again.contains("unknown session"), "{again}");
    }

    #[test]
    fn many_sessions_are_independent_tenants() {
        let mut service = Service::new();
        for (name, colorer) in [("alpha", "robust"), ("beta", "store-all"), ("gamma", "trivial")] {
            let open = service.respond(&open_line(name, 30, 5, colorer, 9)).unwrap();
            assert!(open.contains("\"ok\":true"), "{open}");
        }
        assert_eq!(service.session_names(), vec!["alpha", "beta", "gamma"]);
        // Interleaved pushes to different tenants.
        let g = generators::gnp_with_max_degree(30, 5, 0.4, 4);
        for e in g.edges() {
            for name in ["alpha", "beta", "gamma"] {
                let push = service
                    .respond(&format!(
                        r#"{{"cmd":"push","session":"{name}","edge":"{}-{}"}}"#,
                        e.u(),
                        e.v()
                    ))
                    .unwrap();
                assert!(push.contains("\"ok\":true"), "{push}");
            }
        }
        for name in ["alpha", "beta", "gamma"] {
            let observe =
                service.respond(&format!(r#"{{"cmd":"observe","session":"{name}"}}"#)).unwrap();
            let obj = parse_object(&observe).unwrap();
            let coloring = parse_coloring(obj["coloring"].as_str().unwrap(), 30).unwrap();
            assert!(coloring.is_proper_total(&g), "{name}");
        }
    }

    #[test]
    fn stats_surface_space_and_query_cache_counters() {
        let mut service = Service::new();
        service.respond(&open_line("s", 20, 4, "store-all", 1)).unwrap();
        service.respond(r#"{"cmd":"push_batch","session":"s","edges":"0-1 1-2 2-3"}"#).unwrap();
        service.respond(r#"{"cmd":"observe","session":"s"}"#).unwrap();
        service.respond(r#"{"cmd":"observe","session":"s"}"#).unwrap();
        let stats = service.respond(r#"{"cmd":"stats","session":"s"}"#).unwrap();
        let obj = parse_object(&stats).unwrap();
        assert_eq!(obj["edges"].as_u64(), Some(3));
        assert!(obj["space_bits"].as_u64().unwrap() > 0);
        // store-all has an incremental path: two queries, second is a hit.
        assert_eq!(obj["cache_hits"].as_u64(), Some(1), "{stats}");
        assert_eq!(obj["cache_misses"].as_u64(), Some(1), "{stats}");
        // No patch ran, so the patch-depth counter must surface as 0.
        assert_eq!(obj["cache_patched_vertices"].as_u64(), Some(0), "{stats}");

        // A colorer without an incremental path reports cache: none.
        service.respond(&open_line("t", 10, 3, "trivial", 1)).unwrap();
        let stats = service.respond(r#"{"cmd":"stats","session":"t"}"#).unwrap();
        assert!(stats.contains("\"cache\":\"none\""), "{stats}");
    }

    #[test]
    fn scheduled_checkpoints_fire_inside_service_sessions() {
        let mut service = Service::new();
        let open = r#"{"cmd":"open","session":"cp","n":20,"delta":4,"colorer":"store-all","engine":"chunk=2;schedule=every:3;incremental=true"}"#;
        assert!(service.respond(open).unwrap().contains("\"ok\":true"));
        let g = generators::gnp_with_max_degree(20, 4, 0.5, 8);
        let edges = wire::encode_edges(g.edges());
        service
            .respond(&format!(r#"{{"cmd":"push_batch","session":"cp","edges":"{edges}"}}"#))
            .unwrap();
        let stats = service.respond(r#"{"cmd":"stats","session":"cp"}"#).unwrap();
        let obj = parse_object(&stats).unwrap();
        assert_eq!(obj["checkpoints"].as_u64(), Some(g.m() as u64 / 3), "{stats}");
        let finish = service.respond(r#"{"cmd":"finish","session":"cp"}"#).unwrap();
        let obj = parse_object(&finish).unwrap();
        assert_eq!(obj["edges"].as_u64(), Some(g.m() as u64));
    }

    #[test]
    fn protocol_errors_are_responses_never_panics() {
        let mut service = Service::new();
        for (line, needle) in [
            ("{", "expected"), // malformed JSON
            (r#"{"cmd":"open"}"#, "missing string field"),
            (r#"{"cmd":"open","session":""}"#, "non-empty"),
            (r#"{"session":"x"}"#, "missing string field"),
            (r#"{"cmd":"paint","session":"x"}"#, "unknown cmd"),
            (r#"{"cmd":"push","session":"x","edge":"0-1"}"#, "unknown session"),
            (r#"{"cmd":"open","session":"x","n":10,"colorer":"quantum"}"#, "unknown colorer"),
            (
                r#"{"cmd":"open","session":"x","n":10,"colorer":"batch-greedy"}"#,
                "not a single-pass",
            ),
            (r#"{"cmd":"open","session":"x","n":10,"colorer":"bcg20","epsilon":0.5}"#, "bcg20"),
            (
                r#"{"cmd":"open","session":"x","n":10,"colorer":"robust","betaa":0.5}"#,
                "unknown key",
            ),
            (r#"{"cmd":"open","session":"x","colorer":"robust"}"#, "missing integer field"),
            (
                r#"{"cmd":"open","session":"x","n":"ten","colorer":"robust"}"#,
                "must be a non-negative integer",
            ),
            // A rogue tenant cannot abort the host with a giant open:
            // size limits are error responses, not allocation failures.
            (
                r#"{"cmd":"open","session":"x","n":200000000000,"colorer":"store-all"}"#,
                "exceeds this host's limit",
            ),
            (
                r#"{"cmd":"open","session":"x","n":10,"delta":11,"colorer":"store-all"}"#,
                "exceeds n",
            ),
        ] {
            let response = service.respond(line).unwrap();
            assert!(
                response.contains("\"ok\":false") && response.contains(needle),
                "{line} -> {response}"
            );
        }
        // Session-level errors after open.
        service.respond(r#"{"cmd":"open","session":"x","n":10,"colorer":"store-all"}"#).unwrap();
        for (line, needle) in [
            (r#"{"cmd":"open","session":"x","n":10,"colorer":"store-all"}"#, "already open"),
            (r#"{"cmd":"push","session":"x","edge":"3-3"}"#, "self-loop"),
            (r#"{"cmd":"push","session":"x","edge":"5-99"}"#, "out of range"),
            (r#"{"cmd":"push","session":"x","edge":"0-1 2-3"}"#, "exactly one edge"),
            (r#"{"cmd":"push","session":"x","edge":"0-1","extra":1}"#, "unknown key"),
            (r#"{"cmd":"observe","session":"x","extra":1}"#, "unknown key"),
        ] {
            let response = service.respond(line).unwrap();
            assert!(
                response.contains("\"ok\":false") && response.contains(needle),
                "{line} -> {response}"
            );
        }
        // Blank lines and comments produce no response.
        assert!(service.respond("").is_none());
        assert!(service.respond("   ").is_none());
        assert!(service.respond("# comment").is_none());
    }

    #[test]
    fn signed_push_errors_name_the_offender_and_leave_state_intact() {
        let mut service = Service::new();
        service
            .respond(r#"{"cmd":"open","session":"d","n":12,"delta":3,"colorer":"dynamic-sr"}"#)
            .unwrap();
        service.respond(r#"{"cmd":"open","session":"s","n":12,"delta":3,"colorer":"robust"}"#).unwrap();
        for session in ["d", "s"] {
            let line = format!(r#"{{"cmd":"push","session":"{session}","edge":"0-1"}}"#);
            assert!(service.respond(&line).unwrap().contains("\"ok\":true"));
        }
        let before_d = service.respond(r#"{"cmd":"observe","session":"d"}"#).unwrap();
        let before_s = service.respond(r#"{"cmd":"observe","session":"s"}"#).unwrap();

        for (line, needle) in [
            // Turnstile misuse through both signed vocabularies: the
            // error names the edge…
            (
                r#"{"cmd":"push","session":"d","edge":"4-5","sign":"delete"}"#,
                "delete of edge (4, 5) which was never inserted",
            ),
            (
                r#"{"cmd":"push_batch","session":"d","edges":"-7-8"}"#,
                "delete of edge (7, 8) which was never inserted",
            ),
            // …a deletion aimed at an insert-only colorer names the
            // colorer…
            (
                r#"{"cmd":"push","session":"s","edge":"0-1","sign":"delete"}"#,
                "insert-only colorer cannot delete edge (0, 1)",
            ),
            // …and a malformed sign field names the field and the value.
            (
                r#"{"cmd":"push","session":"d","edge":"0-1","sign":"sideways"}"#,
                r#"field \"sign\" must be \"insert\" or \"delete\", got \"sideways\""#,
            ),
            (
                r#"{"cmd":"push","session":"d","edge":"0-1","sign":7}"#,
                r#"field \"sign\" must be a string"#,
            ),
            // A valid deletion buried in a bad batch must not apply:
            // signed batches are atomic.
            (
                r#"{"cmd":"push_batch","session":"d","edges":"-0-1 -0-1"}"#,
                "delete of edge (0, 1) which was never inserted",
            ),
        ] {
            let response = service.respond(line).unwrap();
            assert!(
                response.contains("\"ok\":false") && response.contains(needle),
                "{line} -> {response}"
            );
        }

        // Every rejected line left the tenant byte-identical.
        assert_eq!(service.respond(r#"{"cmd":"observe","session":"d"}"#).unwrap(), before_d);
        assert_eq!(service.respond(r#"{"cmd":"observe","session":"s"}"#).unwrap(), before_s);
    }

    #[test]
    fn run_script_is_thread_count_invariant_and_matches_line_by_line() {
        // One script, three sessions with interleaved commands plus
        // deliberate errors; every execution mode must emit identical
        // bytes.
        let g = generators::gnp_with_max_degree(24, 4, 0.5, 5);
        let edges: Vec<_> = g.edges().collect();
        let mut script = String::new();
        script.push_str("# interleaved three-tenant script\n\n");
        for (name, colorer) in [("a", "robust"), ("b", "store-all"), ("c", "bg18")] {
            script.push_str(&open_line(name, 24, 4, colorer, 3));
            script.push('\n');
        }
        for chunk in edges.chunks(3) {
            for name in ["a", "b", "c"] {
                let text = wire::encode_edges(chunk.iter().copied());
                script.push_str(&format!(
                    r#"{{"cmd":"push_batch","session":"{name}","edges":"{text}"}}"#
                ));
                script.push('\n');
                script.push_str(&format!(r#"{{"cmd":"observe","session":"{name}"}}"#));
                script.push('\n');
            }
        }
        script.push_str("{bad json\n");
        script.push_str(r#"{"cmd":"stats","session":"nope"}"#);
        script.push('\n');
        for name in ["a", "b", "c"] {
            script.push_str(&format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
            script.push('\n');
        }

        let line_by_line = {
            let mut service = Service::new();
            let mut out = String::new();
            for line in script.lines() {
                if let Some(response) = service.respond(line) {
                    out.push_str(&response);
                    out.push('\n');
                }
            }
            out
        };
        for threads in [1, 2, 8] {
            let mut service = Service::with_threads(threads);
            let batch = service.run_script(&script);
            assert_eq!(batch, line_by_line, "threads = {threads} changed the output bytes");
            assert!(service.session_names().is_empty());
        }
        // And the script actually exercised the happy path.
        assert!(line_by_line.contains("\"ok\":true"));
        assert!(line_by_line.contains("\"ok\":false"));
    }

    #[test]
    fn run_job_answers_with_the_worker_output_file() {
        use sc_engine::shard::{self, ShardOutcome};
        use sc_engine::{ColorerSpec, Scenario, SourceSpec};
        let job = ShardJob::Grid(vec![
            Scenario::new(SourceSpec::exact_degree(30, 3, 1), ColorerSpec::Trivial),
            Scenario::new(SourceSpec::exact_degree(30, 3, 2), ColorerSpec::StoreAll),
            Scenario::new(SourceSpec::exact_degree(30, 3, 3), ColorerSpec::OfflineGreedy),
        ]);
        let mut service = Service::new();
        let mut parts = Vec::new();
        for shard in 0..2usize {
            let mut line = FlatObject::new();
            line.insert("cmd".into(), Scalar::Str("run_job".into()));
            line.insert("session".into(), Scalar::Str(format!("shard-{shard}")));
            line.insert("spec".into(), Scalar::Str(job.encode()));
            line.insert("shard".into(), Scalar::Uint(shard as u64));
            line.insert("of".into(), Scalar::Uint(2));
            let response = service.respond(&encode_object(&line)).unwrap();
            let obj = parse_object(&response).unwrap();
            assert_eq!(obj["ok"].as_bool(), Some(true), "{response}");
            assert_eq!(obj["items"].as_u64(), Some(3));
            let (s, of, outcome) =
                shard::decode_worker_output(obj["output"].as_str().unwrap()).unwrap();
            assert_eq!((s, of), (shard, 2));
            parts.push(outcome);
        }
        // The stateless command opened nothing…
        assert!(service.session_names().is_empty());
        // …and the merged parts reproduce the in-process run exactly.
        let merged = ShardOutcome::merge(parts).unwrap();
        assert_eq!(merged.encode(), shard::run_in_process(&job, 1).unwrap().encode());
    }

    #[test]
    fn run_job_rejects_malformed_requests_as_responses() {
        let mut service = Service::new();
        for (line, needle) in [
            (r#"{"cmd":"run_job","session":"j","spec":"[]\n","shard":0,"of":0}"#, "at least 1"),
            (r#"{"cmd":"run_job","session":"j","spec":"[]\n","shard":3,"of":2}"#, "out of range"),
            (r#"{"cmd":"run_job","session":"j","spec":"{bad","shard":0,"of":1}"#, "spec:"),
            (r#"{"cmd":"run_job","session":"j","shard":0,"of":1}"#, "missing string field"),
            (
                r#"{"cmd":"run_job","session":"j","spec":"[]\n","shard":0,"of":1,"x":1}"#,
                "unknown key",
            ),
        ] {
            let response = service.respond(line).unwrap();
            assert!(
                response.contains("\"ok\":false") && response.contains(needle),
                "{line} -> {response}"
            );
        }
        // run_job neither needs nor disturbs a tenant of the same name.
        service.respond(r#"{"cmd":"open","session":"j","n":10,"colorer":"store-all"}"#).unwrap();
        service.respond(r#"{"cmd":"push","session":"j","edge":"0-1"}"#).unwrap();
        let spec = ShardJob::Grid(Vec::new()).encode();
        let mut line = FlatObject::new();
        line.insert("cmd".into(), Scalar::Str("run_job".into()));
        line.insert("session".into(), Scalar::Str("j".into()));
        line.insert("spec".into(), Scalar::Str(spec));
        line.insert("shard".into(), Scalar::Uint(0));
        line.insert("of".into(), Scalar::Uint(1));
        let response = service.respond(&encode_object(&line)).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        let stats = service.respond(r#"{"cmd":"stats","session":"j"}"#).unwrap();
        assert!(stats.contains("\"edges\":1"), "tenant perturbed: {stats}");
    }

    #[test]
    fn session_limit_is_an_error_response_and_finish_frees_a_slot() {
        let mut service = Service::new().with_max_sessions(2);
        assert!(service.respond(&open_line("a", 10, 3, "trivial", 1)).unwrap().contains("true"));
        assert!(service.respond(&open_line("b", 10, 3, "trivial", 1)).unwrap().contains("true"));
        let third = service.respond(&open_line("c", 10, 3, "trivial", 1)).unwrap();
        assert!(
            third.contains("\"ok\":false") && third.contains("session limit reached (2 open)"),
            "{third}"
        );
        // Re-opening an already-open name is the ordinary error, not the
        // limit (the tenant already holds its slot).
        let again = service.respond(&open_line("a", 10, 3, "trivial", 1)).unwrap();
        assert!(again.contains("already open"), "{again}");
        // Stateless commands are never limited.
        let spec = ShardJob::Grid(Vec::new()).encode();
        let mut line = FlatObject::new();
        line.insert("cmd".into(), Scalar::Str("run_job".into()));
        line.insert("session".into(), Scalar::Str("jobs".into()));
        line.insert("spec".into(), Scalar::Str(spec));
        line.insert("shard".into(), Scalar::Uint(0));
        line.insert("of".into(), Scalar::Uint(1));
        assert!(service.respond(&encode_object(&line)).unwrap().contains("\"ok\":true"));
        // finish frees the slot; the next open succeeds.
        service.respond(r#"{"cmd":"finish","session":"a"}"#).unwrap();
        let reopened = service.respond(&open_line("c", 10, 3, "trivial", 1)).unwrap();
        assert!(reopened.contains("\"ok\":true"), "{reopened}");
    }

    #[test]
    fn session_limit_in_scripts_is_thread_count_invariant() {
        let mut script = String::new();
        for name in ["a", "b", "c", "d"] {
            script.push_str(&open_line(name, 10, 3, "trivial", 1));
            script.push('\n');
        }
        script.push_str(r#"{"cmd":"finish","session":"a"}"#);
        script.push('\n');
        script.push_str(&open_line("e", 10, 3, "trivial", 1));
        script.push('\n');
        for name in ["b", "c", "e"] {
            script.push_str(&format!(r#"{{"cmd":"finish","session":"{name}"}}"#));
            script.push('\n');
        }
        let reference = Service::new().with_max_sessions(3).run_script(&script);
        assert_eq!(reference.matches("session limit reached (3 open)").count(), 1, "{reference}");
        assert!(reference.contains(r#""session":"d""#), "d must be the rejected open");
        // e opens fine after a's finish freed a slot.
        assert_eq!(reference.matches("\"ok\":false").count(), 1, "{reference}");
        for threads in [2, 8] {
            let batch = Service::with_threads(threads).with_max_sessions(3).run_script(&script);
            assert_eq!(batch, reference, "threads = {threads} changed limited-script output");
        }
    }

    #[test]
    fn serve_loop_round_trips_via_io() {
        let mut service = Service::new();
        let input = format!(
            "{}\n{}\n{}\n",
            open_line("io", 10, 3, "trivial", 1),
            r#"{"cmd":"push_batch","session":"io","edges":"0-1 1-2"}"#,
            r#"{"cmd":"finish","session":"io"}"#
        );
        let mut output = Vec::new();
        service.serve(input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.contains("\"ok\":true")), "{text}");
    }

    #[test]
    fn coloring_strings_round_trip() {
        let mut c = Coloring::empty(4);
        c.set(0, 2);
        c.set(2, 0);
        let text = coloring_string(&c);
        assert_eq!(text, "2,-,0,-");
        assert_eq!(parse_coloring(&text, 4).unwrap(), c);
        assert!(parse_coloring(&text, 5).is_err());
        assert!(parse_coloring("1,x,2,3", 4).unwrap_err().contains("cell 1"));
        assert_eq!(parse_coloring("", 0).unwrap(), Coloring::empty(0));
        let g = Graph::from_edges(4, [sc_graph::Edge::new(0, 2)]);
        assert!(parse_coloring(&text, 4).unwrap().is_proper_partial(&g));
    }

    #[test]
    fn owners_have_private_namespaces_and_drop_owner_reaps_them() {
        let mut service = Service::new();
        for owner in [1u64, 2] {
            let open =
                service.respond_as(owner, &open_line("a", 10, 3, "store-all", owner)).unwrap();
            assert!(open.contains("\"ok\":true"), "{open}");
        }
        // Same name, different owners: pushes land in different tenants.
        let push = service.respond_as(1, r#"{"cmd":"push","session":"a","edge":"0-1"}"#).unwrap();
        assert!(push.contains("\"len\":1"), "{push}");
        let stats2 = service.respond_as(2, r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(stats2.contains("\"edges\":0"), "owner 2 saw owner 1's push: {stats2}");
        assert_eq!(service.session_names(), vec!["a", "a"]);

        assert_eq!(service.drop_owner(1), 1);
        assert_eq!(service.session_names(), vec!["a"]);
        let gone = service.respond_as(1, r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(gone.contains("unknown session"), "{gone}");
        let kept = service.respond_as(2, r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(kept.contains("\"ok\":true"), "{kept}");
        assert_eq!(service.counters().sessions_dropped, 1);
    }

    #[test]
    fn lru_eviction_evicts_oldest_leaves_tombstone_and_reopen_replays() {
        let mut service = Service::new().with_max_sessions(2).with_lru_eviction();
        for name in ["a", "b"] {
            service.respond(&open_line(name, 10, 3, "store-all", 5)).unwrap();
        }
        // Touch "a" so "b" is the least recently used.
        service.respond(r#"{"cmd":"push","session":"a","edge":"0-1"}"#).unwrap();
        let open_c = service.respond(&open_line("c", 10, 3, "store-all", 5)).unwrap();
        assert!(open_c.contains("\"ok\":true"), "open at cap must evict, not error: {open_c}");
        assert_eq!(service.session_names(), vec!["a", "c"]);
        assert_eq!(service.counters().sessions_evicted, 1);

        // The evicted session answers a tombstone error, never an abort.
        let tomb = service.respond(r#"{"cmd":"push","session":"b","edge":"0-1"}"#).unwrap();
        assert!(tomb.contains("session evicted (lru)"), "{tomb}");
        assert!(tomb.contains("\"ok\":false"), "{tomb}");

        // Reopening clears the tombstone and replays byte-identically
        // against a fresh service.
        let mut replay: Vec<String> = Vec::new();
        for line in [
            open_line("b", 10, 3, "store-all", 5),
            r#"{"cmd":"push","session":"b","edge":"2-3"}"#.to_string(),
            r#"{"cmd":"finish","session":"b"}"#.to_string(),
        ] {
            replay.push(service.respond(&line).unwrap());
        }
        let mut fresh = Service::new();
        for (i, line) in [
            open_line("b", 10, 3, "store-all", 5),
            r#"{"cmd":"push","session":"b","edge":"2-3"}"#.to_string(),
            r#"{"cmd":"finish","session":"b"}"#.to_string(),
        ]
        .iter()
        .enumerate()
        {
            assert_eq!(fresh.respond(line).unwrap(), replay[i], "reopened session must replay");
        }
    }

    #[test]
    fn without_lru_eviction_the_cap_still_errors() {
        let mut service = Service::new().with_max_sessions(1);
        service.respond(&open_line("a", 10, 3, "store-all", 5)).unwrap();
        let denied = service.respond(&open_line("b", 10, 3, "store-all", 5)).unwrap();
        assert!(denied.contains("session limit reached"), "{denied}");
        assert_eq!(service.counters().sessions_evicted, 0);
    }

    #[test]
    fn host_stats_reports_lifecycle_counters_interactively() {
        let mut service = Service::new();
        service.respond(&open_line("a", 10, 3, "store-all", 5)).unwrap();
        service.respond(r#"{"cmd":"finish","session":"a"}"#).unwrap();
        service.respond(&open_line("b", 10, 3, "store-all", 5)).unwrap();
        service.record_connections(3, 17);
        let stats = service.respond(r#"{"cmd":"host_stats","session":"probe"}"#).unwrap();
        let obj = parse_object(&stats).unwrap();
        assert_eq!(obj["ok"].as_bool(), Some(true));
        assert_eq!(obj["session"].as_str(), Some("probe"));
        assert_eq!(obj["sessions_open"].as_u64(), Some(1));
        assert_eq!(obj["sessions_opened"].as_u64(), Some(2));
        assert_eq!(obj["sessions_finished"].as_u64(), Some(1));
        assert_eq!(obj["connections_open"].as_u64(), Some(3));
        assert_eq!(obj["connections_accepted"].as_u64(), Some(17));

        // host_stats never touches the session table: "probe" is only a
        // correlation id.
        assert_eq!(service.session_names(), vec!["b"]);
    }

    #[test]
    fn host_stats_in_scripts_is_a_deterministic_error() {
        let mut service = Service::new();
        let out = service.run_script("{\"cmd\":\"host_stats\",\"session\":\"x\"}\n");
        assert!(out.contains("\"ok\":false"), "{out}");
        assert!(out.contains("interactive-only"), "{out}");
    }

    /// A fresh per-test scratch directory under the system temp dir
    /// (the workspace vendors no tempfile crate).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sc-snap-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_restore_round_trips_mid_stream() {
        let mut service = Service::new();
        service.respond(&open_line("a", 20, 4, "robust", 3)).unwrap();
        service.respond(r#"{"cmd":"push_batch","session":"a","edges":"0-1 1-2 2-3"}"#).unwrap();
        let snap = service.respond(r#"{"cmd":"snapshot","session":"a"}"#).unwrap();
        let obj = parse_object(&snap).unwrap();
        assert_eq!(obj["ok"].as_bool(), Some(true), "{snap}");
        assert_eq!(obj["edges"].as_u64(), Some(3));
        let blob = obj["snapshot"].as_str().unwrap().to_string();
        // The blob is itself a canonical flat-JSON object.
        assert!(parse_object(&blob).is_ok(), "{blob}");

        // Snapshot is non-destructive: the source session still answers.
        let live = service.respond(r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(live.contains("\"edges\":3"), "{live}");

        // Restore under a fresh name on a fresh host; from here on the
        // two sessions answer byte-identically.
        let mut other = Service::new();
        let mut line = FlatObject::new();
        line.insert("cmd".into(), Scalar::Str("restore".into()));
        line.insert("session".into(), Scalar::Str("b".into()));
        line.insert("snapshot".into(), Scalar::Str(blob));
        let restored = other.respond(&encode_object(&line)).unwrap();
        assert!(restored.contains("\"ok\":true"), "{restored}");
        assert!(restored.contains("\"edges\":3"), "{restored}");
        for tail in [
            r#"{"cmd":"push_batch","session":"NAME","edges":"3-4 4-5"}"#,
            r#"{"cmd":"observe","session":"NAME"}"#,
            r#"{"cmd":"checkpoint","session":"NAME"}"#,
            r#"{"cmd":"finish","session":"NAME"}"#,
        ] {
            let a = service.respond(&tail.replace("NAME", "a")).unwrap();
            let b = other.respond(&tail.replace("NAME", "b")).unwrap();
            assert_eq!(
                a.replace("\"session\":\"a\"", "\"session\":\"S\""),
                b.replace("\"session\":\"b\"", "\"session\":\"S\""),
                "restored session diverged on {tail}"
            );
        }
    }

    #[test]
    fn restore_rejects_malformed_blobs_naming_the_offender() {
        let mut service = Service::new();
        service.respond(&open_line("a", 10, 3, "store-all", 1)).unwrap();
        service.respond(r#"{"cmd":"push","session":"a","edge":"0-1"}"#).unwrap();
        let snap = service.respond(r#"{"cmd":"snapshot","session":"a"}"#).unwrap();
        let blob = parse_object(&snap).unwrap()["snapshot"].as_str().unwrap().to_string();

        let restore_line = |blob: &str| {
            let mut line = FlatObject::new();
            line.insert("cmd".into(), Scalar::Str("restore".into()));
            line.insert("session".into(), Scalar::Str("r".into()));
            line.insert("snapshot".into(), Scalar::Str(blob.to_string()));
            encode_object(&line)
        };
        for (mangled, needle) in [
            ("{not json".to_string(), "snapshot:"),
            (
                blob.replace("session-snapshot", "session-snapshit"),
                "is not \\\"session-snapshot\\\"",
            ),
            (blob.replace("\"algo\":\"store-all\"", "\"algo\":\"robust-alg2\""), "algo"),
            (blob.replace("\"kind\"", "\"kindd\""), "missing string field \\\"kind\\\""),
            (blob.replace("\"chunks\"", "\"chunkz\""), "unknown key"),
            (blob.replace("\"state\":\"algo=store-all", "\"state\":\"algo=storr-all"), "algo"),
        ] {
            let response = service.respond(&restore_line(&mangled)).unwrap();
            assert!(
                response.contains("\"ok\":false") && response.contains(needle),
                "{mangled} -> {response}"
            );
        }
        // Restoring over an open session is refused.
        let clash = service
            .respond(&restore_line(&blob).replace("\"session\":\"r\"", "\"session\":\"a\""))
            .unwrap();
        assert!(clash.contains("already open"), "{clash}");
        // The untouched blob restores fine.
        let good = service.respond(&restore_line(&blob)).unwrap();
        assert!(good.contains("\"ok\":true"), "{good}");
    }

    #[test]
    fn evict_to_disk_restores_transparently_and_replays_byte_identically() {
        let dir = scratch_dir("evict");
        let mut evicting =
            Service::new().with_max_sessions(1).with_lru_eviction().with_snapshot_dir(dir.clone());
        let mut uninterrupted = Service::new();

        let drive = |svc: &mut Service, line: &str| svc.respond(line).unwrap();
        let open_a = open_line("a", 20, 4, "robust", 3);
        assert_eq!(drive(&mut evicting, &open_a), drive(&mut uninterrupted, &open_a));
        let push = r#"{"cmd":"push_batch","session":"a","edges":"0-1 1-2 2-3"}"#;
        assert_eq!(drive(&mut evicting, push), drive(&mut uninterrupted, push));

        // Opening "b" at cap 1 evicts "a" — to disk, not to a tombstone.
        let open_b = open_line("b", 10, 3, "trivial", 1);
        assert!(drive(&mut evicting, &open_b).contains("\"ok\":true"));
        assert_eq!(evicting.counters().disk_evictions, 1);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1, "one .snap file");

        // "a"'s next command transparently restores and matches the
        // uninterrupted host byte-for-byte (which evicts "b" to disk in
        // turn — the cap stays enforced).
        for line in [
            r#"{"cmd":"push","session":"a","edge":"3-4"}"#,
            r#"{"cmd":"observe","session":"a"}"#,
            r#"{"cmd":"checkpoint","session":"a"}"#,
            r#"{"cmd":"finish","session":"a"}"#,
        ] {
            assert_eq!(
                drive(&mut evicting, line),
                drive(&mut uninterrupted, line),
                "disk-restored session diverged on {line}"
            );
        }
        assert_eq!(evicting.counters().disk_restores, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_snapshot_dir_eviction_keeps_the_tombstone_path() {
        // (Pinned by lru_eviction_evicts_oldest_…; here: reopen after a
        // disk eviction discards the stale file.)
        let dir = scratch_dir("reopen");
        let mut service =
            Service::new().with_max_sessions(1).with_lru_eviction().with_snapshot_dir(dir.clone());
        service.respond(&open_line("a", 10, 3, "store-all", 5)).unwrap();
        service.respond(&open_line("b", 10, 3, "trivial", 1)).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // Reopen "a" fresh: stale snapshot deleted, state starts over.
        service.respond(r#"{"cmd":"finish","session":"b"}"#).unwrap();
        let reopened = service.respond(&open_line("a", 10, 3, "store-all", 5)).unwrap();
        assert!(reopened.contains("\"ok\":true"), "{reopened}");
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "stale .snap must be gone");
        let stats = service.respond(r#"{"cmd":"stats","session":"a"}"#).unwrap();
        assert!(stats.contains("\"edges\":0"), "reopen must not resurrect state: {stats}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_owner_reaps_snapshot_files() {
        let dir = scratch_dir("drop");
        let mut service =
            Service::new().with_max_sessions(1).with_lru_eviction().with_snapshot_dir(dir.clone());
        service.respond_as(7, &open_line("a", 10, 3, "store-all", 5)).unwrap();
        service.respond_as(7, &open_line("b", 10, 3, "trivial", 1)).unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        service.drop_owner(7);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0, "dropped owner's files reaped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn host_stats_reports_snapshot_counters() {
        let mut service = Service::new();
        service.respond(&open_line("a", 10, 3, "store-all", 5)).unwrap();
        let snap = service.respond(r#"{"cmd":"snapshot","session":"a"}"#).unwrap();
        let blob = parse_object(&snap).unwrap()["snapshot"].as_str().unwrap().to_string();
        let mut line = FlatObject::new();
        line.insert("cmd".into(), Scalar::Str("restore".into()));
        line.insert("session".into(), Scalar::Str("b".into()));
        line.insert("snapshot".into(), Scalar::Str(blob));
        service.respond(&encode_object(&line)).unwrap();
        let stats = service.respond(r#"{"cmd":"host_stats","session":"probe"}"#).unwrap();
        let obj = parse_object(&stats).unwrap();
        assert_eq!(obj["snapshots"].as_u64(), Some(1), "{stats}");
        assert_eq!(obj["restores"].as_u64(), Some(1), "{stats}");
        assert_eq!(obj["disk_evictions"].as_u64(), Some(0), "{stats}");
        assert_eq!(obj["disk_restores"].as_u64(), Some(0), "{stats}");
    }
}
