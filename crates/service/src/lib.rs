//! # `sc-service` — the multi-tenant serving surface
//!
//! The paper's model is inherently interactive: a client (or adversary)
//! alternates edge insertions with coloring queries, and the algorithm
//! must answer after *any* prefix. Everything below this crate serves
//! one such interaction at a time; `sc-service` is the layer that hosts
//! **many named concurrent sessions** — the shape a serving deployment
//! needs — behind two equivalent faces:
//!
//! * the typed [`Service`] API (`open` / `push` / `push_batch` /
//!   `observe` / `checkpoint` / `stats` / `finish`, addressed by session
//!   name), each session an owned [`sc_stream::Session`] built from a
//!   [`sc_engine::ColorerSpec`];
//! * the **flat-JSON line protocol** ([`Service::respond`] /
//!   [`Service::serve`] / [`Service::run_script`]): one request object
//!   per line in, one canonical byte-stable response object per line
//!   out, so shell scripts, tests, the adversary game
//!   ([`run_game_via_service`]) and cluster shard workers all drive the
//!   same API (`streamcolor serve` is this loop over stdin/stdout; the
//!   stateless `run_job` command is what makes any serve endpoint a
//!   remote worker for `sc-cluster`, and `with_max_sessions` bounds
//!   what one rogue client on a shared listener can open).
//!
//! Sessions are fully independent — no shared state, no cross-session
//! ordering — which yields the crate's **determinism law**: interleaving
//! K sessions in any order produces, per session, byte-identical
//! responses to K isolated runs, for every thread count
//! (property-tested in `tests/service_determinism.rs`, golden-file
//! gated by CI's `service-smoke` job).
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns *session hosting and protocol dispatch* — naming,
//! isolation, limits (`with_max_sessions`), and the request/response
//! envelope. It owns no vocabulary of its own: commands decode through
//! `sc_engine::wire` and encode through `sc_engine::flatjson`, so the
//! serving, sharding, and cluster layers can never fork the wire
//! format. The full protocol reference lives in `docs/PROTOCOL.md`.

pub mod game;
pub mod service;

pub use game::run_game_via_service;
pub use service::{HostCounters, Service};
