//! The adaptive-adversary game (paper §2, "Adversarially Robust
//! Streaming").
//!
//! The adversary produces the stream one edge at a time; after every
//! insertion the algorithm reports an output, and the next edge may depend
//! on the whole transcript. The algorithm errs if *any* intermediate
//! output is improper. [`run_game`] referees exactly that interaction,
//! maintaining the ground-truth graph (which the algorithm never sees) and
//! validating every output against it.

use sc_graph::{Coloring, Edge, Graph};
use sc_stream::{EngineConfig, EngineSession, SignedEdge, StreamingColorer};

/// An adaptive stream-generating adversary.
pub trait Adversary {
    /// Produces the next edge, given the algorithm's latest output and the
    /// current ground-truth graph (the adversary knows its own insertions).
    /// Returning `None` ends the game.
    fn next_edge(&mut self, last_output: &Coloring, graph: &Graph) -> Option<Edge>;

    /// Produces the next **signed** token for turnstile games
    /// ([`run_signed_game`]). The default wraps [`Adversary::next_edge`]
    /// as an insertion, so every insert-only adversary plays the signed
    /// game unchanged; deletion-aware attackers override this.
    fn next_token(&mut self, last_output: &Coloring, graph: &Graph) -> Option<SignedEdge> {
        self.next_edge(last_output, graph).map(SignedEdge::insert)
    }

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Outcome of one adversarial game.
#[derive(Debug, Clone)]
pub struct GameReport {
    /// Tokens the adversary produced (insertions in the classic game).
    pub rounds: usize,
    /// How many of those tokens were deletions (0 in the classic game).
    pub deletions: usize,
    /// Outputs that were improper for the graph-so-far (the paper's error
    /// events; a robust algorithm with error `δ` should have none, w.h.p.).
    pub improper_outputs: usize,
    /// Round index (1-based) of the first improper output, if any.
    pub first_failure_round: Option<usize>,
    /// Maximum distinct colors over all outputs.
    pub max_colors: usize,
    /// The final adversarially built graph.
    pub final_graph: Graph,
}

impl GameReport {
    /// Whether the algorithm survived every query.
    pub fn survived(&self) -> bool {
        self.improper_outputs == 0
    }
}

/// Referees a game between `colorer` and `adversary` on `n` vertices for
/// at most `max_rounds` insertions.
///
/// The adversary sees each output *before* choosing the next edge —
/// exactly the adaptive model. Every output is validated against the
/// ground-truth graph.
///
/// # Example
/// ```
/// use sc_adversary::{run_game, MonochromaticAttacker};
/// use streamcolor::RobustColorer;
///
/// let (n, delta) = (80, 8);
/// let mut attacker = MonochromaticAttacker::new(n, delta, 1);
/// let mut colorer = RobustColorer::new(n, delta, 2);
/// let report = run_game(&mut colorer, &mut attacker, n, 200);
/// assert!(report.survived(), "robust colorers withstand the feedback attack");
/// ```
pub fn run_game<C, A>(colorer: &mut C, adversary: &mut A, n: usize, max_rounds: usize) -> GameReport
where
    C: StreamingColorer + ?Sized,
    A: Adversary + ?Sized,
{
    run_game_with_config(colorer, adversary, n, max_rounds, EngineConfig::per_edge())
}

/// [`run_game`] with an explicit engine configuration.
///
/// The game still forces per-edge observation (the adaptive model), but
/// the config controls the *query path*: the default routes every
/// per-round observation through
/// [`StreamingColorer::query_incremental`], which the colorer contract
/// makes observationally identical to from-scratch queries —
/// [`EngineConfig::scratch_queries`] opts out, which benchmarks use to
/// measure the incremental path's end-to-end effect on game wall-clock.
pub fn run_game_with_config<C, A>(
    colorer: &mut C,
    adversary: &mut A,
    n: usize,
    max_rounds: usize,
    config: EngineConfig,
) -> GameReport
where
    C: StreamingColorer + ?Sized,
    A: Adversary + ?Sized,
{
    let mut graph = Graph::empty(n);
    let mut improper = 0usize;
    let mut first_failure = None;
    let mut max_colors = 0usize;
    let mut rounds = 0usize;

    // The game is the engine's checkpoint loop made interactive: every
    // round pushes one edge and observes the prefix. Per-edge chunking is
    // forced by the model — the adversary sees each output before its
    // next move.
    let mut session = EngineSession::new(colorer, EngineConfig { chunk_size: 1, ..config });

    // Initial output (empty graph — everything is proper, but the
    // adversary gets to see the coloring before its first move).
    let mut output: Coloring = session.observe().coloring;

    for round in 1..=max_rounds {
        let Some(e) = adversary.next_edge(&output, &graph) else { break };
        debug_assert!(
            !graph.has_edge(e.u(), e.v()),
            "adversary repeated edge {e} (streams are edge-insertion-only)"
        );
        graph.add_edge(e);
        session.push(e);
        rounds = round;

        let observed = session.observe();
        max_colors = max_colors.max(observed.colors);
        output = observed.coloring;
        if !output.is_proper_total(&graph) {
            improper += 1;
            if first_failure.is_none() {
                first_failure = Some(round);
            }
        }
    }

    GameReport {
        rounds,
        deletions: 0,
        improper_outputs: improper,
        first_failure_round: first_failure,
        max_colors,
        final_graph: graph,
    }
}

/// Referees a **turnstile** game: the adversary may delete as well as
/// insert, and every output is validated against the *live* graph.
///
/// Same adaptive discipline as [`run_game`] (per-token observation), with
/// the referee enforcing stream sanity: an inserted edge must be absent,
/// a deleted edge present (simple-graph multiplicities — the referee
/// panics on a malformed adversary rather than blaming the colorer). The
/// colorer must support deletions; an insert-only colorer's
/// offender-naming rejection propagates as a panic.
pub fn run_signed_game<C, A>(
    colorer: &mut C,
    adversary: &mut A,
    n: usize,
    max_rounds: usize,
) -> GameReport
where
    C: StreamingColorer + ?Sized,
    A: Adversary + ?Sized,
{
    run_signed_game_with_config(colorer, adversary, n, max_rounds, EngineConfig::per_edge())
}

/// [`run_signed_game`] with an explicit engine configuration (see
/// [`run_game_with_config`] for what the config governs).
pub fn run_signed_game_with_config<C, A>(
    colorer: &mut C,
    adversary: &mut A,
    n: usize,
    max_rounds: usize,
    config: EngineConfig,
) -> GameReport
where
    C: StreamingColorer + ?Sized,
    A: Adversary + ?Sized,
{
    let mut graph = Graph::empty(n);
    let mut improper = 0usize;
    let mut first_failure = None;
    let mut max_colors = 0usize;
    let mut rounds = 0usize;
    let mut deletions = 0usize;

    let mut session = EngineSession::new(colorer, EngineConfig { chunk_size: 1, ..config });
    let mut output: Coloring = session.observe().coloring;

    for round in 1..=max_rounds {
        let Some(t) = adversary.next_token(&output, &graph) else { break };
        let e = t.edge;
        if t.is_insert() {
            assert!(
                !graph.has_edge(e.u(), e.v()),
                "adversary {} re-inserted live edge {e} (simple graphs only)",
                adversary.name()
            );
            graph.add_edge(e);
        } else {
            assert!(
                graph.has_edge(e.u(), e.v()),
                "adversary {} deleted absent edge {e}",
                adversary.name()
            );
            graph.remove_edge(e);
            deletions += 1;
        }
        session
            .push_signed(t)
            .unwrap_or_else(|err| panic!("signed game referee rejected a token: {err}"));
        rounds = round;

        let observed = session.observe();
        max_colors = max_colors.max(observed.colors);
        output = observed.coloring;
        if !output.is_proper_total(&graph) {
            improper += 1;
            if first_failure.is_none() {
                first_failure = Some(round);
            }
        }
    }

    GameReport {
        rounds,
        deletions,
        improper_outputs: improper,
        first_failure_round: first_failure,
        max_colors,
        final_graph: graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attackers::ObliviousReplay;
    use sc_graph::generators;
    use streamcolor::RobustColorer;

    #[test]
    fn replay_game_matches_oblivious_run() {
        let g = generators::gnp_with_max_degree(40, 6, 0.4, 1);
        let edges = generators::shuffled_edges(&g, 1);
        let mut adversary = ObliviousReplay::new(edges.clone());
        let mut colorer = RobustColorer::new(40, 6, 77);
        let report = run_game(&mut colorer, &mut adversary, 40, 10_000);
        assert_eq!(report.rounds, edges.len());
        assert!(report.survived(), "robust colorer must survive a replay");
        assert_eq!(report.final_graph.m(), g.m());
    }

    #[test]
    fn scratch_and_incremental_games_are_identical() {
        // The adaptive transcript itself (not just one output) must be
        // unchanged by the query path: the adversary reacts to every
        // coloring, so any divergence would compound.
        let g = generators::gnp_with_max_degree(40, 6, 0.4, 5);
        let edges = generators::shuffled_edges(&g, 5);
        let run = |config: EngineConfig| {
            let mut adversary = ObliviousReplay::new(edges.iter().copied());
            let mut colorer = RobustColorer::new(40, 6, 21);
            run_game_with_config(&mut colorer, &mut adversary, 40, 10_000, config)
        };
        let inc = run(EngineConfig::per_edge());
        let scr = run(EngineConfig::per_edge().scratch_queries());
        assert_eq!(inc.rounds, scr.rounds);
        assert_eq!(inc.improper_outputs, scr.improper_outputs);
        assert_eq!(inc.max_colors, scr.max_colors);
        assert_eq!(inc.final_graph.m(), scr.final_graph.m());
    }

    #[test]
    fn signed_game_with_insert_only_adversary_matches_classic_game() {
        let g = generators::gnp_with_max_degree(40, 6, 0.4, 3);
        let edges = generators::shuffled_edges(&g, 3);
        let classic = {
            let mut adversary = ObliviousReplay::new(edges.clone());
            let mut colorer = RobustColorer::new(40, 6, 8);
            run_game(&mut colorer, &mut adversary, 40, 10_000)
        };
        let signed = {
            let mut adversary = ObliviousReplay::new(edges);
            let mut colorer = RobustColorer::new(40, 6, 8);
            run_signed_game(&mut colorer, &mut adversary, 40, 10_000)
        };
        assert_eq!(signed.rounds, classic.rounds);
        assert_eq!(signed.deletions, 0);
        assert_eq!(signed.improper_outputs, classic.improper_outputs);
        assert_eq!(signed.max_colors, classic.max_colors);
        assert_eq!(signed.final_graph.m(), classic.final_graph.m());
    }

    #[test]
    #[should_panic(expected = "insert-only colorer cannot delete edge")]
    fn signed_game_names_insert_only_colorers_on_deletion() {
        struct InsertDelete(usize);
        impl crate::game::Adversary for InsertDelete {
            fn next_edge(&mut self, _: &Coloring, _: &Graph) -> Option<Edge> {
                unreachable!("signed game uses next_token")
            }
            fn next_token(&mut self, _: &Coloring, _: &Graph) -> Option<sc_stream::SignedEdge> {
                self.0 += 1;
                match self.0 {
                    1 => Some(sc_stream::SignedEdge::insert(Edge::new(0, 1))),
                    2 => Some(sc_stream::SignedEdge::delete(Edge::new(0, 1))),
                    _ => None,
                }
            }
            fn name(&self) -> &'static str {
                "insert-delete"
            }
        }
        let mut colorer = RobustColorer::new(10, 3, 1);
        let _ = run_signed_game(&mut colorer, &mut InsertDelete(0), 10, 10);
    }

    #[test]
    fn game_stops_at_max_rounds() {
        let g = generators::complete(20);
        let mut adversary = ObliviousReplay::new(g.edges());
        let mut colorer = RobustColorer::new(20, 19, 3);
        let report = run_game(&mut colorer, &mut adversary, 20, 5);
        assert_eq!(report.rounds, 5);
        assert_eq!(report.final_graph.m(), 5);
    }
}
