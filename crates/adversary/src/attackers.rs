//! Concrete adversaries.
//!
//! * [`ObliviousReplay`] — a fixed stream (the static model embedded in
//!   the game framework).
//! * [`RandomAdversary`] — inserts uniformly random fresh edges within the
//!   degree budget; adaptive in form, oblivious in substance (a control).
//! * [`MonochromaticAttacker`] — the canonical feedback attack: reads the
//!   latest coloring and joins two same-colored vertices with remaining
//!   budget. This is precisely the strategy family behind the `Ω(∆²)`
//!   robust lower bound of CGS22 and it empirically destroys non-robust
//!   algorithms (experiment F5) while the paper's robust algorithms shrug
//!   it off.
//! * [`CliqueBuilder`] — grows disjoint `(∆+1)`-cliques, maximizing
//!   chromatic pressure while staying inside the budget.

use crate::game::Adversary;
use sc_graph::{Coloring, Edge, Graph, VertexId};
use sc_hash::SplitMix64;
use sc_stream::SignedEdge;

/// Replays a fixed edge sequence, ignoring the algorithm's outputs.
#[derive(Debug, Clone)]
pub struct ObliviousReplay {
    edges: std::collections::VecDeque<Edge>,
}

impl ObliviousReplay {
    /// Wraps a fixed stream.
    pub fn new(edges: impl IntoIterator<Item = Edge>) -> Self {
        Self { edges: edges.into_iter().collect() }
    }
}

impl Adversary for ObliviousReplay {
    fn next_edge(&mut self, _last: &Coloring, _g: &Graph) -> Option<Edge> {
        self.edges.pop_front()
    }

    fn name(&self) -> &'static str {
        "oblivious-replay"
    }
}

/// Inserts random fresh edges subject to the degree budget `∆`.
#[derive(Debug, Clone)]
pub struct RandomAdversary {
    n: usize,
    delta: usize,
    rng: SplitMix64,
}

impl RandomAdversary {
    /// Creates the adversary for `n` vertices with degree budget `delta`.
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        Self { n, delta, rng: SplitMix64::new(seed) }
    }
}

impl Adversary for RandomAdversary {
    fn next_edge(&mut self, _last: &Coloring, g: &Graph) -> Option<Edge> {
        for _ in 0..4 * self.n {
            let u = self.rng.below(self.n as u64) as VertexId;
            let v = self.rng.below(self.n as u64) as VertexId;
            if u != v && !g.has_edge(u, v) && g.degree(u) < self.delta && g.degree(v) < self.delta {
                return Some(Edge::new(u, v));
            }
        }
        None // budget saturated (or unlucky) — end the game
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// The monochromatic-edge feedback attacker.
///
/// Each round it scans the latest output for the pair of **same-colored**
/// vertices with the most remaining degree budget and joins them. Every
/// such insertion forces the algorithm to separate the pair in all future
/// outputs — a non-robust algorithm with a fixed small per-vertex palette
/// (e.g. palette sparsification's `O(log n)` sampled colors) runs out of
/// escape colors after `O(list²)` rounds per vertex.
#[derive(Debug, Clone)]
pub struct MonochromaticAttacker {
    n: usize,
    delta: usize,
    rng: SplitMix64,
}

impl MonochromaticAttacker {
    /// Creates the attacker for `n` vertices with degree budget `delta`.
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        Self { n, delta, rng: SplitMix64::new(seed) }
    }

    fn fallback_random(&mut self, g: &Graph) -> Option<Edge> {
        for _ in 0..4 * self.n {
            let u = self.rng.below(self.n as u64) as VertexId;
            let v = self.rng.below(self.n as u64) as VertexId;
            if u != v && !g.has_edge(u, v) && g.degree(u) < self.delta && g.degree(v) < self.delta {
                return Some(Edge::new(u, v));
            }
        }
        None
    }
}

impl Adversary for MonochromaticAttacker {
    fn next_edge(&mut self, last: &Coloring, g: &Graph) -> Option<Edge> {
        // Bucket vertices by color, keeping only those with budget.
        // BTreeMap: iteration is color-ordered, so the attack is
        // deterministic per seed (HashMap order is seeded per thread).
        let mut by_color: std::collections::BTreeMap<u64, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for x in 0..self.n as VertexId {
            if g.degree(x) >= self.delta {
                continue;
            }
            if let Some(c) = last.get(x) {
                by_color.entry(c).or_default().push(x);
            }
        }
        // Largest color class first: most pairs to choose from. The
        // stable sort keeps ties in color order (BTreeMap iteration).
        let mut classes: Vec<&Vec<VertexId>> = by_color.values().filter(|v| v.len() >= 2).collect();
        classes.sort_by_key(|v| std::cmp::Reverse(v.len()));
        for class in classes {
            // Prefer the pair with the most remaining budget, breaking
            // ties pseudo-randomly so the attack doesn't fixate.
            let start = self.rng.below(class.len() as u64) as usize;
            for i in 0..class.len() {
                let u = class[(start + i) % class.len()];
                for j in (i + 1)..class.len() {
                    let v = class[(start + j) % class.len()];
                    if !g.has_edge(u, v) {
                        return Some(Edge::new(u, v));
                    }
                }
            }
        }
        // No monochromatic pair available: keep the pressure up randomly.
        self.fallback_random(g)
    }

    fn name(&self) -> &'static str {
        "monochromatic"
    }
}

/// Builds disjoint cliques of size `∆+1`, one edge at a time.
#[derive(Debug, Clone)]
pub struct CliqueBuilder {
    n: usize,
    delta: usize,
    next_pair: (usize, usize),
    clique_base: usize,
}

impl CliqueBuilder {
    /// Creates the builder for `n` vertices with degree budget `delta`.
    pub fn new(n: usize, delta: usize) -> Self {
        Self { n, delta, next_pair: (0, 1), clique_base: 0 }
    }
}

impl Adversary for CliqueBuilder {
    fn next_edge(&mut self, _last: &Coloring, _g: &Graph) -> Option<Edge> {
        let size = self.delta + 1;
        loop {
            if self.clique_base + size > self.n {
                return None;
            }
            let (i, j) = self.next_pair;
            if i + 1 >= size {
                // This clique is complete; start the next one.
                self.clique_base += size;
                self.next_pair = (0, 1);
                continue;
            }
            if j >= size {
                self.next_pair = (i + 1, i + 2);
                continue;
            }
            self.next_pair = (i, j + 1);
            return Some(Edge::new(
                (self.clique_base + i) as VertexId,
                (self.clique_base + j) as VertexId,
            ));
        }
    }

    fn name(&self) -> &'static str {
        "clique-builder"
    }
}

/// Targets epoch boundaries: floods one vertex pair's neighborhoods with
/// edges in bursts sized to straddle the algorithms' buffer capacity.
///
/// Failure-injection adversary: Algorithm 2/3 rotate their buffers every
/// `capacity` insertions, and the correctness argument is most delicate
/// for edges that arrive just before/after a rotation (they must be caught
/// by a sketch rather than the buffer). This adversary concentrates
/// monochromatic pressure exactly there.
#[derive(Debug, Clone)]
pub struct BufferBoundaryAttacker {
    n: usize,
    delta: usize,
    burst: usize,
    inserted: usize,
    inner: MonochromaticAttacker,
    rng: SplitMix64,
}

impl BufferBoundaryAttacker {
    /// `burst` should equal the victim's buffer capacity (e.g. `n`).
    pub fn new(n: usize, delta: usize, burst: usize, seed: u64) -> Self {
        Self {
            n,
            delta,
            burst: burst.max(2),
            inserted: 0,
            inner: MonochromaticAttacker::new(n, delta, seed),
            rng: SplitMix64::new(seed ^ 0xB0B0),
        }
    }
}

impl Adversary for BufferBoundaryAttacker {
    fn next_edge(&mut self, last: &Coloring, g: &Graph) -> Option<Edge> {
        self.inserted += 1;
        let phase = self.inserted % self.burst;
        // Near the boundary (last/first 10% of a burst window): attack
        // monochromatic pairs; elsewhere: low-information random filler.
        let near_boundary = phase * 10 < self.burst || phase * 10 >= 9 * self.burst;
        if near_boundary {
            self.inner.next_edge(last, g)
        } else {
            // Random filler, budget-respecting.
            for _ in 0..4 * self.n {
                let u = self.rng.below(self.n as u64) as VertexId;
                let v = self.rng.below(self.n as u64) as VertexId;
                if u != v
                    && !g.has_edge(u, v)
                    && g.degree(u) < self.delta
                    && g.degree(v) < self.delta
                {
                    return Some(Edge::new(u, v));
                }
            }
            self.inner.next_edge(last, g)
        }
    }

    fn name(&self) -> &'static str {
        "buffer-boundary"
    }
}
/// Targets level boundaries: prefers same-colored pairs whose degrees sit
/// just below a multiple of `√∆`, so the inserted edge crosses a level at
/// insertion time.
///
/// Failure-injection adversary for Algorithm 2's level machinery: the
/// correctness proof (Lemma 4.6) is most delicate for an edge `{x, y}`
/// whose insertion itself lifts an endpoint into a new level — it must be
/// caught by the buffer via the "last `√∆` edges" pigeonhole, not by a
/// `g_ℓ`-sketch. This adversary manufactures exactly those insertions.
#[derive(Debug, Clone)]
pub struct LevelBoundaryAttacker {
    n: usize,
    delta: usize,
    /// `√∆`, the level width of Theorem 3 (`β = 0`).
    level_width: u64,
    inner: MonochromaticAttacker,
}

impl LevelBoundaryAttacker {
    /// Creates the attacker; `level_width` should match the victim's
    /// `∆^{(1+β)/2}` (Theorem 3: `√∆`).
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        let level_width = ((delta as f64).sqrt().round() as u64).max(1);
        Self { n, delta, level_width, inner: MonochromaticAttacker::new(n, delta, seed) }
    }

    fn gap_to_boundary(&self, deg: u64) -> u64 {
        let w = self.level_width;
        (w - (deg % w)) % w // 0 = exactly on a boundary, 1 = next edge crosses
    }
}

impl Adversary for LevelBoundaryAttacker {
    fn next_edge(&mut self, last: &Coloring, g: &Graph) -> Option<Edge> {
        // Among same-colored budget-respecting pairs, prefer those where an
        // endpoint is 1 edge from a level boundary. BTreeMap: color-ordered
        // iteration keeps equal-gap winners deterministic per seed.
        let mut by_color: std::collections::BTreeMap<u64, Vec<VertexId>> =
            std::collections::BTreeMap::new();
        for x in 0..self.n as VertexId {
            if g.degree(x) >= self.delta {
                continue;
            }
            if let Some(c) = last.get(x) {
                by_color.entry(c).or_default().push(x);
            }
        }
        // Best = (min gap to a level boundary, edge).
        let mut best: Option<(u64, Edge)> = None;
        for class in by_color.values() {
            for (i, &u) in class.iter().enumerate() {
                for &v in class.iter().skip(i + 1) {
                    if g.has_edge(u, v) {
                        continue;
                    }
                    let gap = self
                        .gap_to_boundary(g.degree(u) as u64 + 1)
                        .min(self.gap_to_boundary(g.degree(v) as u64 + 1));
                    if best.is_none_or(|(b, _)| gap < b) {
                        best = Some((gap, Edge::new(u, v)));
                    }
                }
            }
            if matches!(best, Some((0, _))) {
                break; // cannot do better than crossing a boundary now
            }
        }
        match best {
            Some((_, e)) => Some(e),
            None => self.inner.next_edge(last, g),
        }
    }

    fn name(&self) -> &'static str {
        "level-boundary"
    }
}

/// The deletion-aware feedback attacker (turnstile games only).
///
/// Each round it either presses the classic monochromatic attack — join
/// the same-colored pair with the most room — or **retracts** the edge it
/// inserted last round, oscillating the live graph. The deletion is the
/// attack: an algorithm that keeps stale state about departed edges
/// either wastes its space budget on ghosts or, worse, lets them
/// constrain future colorings; a correct turnstile algorithm must shrug
/// the oscillation off exactly like [`MonochromaticAttacker`] pressure.
#[derive(Debug, Clone)]
pub struct OscillationAttacker {
    inner: MonochromaticAttacker,
    rng: SplitMix64,
    last_inserted: Option<Edge>,
}

impl OscillationAttacker {
    /// Creates the attacker for `n` vertices with degree budget `delta`.
    pub fn new(n: usize, delta: usize, seed: u64) -> Self {
        Self {
            inner: MonochromaticAttacker::new(n, delta, seed),
            rng: SplitMix64::new(seed ^ 0x05C1),
            last_inserted: None,
        }
    }
}

impl Adversary for OscillationAttacker {
    // In an insert-only game it degrades to the plain monochromatic
    // attack (the oscillation needs the signed stream).
    fn next_edge(&mut self, last: &Coloring, g: &Graph) -> Option<Edge> {
        self.inner.next_edge(last, g)
    }

    fn next_token(&mut self, last: &Coloring, g: &Graph) -> Option<SignedEdge> {
        // Half the time, retract last round's insertion: its endpoints
        // were just forced apart, so deleting it tests whether the
        // algorithm can *release* that constraint.
        if let Some(e) = self.last_inserted.take() {
            if g.has_edge(e.u(), e.v()) && self.rng.below(2) == 0 {
                return Some(SignedEdge::delete(e));
            }
        }
        let e = self.inner.next_edge(last, g)?;
        self.last_inserted = Some(e);
        Some(SignedEdge::insert(e))
    }

    fn name(&self) -> &'static str {
        "oscillation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::run_game;
    use streamcolor::{
        Cgs22Colorer, PaletteSparsification, RandEfficientColorer, RobustColorer, TrivialColorer,
    };

    #[test]
    fn random_adversary_respects_budget() {
        let mut adv = RandomAdversary::new(30, 4, 1);
        let mut colorer = TrivialColorer::new(30);
        let report = run_game(&mut colorer, &mut adv, 30, 500);
        assert!(report.survived());
        assert!(report.final_graph.max_degree() <= 4);
        assert!(report.rounds > 0);
    }

    #[test]
    fn clique_builder_builds_cliques() {
        let mut adv = CliqueBuilder::new(12, 3);
        let mut colorer = TrivialColorer::new(12);
        let report = run_game(&mut colorer, &mut adv, 12, 1000);
        // Three disjoint K4s: 3·6 = 18 edges.
        assert_eq!(report.final_graph.m(), 18);
        assert_eq!(report.final_graph.max_degree(), 3);
        assert!(report.final_graph.has_edge(0, 3));
        assert!(!report.final_graph.has_edge(3, 4));
    }

    #[test]
    fn monochromatic_attacker_respects_budget_and_attacks() {
        let mut adv = MonochromaticAttacker::new(40, 6, 9);
        let mut colorer = RobustColorer::new(40, 6, 5);
        let report = run_game(&mut colorer, &mut adv, 40, 100);
        assert!(report.final_graph.max_degree() <= 6);
        assert!(report.rounds >= 50, "attack should find many pairs");
    }

    #[test]
    fn robust_alg2_survives_the_attack() {
        let mut adv = MonochromaticAttacker::new(60, 8, 2);
        let mut colorer = RobustColorer::new(60, 8, 11);
        let report = run_game(&mut colorer, &mut adv, 60, 200);
        assert!(report.survived(), "Algorithm 2 failed at round {:?}", report.first_failure_round);
    }

    #[test]
    fn robust_alg3_survives_the_attack() {
        let mut adv = MonochromaticAttacker::new(60, 8, 3);
        let mut colorer = RandEfficientColorer::new(60, 8, 12);
        let report = run_game(&mut colorer, &mut adv, 60, 200);
        assert!(report.survived(), "Algorithm 3 failed at round {:?}", report.first_failure_round);
    }

    #[test]
    fn cgs22_survives_the_attack() {
        let mut adv = MonochromaticAttacker::new(60, 8, 4);
        let mut colorer = Cgs22Colorer::new(60, 8, 13);
        let report = run_game(&mut colorer, &mut adv, 60, 200);
        assert!(report.survived());
    }

    /// The separation (experiment F5 in miniature): palette
    /// sparsification with small lists breaks under the feedback attack.
    #[test]
    fn palette_sparsification_breaks_under_attack() {
        let n = 60;
        let delta = 16;
        let mut broke = false;
        for seed in 0..5u64 {
            let mut adv = MonochromaticAttacker::new(n, delta, seed);
            let mut colorer = PaletteSparsification::new(n, delta, 4, seed + 50);
            let report = run_game(&mut colorer, &mut adv, n, n * delta);
            if !report.survived() {
                broke = true;
                break;
            }
        }
        assert!(broke, "the attack should break small-list palette sparsification");
    }

    #[test]
    fn oscillation_attacker_actually_deletes_and_respects_budget() {
        use crate::game::run_signed_game;
        let (n, delta) = (40, 6);
        let mut adv = OscillationAttacker::new(n, delta, 9);
        // Budget covers every edge the attack can keep live.
        let mut colorer = streamcolor::DynamicColorer::new(n, n * delta / 2, 5);
        let report = run_signed_game(&mut colorer, &mut adv, n, 150);
        assert!(report.deletions > 10, "oscillation produced {} deletions", report.deletions);
        assert!(report.final_graph.max_degree() <= delta);
        assert!(
            report.survived(),
            "the turnstile colorer failed at round {:?} under oscillation",
            report.first_failure_round
        );
    }

    #[test]
    fn oscillation_degrades_to_monochromatic_in_insert_only_games() {
        let (n, delta) = (40, 6);
        let mut adv = OscillationAttacker::new(n, delta, 9);
        let mut colorer = RobustColorer::new(n, delta, 5);
        let report = run_game(&mut colorer, &mut adv, n, 100);
        assert_eq!(report.deletions, 0);
        assert!(report.rounds >= 50);
        assert!(report.survived());
    }

    #[test]
    fn buffer_boundary_attacker_respects_budget() {
        let mut adv = BufferBoundaryAttacker::new(50, 5, 20, 3);
        let mut colorer = TrivialColorer::new(50);
        let report = run_game(&mut colorer, &mut adv, 50, 300);
        assert!(report.final_graph.max_degree() <= 5);
        assert!(report.rounds > 50);
    }

    #[test]
    fn level_boundary_attacker_respects_budget() {
        let mut adv = LevelBoundaryAttacker::new(40, 9, 7);
        let mut colorer = TrivialColorer::new(40);
        let report = run_game(&mut colorer, &mut adv, 40, 300);
        assert!(report.final_graph.max_degree() <= 9);
        assert!(report.rounds > 40, "attack stalled after {} rounds", report.rounds);
    }

    #[test]
    fn robust_alg2_survives_level_boundary_attack() {
        // ∆ = 16 ⇒ level width 4: plenty of boundary crossings.
        let n = 60;
        let delta = 16;
        let mut adv = LevelBoundaryAttacker::new(n, delta, 2);
        let mut colorer = RobustColorer::new(n, delta, 31);
        let report = run_game(&mut colorer, &mut adv, n, n * delta / 2);
        assert!(
            report.survived(),
            "Algorithm 2 failed at round {:?} under level-boundary pressure",
            report.first_failure_round
        );
    }

    #[test]
    fn robust_algorithms_survive_boundary_attack() {
        // Burst size tuned to Algorithm 2/3's buffer capacity (= n).
        let n = 80;
        let delta = 8;
        let mut adv = BufferBoundaryAttacker::new(n, delta, n, 5);
        let mut c2 = RobustColorer::new(n, delta, 21);
        assert!(run_game(&mut c2, &mut adv, n, 3 * n).survived());

        let mut adv = BufferBoundaryAttacker::new(n, delta, n, 5);
        let mut c3 = RandEfficientColorer::new(n, delta, 22);
        assert!(run_game(&mut c3, &mut adv, n, 3 * n).survived());
    }
}
