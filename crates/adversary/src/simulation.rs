//! Multi-trial adversarial simulations with summary statistics.
//!
//! Robustness claims are probabilistic ("error ≤ δ over the algorithm's
//! randomness"), so single games prove little. [`run_trials`] repeats a
//! game across independently seeded algorithm/adversary pairs and
//! aggregates: break rate, failure-round distribution, palette extremes —
//! the numbers experiments F3/F5 report.

use crate::game::{run_game, Adversary, GameReport};
use sc_stream::StreamingColorer;

/// Aggregated outcome of repeated adversarial games.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSummary {
    /// Trials run.
    pub trials: usize,
    /// Trials with at least one improper output.
    pub broken: usize,
    /// First-failure rounds of the broken trials, sorted ascending.
    pub failure_rounds: Vec<usize>,
    /// Largest palette observed across all trials.
    pub max_colors: usize,
    /// Smallest final-round count (games can end early if the adversary
    /// saturates its budget).
    pub min_rounds: usize,
    /// Largest final-round count.
    pub max_rounds: usize,
}

impl TrialSummary {
    /// Fraction of trials broken, in `[0, 1]`.
    pub fn break_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.broken as f64 / self.trials as f64
        }
    }

    /// Median first-failure round among broken trials.
    pub fn median_failure_round(&self) -> Option<usize> {
        (!self.failure_rounds.is_empty())
            .then(|| self.failure_rounds[self.failure_rounds.len() / 2])
    }

    /// The summary of zero trials — the identity of [`TrialSummary::merge`].
    pub fn empty() -> Self {
        Self {
            trials: 0,
            broken: 0,
            failure_rounds: Vec::new(),
            max_colors: 0,
            min_rounds: 0,
            max_rounds: 0,
        }
    }

    /// Merges the summary of a disjoint batch of trials into this one.
    ///
    /// **Law:** summarizing any partition of a report set batch-by-batch
    /// and merging equals [`summarize`] over the whole set — this is what
    /// makes sharded attack-trial sweeps (`sc-engine`'s shard layer)
    /// bit-identical to in-process ones. Zero-trial summaries are merge
    /// identities.
    pub fn merge(&mut self, other: &TrialSummary) {
        if other.trials == 0 {
            return;
        }
        if self.trials == 0 {
            *self = other.clone();
            return;
        }
        self.trials += other.trials;
        self.broken += other.broken;
        self.failure_rounds.extend_from_slice(&other.failure_rounds);
        self.failure_rounds.sort_unstable();
        self.max_colors = self.max_colors.max(other.max_colors);
        self.min_rounds = self.min_rounds.min(other.min_rounds);
        self.max_rounds = self.max_rounds.max(other.max_rounds);
    }
}

/// Aggregates finished game reports into a [`TrialSummary`] (shared by
/// the sequential [`run_trials`] here and the parallel trial sweeps in
/// `sc-engine`).
pub fn summarize(reports: impl IntoIterator<Item = GameReport>) -> TrialSummary {
    let mut trials = 0usize;
    let mut broken = 0usize;
    let mut failure_rounds = Vec::new();
    let mut max_colors = 0usize;
    let mut min_rounds = usize::MAX;
    let mut max_rounds_seen = 0usize;
    for r in reports {
        trials += 1;
        max_colors = max_colors.max(r.max_colors);
        min_rounds = min_rounds.min(r.rounds);
        max_rounds_seen = max_rounds_seen.max(r.rounds);
        if !r.survived() {
            broken += 1;
            failure_rounds.push(r.first_failure_round.expect("broken game has a failure round"));
        }
    }
    failure_rounds.sort_unstable();
    TrialSummary {
        trials,
        broken,
        failure_rounds,
        max_colors,
        min_rounds: if trials == 0 { 0 } else { min_rounds },
        max_rounds: max_rounds_seen,
    }
}

/// Runs `trials` independent games. `make_colorer(t)` and
/// `make_adversary(t)` build fresh, independently seeded parties for
/// trial `t`.
pub fn run_trials<C, A>(
    n: usize,
    max_rounds: usize,
    trials: usize,
    mut make_colorer: impl FnMut(u64) -> C,
    mut make_adversary: impl FnMut(u64) -> A,
) -> TrialSummary
where
    C: StreamingColorer,
    A: Adversary,
{
    summarize((0..trials).map(|t| {
        let mut colorer = make_colorer(t as u64);
        let mut adversary = make_adversary(t as u64);
        run_game(&mut colorer, &mut adversary, n, max_rounds)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attackers::MonochromaticAttacker;
    use streamcolor::{PaletteSparsification, RobustColorer};

    #[test]
    fn robust_trials_never_break() {
        let n = 60;
        let delta = 8;
        let s = run_trials(
            n,
            2 * n,
            4,
            |t| RobustColorer::new(n, delta, 1000 + t),
            |t| MonochromaticAttacker::new(n, delta, t),
        );
        assert_eq!(s.trials, 4);
        assert_eq!(s.broken, 0);
        assert_eq!(s.break_rate(), 0.0);
        assert_eq!(s.median_failure_round(), None);
        assert!(s.max_colors > 0);
        assert!(s.min_rounds <= s.max_rounds);
    }

    #[test]
    fn fragile_trials_break_and_record_rounds() {
        let n = 60;
        let delta = 16;
        let s = run_trials(
            n,
            n * delta,
            5,
            |t| PaletteSparsification::new(n, delta, 3, 70 + t),
            |t| MonochromaticAttacker::new(n, delta, t),
        );
        assert!(s.broken > 0, "tiny lists must break under the attack");
        assert!(s.break_rate() > 0.0);
        let med = s.median_failure_round().unwrap();
        assert!(med >= 1);
        assert!(s.failure_rounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merging_partition_summaries_matches_global_summarize() {
        let n = 60;
        let delta = 16;
        let reports: Vec<GameReport> = (0..9u64)
            .map(|t| {
                let mut colorer = PaletteSparsification::new(n, delta, 3, 70 + t);
                let mut adversary = MonochromaticAttacker::new(n, delta, t);
                run_game(&mut colorer, &mut adversary, n, n * delta)
            })
            .collect();
        let whole = summarize(reports.clone());
        assert!(whole.broken > 0, "need a mixed outcome to make the merge law interesting");
        for split in [1usize, 2, 4, 9] {
            let mut merged = TrialSummary::empty();
            for chunk in reports.chunks(reports.len().div_ceil(split)) {
                merged.merge(&summarize(chunk.to_vec()));
            }
            assert_eq!(merged, whole, "partition into {split} batches diverged");
        }
        // Zero-trial summaries are identities on either side.
        let mut left = TrialSummary::empty();
        left.merge(&whole);
        assert_eq!(left, whole);
        let mut right = whole.clone();
        right.merge(&TrialSummary::empty());
        assert_eq!(right, whole);
    }

    #[test]
    fn zero_trials_is_well_defined() {
        let s = run_trials(
            10,
            10,
            0,
            |t| RobustColorer::new(10, 2, t),
            |t| MonochromaticAttacker::new(10, 2, t),
        );
        assert_eq!(s.break_rate(), 0.0);
        assert_eq!(s.min_rounds, 0);
    }
}
