//! k-independent polynomial hash families over `F_p`.
//!
//! A uniformly random polynomial of degree `< k` over `F_p`, evaluated as a
//! function `F_p → F_p`, is exactly **k-independent**: any `k` distinct
//! inputs map to any `k` outputs with probability `1/p^k` (the Vandermonde
//! system has a unique solution).
//!
//! Algorithm 3 of the paper (the randomness-efficient robust colorer) draws
//! its functions `h_{i,j} : V → [ℓ²]` from a **4-independent** family of
//! size `poly(n)` — a degree-3 polynomial needs only `4 log p` random bits,
//! which is what lets the algorithm keep *all* its randomness within
//! semi-streaming space. The range reduction `mod s` costs a small,
//! quantifiable non-uniformity (≤ `s/p` per point), made negligible by
//! choosing `p ≫ s` (we use `p ≥ max(n, s)²`-ish via [`PolynomialFamily::for_domain`]).

use crate::modp::{addmod, is_prime_u64, mulmod, next_prime, Reducer};
use crate::prf::SplitMix64;

/// A degree-`(k−1)` polynomial hash `z ↦ (Σ c_i z^i mod p) mod s`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PolynomialHash {
    /// Coefficients `c_0 … c_{k−1}`, low degree first, each in `[0, p)`.
    pub coefficients: Vec<u64>,
    /// Prime modulus.
    pub p: u64,
    /// Range size (`s ≤ p`).
    pub s: u64,
}

impl PolynomialHash {
    /// Evaluates by Horner's rule, then reduces into `[0, s)`.
    #[inline]
    pub fn eval(&self, z: u64) -> u64 {
        let z = z % self.p;
        let mut acc = 0u64;
        for &c in self.coefficients.iter().rev() {
            acc = addmod(mulmod(acc, z, self.p), c, self.p);
        }
        acc % self.s
    }

    /// The number of random field elements this hash consumed — the
    /// quantity Lemma 4.10 charges to the space budget (`O(k log p)` bits).
    #[inline]
    pub fn randomness_bits(&self) -> u64 {
        self.coefficients.len() as u64 * (64 - self.p.leading_zeros() as u64)
    }

    /// Whether the single-`u64` dot-product evaluation is exact for this
    /// hash: all `k` terms `c_t · z^t` (each `< p²`) must sum without
    /// overflowing `u64`. True for every modulus
    /// [`PolynomialFamily::for_domain`] picks at realistic parameters
    /// (`p` is a few million; the bound allows `p` up to `≈ 2^31`).
    #[inline]
    pub(crate) fn dot_fits_u64(&self) -> bool {
        let p1 = (self.p - 1) as u128;
        (self.coefficients.len() as u128) * p1 * p1 <= u64::MAX as u128
    }

    /// Unreduced dot product `Σ c_t · (x mod p)^t` with Barrett-reduced
    /// monomial powers. Caller guarantees [`PolynomialHash::dot_fits_u64`]
    /// and `rp = Reducer::new(self.p)`; the result still needs
    /// `% p % s`. Bit-compatible with Horner: both compute the same
    /// residue mod `p`.
    #[inline]
    pub(crate) fn dot_u64(&self, x: u64, rp: &Reducer) -> u64 {
        let z = rp.rem(x);
        let mut sum = 0u64;
        let mut w = 1u64;
        for (t, &c) in self.coefficients.iter().enumerate() {
            if t == 1 {
                w = z;
            } else if t > 1 {
                // w, z < p and p² fits u64 under the dot_fits_u64 gate.
                w = rp.rem(w * z);
            }
            sum += c * w;
        }
        sum
    }

    /// Evaluates at every `xs[i]` into `out[i]` — the batched tier.
    ///
    /// **Bit-identical to [`PolynomialHash::eval`]** on each input (the
    /// `batch ≡ per-edge` law of the robust colorers rests on this):
    /// the inner loop replaces Horner's per-step `u128` remainders with a
    /// dot product over Barrett-reduced monomial powers, which computes
    /// the same residue mod `p`, then the same `mod s`. Falls back to
    /// scalar [`PolynomialHash::eval`] for moduli too large for the
    /// `u64` accumulator (`p ≳ 2^31`).
    pub fn eval_batch(&self, xs: &[u32], out: &mut [u64]) {
        assert_eq!(xs.len(), out.len(), "eval_batch buffers must match");
        if self.s == 1 {
            out.fill(0); // everything reduces to 0 mod 1
            return;
        }
        if self.dot_fits_u64() {
            let rp = Reducer::new(self.p);
            let rs = Reducer::new(self.s);
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = rs.rem(rp.rem(self.dot_u64(x as u64, &rp)));
            }
        } else {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = self.eval(x as u64);
            }
        }
    }
}

/// The family of all degree-`(k−1)` polynomials over `F_p` with range `[s]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolynomialFamily {
    p: u64,
    s: u64,
    k: usize,
}

impl PolynomialFamily {
    /// A `k`-independent family hashing `[domain]` into `[s]`.
    ///
    /// The modulus is the smallest prime `≥ max(domain, s·64)`, keeping the
    /// per-point range-reduction bias below `1/64`.
    pub fn for_domain(domain: u64, s: u64, k: usize) -> Self {
        assert!(k >= 1, "independence parameter must be ≥ 1");
        assert!(s >= 1, "range must be nonempty");
        let p = next_prime(domain.max(s.saturating_mul(64)).max(2));
        Self { p, s, k }
    }

    /// Family over an explicit prime modulus.
    pub fn with_modulus(p: u64, s: u64, k: usize) -> Self {
        assert!(is_prime_u64(p), "modulus must be prime");
        assert!(s >= 1 && s <= p);
        assert!(k >= 1);
        Self { p, s, k }
    }

    /// Independence parameter `k`.
    #[inline]
    pub fn independence(&self) -> usize {
        self.k
    }

    /// The prime modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The range size.
    #[inline]
    pub fn range(&self) -> u64 {
        self.s
    }

    /// Samples a uniformly random member using the supplied generator.
    ///
    /// Deterministic in the generator state, so a seeded run of Algorithm 3
    /// is exactly reproducible.
    pub fn sample(&self, rng: &mut SplitMix64) -> PolynomialHash {
        let coefficients = (0..self.k).map(|_| rng.below(self.p)).collect();
        PolynomialHash { coefficients, p: self.p, s: self.s }
    }

    /// Number of random bits one sample consumes (`k · ⌈log₂ p⌉`).
    #[inline]
    pub fn bits_per_sample(&self) -> u64 {
        self.k as u64 * (64 - self.p.leading_zeros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(coeffs: &[u64], p: u64, s: u64) -> PolynomialHash {
        PolynomialHash { coefficients: coeffs.to_vec(), p, s }
    }

    #[test]
    fn horner_matches_naive() {
        let h = poly(&[3, 1, 4, 1], 97, 97);
        for z in 0..97u64 {
            let naive = (3 + z + 4 * z * z + z * z * z) % 97;
            assert_eq!(h.eval(z), naive, "z = {z}");
        }
    }

    #[test]
    fn constant_polynomial() {
        let h = poly(&[42], 101, 101);
        for z in [0u64, 1, 50, 100, 1000] {
            assert_eq!(h.eval(z), 42);
        }
    }

    #[test]
    fn range_reduction() {
        let h = poly(&[5, 7, 11, 13], 1009, 16);
        for z in 0..500 {
            assert!(h.eval(z) < 16);
        }
    }

    /// Exhaustive 2-independence of degree-1 polynomials (sanity check of
    /// the Vandermonde argument on a small field).
    #[test]
    fn degree1_family_is_pairwise_independent() {
        let p = 11u64;
        let mut counts = std::collections::HashMap::new();
        for c0 in 0..p {
            for c1 in 0..p {
                let h = poly(&[c0, c1], p, p);
                *counts.entry((h.eval(3), h.eval(8))).or_insert(0u64) += 1;
            }
        }
        assert_eq!(counts.len() as u64, p * p);
        assert!(counts.values().all(|&c| c == 1));
    }

    /// Exhaustive 3-independence of degree-2 polynomials on a tiny field:
    /// each output triple for 3 distinct points is hit exactly once.
    #[test]
    fn degree2_family_is_three_independent() {
        let p = 5u64;
        let mut counts = std::collections::HashMap::new();
        for c0 in 0..p {
            for c1 in 0..p {
                for c2 in 0..p {
                    let h = poly(&[c0, c1, c2], p, p);
                    *counts.entry((h.eval(0), h.eval(1), h.eval(4))).or_insert(0u64) += 1;
                }
            }
        }
        assert_eq!(counts.len() as u64, p * p * p);
        assert!(counts.values().all(|&c| c == 1));
    }

    /// Statistical 4-wise collision behaviour of sampled degree-3 members —
    /// the property Lemma 4.8's variance computation uses.
    #[test]
    fn sampled_degree3_pairwise_collision_rate() {
        let fam = PolynomialFamily::for_domain(1 << 16, 64, 4);
        let mut rng = SplitMix64::new(2024);
        let trials = 4000;
        let mut collisions = 0u64;
        for _ in 0..trials {
            let h = fam.sample(&mut rng);
            if h.eval(12345) == h.eval(54321) {
                collisions += 1;
            }
        }
        // Expected rate 1/64 ≈ 62.5 of 4000; allow generous slack.
        let expected = trials / 64;
        assert!(
            collisions > expected / 3 && collisions < expected * 3,
            "collision count {collisions} far from expectation {expected}"
        );
    }

    #[test]
    fn sample_determinism() {
        let fam = PolynomialFamily::for_domain(1000, 32, 4);
        let h1 = fam.sample(&mut SplitMix64::new(7));
        let h2 = fam.sample(&mut SplitMix64::new(7));
        assert_eq!(h1, h2);
        let h3 = fam.sample(&mut SplitMix64::new(8));
        assert_ne!(h1, h3);
    }

    #[test]
    fn randomness_accounting() {
        let fam = PolynomialFamily::with_modulus(1009, 64, 4);
        let h = fam.sample(&mut SplitMix64::new(1));
        assert_eq!(h.coefficients.len(), 4);
        assert_eq!(fam.bits_per_sample(), 4 * 10); // 1009 needs 10 bits
        assert_eq!(h.randomness_bits(), 40);
    }

    #[test]
    fn eval_batch_matches_scalar_small_field() {
        let h = poly(&[3, 1, 4, 1], 97, 16);
        let xs: Vec<u32> = (0..500).collect();
        let mut out = vec![0u64; xs.len()];
        h.eval_batch(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o, h.eval(x as u64), "x = {x}");
        }
    }

    #[test]
    fn eval_batch_matches_scalar_huge_modulus_fallback() {
        // p² overflows u64 ⇒ the batch path must take the scalar fallback
        // and still agree bit-for-bit.
        let p = (1u64 << 61) - 1;
        let h = poly(&[12345, 67890, 13579, 24680], p, 1 << 16);
        assert!(!h.dot_fits_u64());
        let xs = [0u32, 1, 2, 65_535, 65_536, u32::MAX - 1, u32::MAX];
        let mut out = vec![0u64; xs.len()];
        h.eval_batch(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o, h.eval(x as u64));
        }
    }

    #[test]
    fn eval_batch_range_one() {
        let h = poly(&[5, 7], 101, 1);
        let xs = [0u32, 50, 100, 4321];
        let mut out = vec![9u64; xs.len()];
        h.eval_batch(&xs, &mut out);
        assert!(out.iter().all(|&o| o == 0));
    }

    #[test]
    fn for_domain_picks_large_modulus() {
        let fam = PolynomialFamily::for_domain(100, 50, 4);
        assert!(fam.modulus() >= 50 * 64);
        assert!(is_prime_u64(fam.modulus()));
    }
}
