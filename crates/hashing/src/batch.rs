//! Table-driven batched evaluation: the top tier of the crate's
//! evaluation-tier stack.
//!
//! The crate now exposes three ways to evaluate the same hash function,
//! all **bit-identical** by construction:
//!
//! 1. **Scalar** — [`PolynomialHash::eval`] (Horner over `u128`
//!    remainders) and [`OracleFn::eval`](crate::OracleFn::eval). The
//!    reference semantics; every other tier is tested against it.
//! 2. **Batched** — [`PolynomialHash::eval_batch`] /
//!    [`OracleFn::eval_batch`](crate::OracleFn::eval_batch): branch-free
//!    inner loops over caller-pooled buffers, with the per-step division
//!    hoisted into a [`Reducer`].
//! 3. **Table-driven** — [`VertexSlotTable`]: when one *small, fixed*
//!    vertex domain is hashed by *many* functions of one family (Algorithm
//!    3 keeps `∆ · P` degree-3 polynomials, all sharing `(p, s)`), the
//!    entire value matrix `tbl[v][slot] = h_slot(v)` fits in a few
//!    megabytes of `u16`s. Build it once at colorer construction; every
//!    later "which slots consider this edge monochromatic?" question
//!    becomes a SIMD-friendly equality scan of two rows instead of
//!    `slots` modular polynomial evaluations.
//!
//! The table is a cache of values the colorer can recompute from its
//! stored coefficients at any time — like a query cache or a block memo,
//! it is harness acceleration, not algorithm state, and is never charged
//! to a space meter.

use crate::modp::Reducer;
use crate::polynomial::PolynomialHash;

/// Upper bound on [`VertexSlotTable`] memory (64 MiB). Configurations
/// whose value matrix would exceed it fall back to the batched tier.
pub const MAX_TABLE_BYTES: usize = 64 << 20;

/// Dense `vertex × slot` matrix of hash values for one polynomial family.
///
/// `tbl[v][slot] = hashes[slot].eval(v)`, stored row-major by vertex in
/// `u16` (buildable only when every hash's range satisfies `s ≤ 2^16`).
/// Rows of the two endpoints of an edge can then be compared lane-wise:
/// [`VertexSlotTable::equal_slots`] scans a suffix of the slot axis in
/// cache-friendly blocks, letting the autovectorizer turn the "is this
/// edge `h_slot`-monochromatic?" test into packed 16-bit compares.
///
/// # Exactness
///
/// Construction evaluates through [`Reducer`]-based dot products when the
/// modulus permits and scalar Horner otherwise; either way each entry
/// equals `hashes[slot].eval(v)` bit-for-bit, so consulting the table can
/// never diverge from scalar evaluation. Property-tested in
/// `tests/hash_properties.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexSlotTable {
    /// Row length: number of hash functions (slots).
    slots: usize,
    /// `n · slots` values, vertex-major.
    vals: Vec<u16>,
}

impl VertexSlotTable {
    /// Builds the value matrix for `n` vertices under `hashes`, or `None`
    /// when the configuration is out of the table tier's envelope: no
    /// hashes, mixed `(p, s)` parameters, range `s > 2^16`, or a matrix
    /// larger than [`MAX_TABLE_BYTES`].
    pub fn build(hashes: &[PolynomialHash], n: usize) -> Option<Self> {
        let first = hashes.first()?;
        let (p, s) = (first.p, first.s);
        if s > 1 << 16 || hashes.iter().any(|h| h.p != p || h.s != s) {
            return None;
        }
        let slots = hashes.len();
        if n.checked_mul(slots)?.checked_mul(2)? > MAX_TABLE_BYTES {
            return None;
        }
        let mut vals = vec![0u16; n * slots];
        let fast = s >= 2 && hashes.iter().all(PolynomialHash::dot_fits_u64);
        if fast {
            let rp = Reducer::new(p);
            let rs = Reducer::new(s);
            for (v, row) in vals.chunks_exact_mut(slots).enumerate() {
                for (h, out) in hashes.iter().zip(row.iter_mut()) {
                    *out = rs.rem(rp.rem(h.dot_u64(v as u64, &rp))) as u16;
                }
            }
        } else {
            // Degenerate ranges (`s = 1`) or huge moduli: scalar fill.
            for (v, row) in vals.chunks_exact_mut(slots).enumerate() {
                for (h, out) in hashes.iter().zip(row.iter_mut()) {
                    *out = h.eval(v as u64) as u16;
                }
            }
        }
        Some(Self { slots, vals })
    }

    /// Number of slots (hash functions) per row.
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Total table footprint in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.vals.len() * 2
    }

    /// The row of all slot values for vertex `v`.
    #[inline]
    pub fn row(&self, v: u32) -> &[u16] {
        let start = v as usize * self.slots;
        &self.vals[start..start + self.slots]
    }

    /// `hashes[slot].eval(v)`, from the table.
    #[inline]
    pub fn value(&self, v: u32, slot: usize) -> u64 {
        self.vals[v as usize * self.slots + slot] as u64
    }

    /// Hints the suffix `[from, slots)` of `u`'s and `v`'s rows toward
    /// cache — meant for the *next* edge while the current one is
    /// scanned. Each edge starts two fresh row streams out of a
    /// multi-megabyte matrix, and the hardware prefetcher only ramps up
    /// after a few demand misses, so a software lookahead overlaps that
    /// latency with useful work. Purely a hint: never changes results,
    /// and a no-op off x86-64.
    #[inline]
    pub fn prefetch_rows(&self, u: u32, v: u32, from: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let len = ((self.slots - from) * 2).min(512);
            for w in [u, v] {
                let start = w as usize * self.slots + from;
                // SAFETY: prefetch reads nothing and faults on nothing;
                // the hinted range lies within `vals`.
                unsafe {
                    let p = self.vals.as_ptr().add(start).cast::<i8>();
                    let mut off = 0;
                    while off < len {
                        _mm_prefetch::<_MM_HINT_T0>(p.add(off));
                        off += 64;
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = (u, v, from);
    }

    /// Calls `f(slot)` for every `slot ∈ [from, slots)` with
    /// `tbl[u][slot] == tbl[v][slot]`, in ascending slot order.
    ///
    /// On x86-64 this dispatches (runtime feature detection, cached by
    /// `std`) to a packed 16-bit compare kernel — AVX-512BW or AVX2 —
    /// that tests a 64-lane window per branch and only walks match
    /// positions out of the compare mask when the window hits. Elsewhere,
    /// a scalar block scan folds `min(a ⊕ b)` per block and rescans on a
    /// zero fold. All paths report identical slots in identical order;
    /// matches are rare for the hash ranges the colorers use, so almost
    /// every window is dismissed by one fold/mask test.
    pub fn equal_slots(&self, u: u32, v: u32, from: usize, mut f: impl FnMut(usize)) {
        let a = &self.row(u)[from..];
        let b = &self.row(v)[from..];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512bw") {
                // SAFETY: feature checked at runtime.
                return unsafe { x86::equal_slots_avx512(a, b, from, &mut f) };
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature checked at runtime.
                return unsafe { x86::equal_slots_avx2(a, b, from, &mut f) };
            }
        }
        equal_slots_scalar(a, b, from, &mut f);
    }
}

/// Portable fallback scan: block-folds `min(a ⊕ b)` (a branch-free
/// reduction the autovectorizer can lower to packed ops) and rescans a
/// block positionally only when the fold hits zero.
fn equal_slots_scalar(a: &[u16], b: &[u16], from: usize, f: &mut dyn FnMut(usize)) {
    const BLOCK: usize = 64;
    let mut i = 0;
    while i < a.len() {
        let end = (i + BLOCK).min(a.len());
        let mut fold = u16::MAX;
        for j in i..end {
            fold = fold.min(a[j] ^ b[j]);
        }
        if fold == 0 {
            for j in i..end {
                if a[j] == b[j] {
                    f(from + j);
                }
            }
        }
        i = end;
    }
}

/// SIMD kernels behind [`VertexSlotTable::equal_slots`]'s runtime
/// dispatch. Each processes 64 lanes per branch and recovers match
/// positions from compare masks with `trailing_zeros`, so reported slots
/// stay in ascending order — bit-identical to [`equal_slots_scalar`]
/// (property-tested in `tests/hash_properties.rs`).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires the `avx512bw` target feature at runtime.
    #[target_feature(enable = "avx512bw")]
    pub unsafe fn equal_slots_avx512(a: &[u16], b: &[u16], from: usize, f: &mut dyn FnMut(usize)) {
        let n = a.len();
        let ap = a.as_ptr().cast::<i16>();
        let bp = b.as_ptr().cast::<i16>();
        let mut i = 0;
        while i + 64 <= n {
            // SAFETY: i + 64 ≤ n bounds both unaligned 32-lane loads.
            let (m0, m1) = unsafe {
                let m0 = _mm512_cmpeq_epi16_mask(
                    _mm512_loadu_epi16(ap.add(i)),
                    _mm512_loadu_epi16(bp.add(i)),
                );
                let m1 = _mm512_cmpeq_epi16_mask(
                    _mm512_loadu_epi16(ap.add(i + 32)),
                    _mm512_loadu_epi16(bp.add(i + 32)),
                );
                (m0, m1)
            };
            if (m0 | m1) != 0 {
                let mut word = m0 as u64 | (u64::from(m1) << 32);
                while word != 0 {
                    f(from + i + word.trailing_zeros() as usize);
                    word &= word - 1;
                }
            }
            i += 64;
        }
        while i < n {
            if a[i] == b[i] {
                f(from + i);
            }
            i += 1;
        }
    }

    /// # Safety
    /// Requires the `avx2` target feature at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn equal_slots_avx2(a: &[u16], b: &[u16], from: usize, f: &mut dyn FnMut(usize)) {
        let n = a.len();
        let ap = a.as_ptr().cast::<__m256i>();
        let bp = b.as_ptr().cast::<__m256i>();
        let mut i = 0;
        while i + 64 <= n {
            // SAFETY: i + 64 ≤ n bounds all four unaligned 16-lane loads
            // (byte offsets are from element index i, cast to vector
            // granularity via add on byte pointers below).
            let cmps = unsafe {
                let at = ap.byte_add(i * 2);
                let bt = bp.byte_add(i * 2);
                [
                    _mm256_cmpeq_epi16(_mm256_loadu_si256(at), _mm256_loadu_si256(bt)),
                    _mm256_cmpeq_epi16(
                        _mm256_loadu_si256(at.add(1)),
                        _mm256_loadu_si256(bt.add(1)),
                    ),
                    _mm256_cmpeq_epi16(
                        _mm256_loadu_si256(at.add(2)),
                        _mm256_loadu_si256(bt.add(2)),
                    ),
                    _mm256_cmpeq_epi16(
                        _mm256_loadu_si256(at.add(3)),
                        _mm256_loadu_si256(bt.add(3)),
                    ),
                ]
            };
            let any = _mm256_or_si256(
                _mm256_or_si256(cmps[0], cmps[1]),
                _mm256_or_si256(cmps[2], cmps[3]),
            );
            if _mm256_movemask_epi8(any) != 0 {
                for (k, &c) in cmps.iter().enumerate() {
                    // Two mask bits per 16-bit lane.
                    let mut m = _mm256_movemask_epi8(c) as u32;
                    while m != 0 {
                        let bit = m.trailing_zeros();
                        f(from + i + k * 16 + bit as usize / 2);
                        m &= !(0b11 << bit);
                    }
                }
            }
            i += 64;
        }
        while i < n {
            if a[i] == b[i] {
                f(from + i);
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::PolynomialFamily;
    use crate::prf::SplitMix64;

    fn sample_hashes(n: u64, s: u64, count: usize, seed: u64) -> Vec<PolynomialHash> {
        let family = PolynomialFamily::for_domain(n, s, 4);
        let mut rng = SplitMix64::new(seed);
        (0..count).map(|_| family.sample(&mut rng)).collect()
    }

    #[test]
    fn table_matches_scalar_eval() {
        let n = 200usize;
        let hashes = sample_hashes(n as u64, 64, 37, 9);
        let t = VertexSlotTable::build(&hashes, n).expect("config fits the table tier");
        assert_eq!(t.slots(), 37);
        assert_eq!(t.bytes(), n * 37 * 2);
        for v in 0..n as u32 {
            for (slot, h) in hashes.iter().enumerate() {
                assert_eq!(t.value(v, slot), h.eval(v as u64), "v = {v}, slot = {slot}");
                assert_eq!(t.row(v)[slot] as u64, h.eval(v as u64));
            }
        }
    }

    #[test]
    fn equal_slots_finds_exactly_the_collisions() {
        let n = 150usize;
        let hashes = sample_hashes(n as u64, 16, 90, 4);
        let t = VertexSlotTable::build(&hashes, n).unwrap();
        for (u, v, from) in [(0u32, 1u32, 0usize), (3, 149, 10), (7, 7, 0), (20, 21, 89)] {
            let mut got = Vec::new();
            t.equal_slots(u, v, from, |s| got.push(s));
            let want: Vec<usize> = (from..hashes.len())
                .filter(|&s| hashes[s].eval(u as u64) == hashes[s].eval(v as u64))
                .collect();
            assert_eq!(got, want, "u = {u}, v = {v}, from = {from}");
        }
    }

    #[test]
    fn equal_slots_from_equal_to_len_is_empty() {
        let hashes = sample_hashes(10, 4, 5, 1);
        let t = VertexSlotTable::build(&hashes, 10).unwrap();
        let mut calls = 0;
        t.equal_slots(0, 1, 5, |_| calls += 1);
        assert_eq!(calls, 0);
    }

    #[test]
    fn range_one_collapses_every_slot() {
        // ∆ = 1 in Algorithm 3 gives ℓ = 1, s = 1: every edge is
        // monochromatic for every slot.
        let hashes = sample_hashes(10, 1, 6, 2);
        let t = VertexSlotTable::build(&hashes, 10).expect("s = 1 still tabulates");
        let mut got = Vec::new();
        t.equal_slots(2, 9, 0, |s| got.push(s));
        assert_eq!(got, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn dispatched_scan_matches_scalar_fallback() {
        // Wide rows (many full 64-lane SIMD windows + a ragged tail) and
        // a tiny range (dense matches) stress the mask-extraction paths
        // the small proptest configurations never reach. The dispatched
        // scan must agree with the portable fallback on slots AND order.
        for (range, slots) in [(4u64, 333usize), (2, 200), (1024, 451)] {
            let n = 40usize;
            let hashes = sample_hashes(n as u64, range, slots, range ^ slots as u64);
            let t = VertexSlotTable::build(&hashes, n).unwrap();
            for (u, v) in [(0u32, 1u32), (5, 39), (7, 7)] {
                for from in [0usize, 1, 63, 64, 65, slots - 1, slots] {
                    let mut simd = Vec::new();
                    t.equal_slots(u, v, from, |s| simd.push(s));
                    let mut scalar = Vec::new();
                    equal_slots_scalar(&t.row(u)[from..], &t.row(v)[from..], from, &mut |s| {
                        scalar.push(s)
                    });
                    assert_eq!(simd, scalar, "u={u} v={v} from={from} slots={slots}");
                }
            }
        }
    }

    #[test]
    fn rejects_out_of_envelope_configs() {
        assert!(VertexSlotTable::build(&[], 10).is_none(), "no hashes");
        let big = sample_hashes(100, (1 << 16) + 1, 3, 5);
        assert!(VertexSlotTable::build(&big, 100).is_none(), "range over u16");
        let mut mixed = sample_hashes(100, 16, 2, 6);
        mixed.push(sample_hashes(100, 32, 1, 6).pop().unwrap());
        assert!(VertexSlotTable::build(&mixed, 100).is_none(), "mixed (p, s)");
        let hashes = sample_hashes(100, 16, 4, 7);
        let too_many_vertices = MAX_TABLE_BYTES / (2 * 4) + 1;
        assert!(VertexSlotTable::build(&hashes, too_many_vertices).is_none(), "memory cap");
    }
}
