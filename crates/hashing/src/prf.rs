//! A small, fast, deterministic pseudorandom function.
//!
//! Used in two roles:
//!
//! 1. As the keyed "random oracle" behind [`crate::OracleFn`] (Algorithm 2's
//!    `h_i`, `g_i` functions — see DESIGN.md substitution S2).
//! 2. As a deterministic seed-stretcher for reproducible experiments.
//!
//! The mixer is SplitMix64 (Steele–Lea–Flood), whose output function is a
//! bijection on `u64` with excellent avalanche behaviour; keyed evaluation
//! chains the mixer over `(seed, tweak…)` words.

/// The SplitMix64 finalizer: a bijective mixer on `u64`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a uniform `u64` to a uniform-enough value in `[0, n)` using the
/// fixed-point multiply trick (`(x·n) >> 64`).
///
/// The bias is at most `n / 2^64`, negligible for every range this crate
/// uses (`n ≤ 2^40`).
#[inline]
pub fn uniform_below(x: u64, n: u64) -> u64 {
    debug_assert!(n > 0, "range must be nonempty");
    ((x as u128 * n as u128) >> 64) as u64
}

/// A seedable SplitMix64 stream generator.
///
/// Deterministic: the same seed always yields the same stream. This is the
/// only randomness source used *inside* algorithm implementations, so every
/// run is exactly reproducible from its seed — a property the test suite
/// and the adversarial game harness both rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudorandom `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a pseudorandom value in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        uniform_below(self.next_u64(), n)
    }

    /// Returns a pseudorandom `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator, labelled by `tweak`.
    ///
    /// Children with distinct tweaks behave as independent streams; this is
    /// how per-epoch / per-level hash functions get their keys.
    #[inline]
    pub fn fork(&self, tweak: u64) -> SplitMix64 {
        SplitMix64::new(splitmix64(self.state ^ splitmix64(tweak ^ 0xA076_1D64_78BD_642F)))
    }
}

/// Precomputes the key-dependent half of [`prf2`]. `prf2(key, x)` equals
/// `prf2_finish(prf2_derive(key), x)` for every `x`; callers that
/// evaluate one key at many points cache the derived key and pay only
/// [`prf2_finish`] per point (the trick behind
/// [`crate::OracleFn::eval_batch`]).
#[inline]
pub fn prf2_derive(key: u64) -> u64 {
    splitmix64(key ^ 0x8C86_2E8B_FD2A_1F6D)
}

/// Completes a [`prf2`] evaluation from a [`prf2_derive`]d key.
#[inline]
pub fn prf2_finish(dk: u64, x: u64) -> u64 {
    splitmix64(dk.wrapping_add(splitmix64(x)))
}

/// Stateless keyed PRF evaluation: `prf2(key, x)` mixes two words.
#[inline]
pub fn prf2(key: u64, x: u64) -> u64 {
    prf2_finish(prf2_derive(key), x)
}

/// Stateless keyed PRF evaluation over three words.
#[inline]
pub fn prf3(key: u64, a: u64, b: u64) -> u64 {
    prf2(prf2(key, a), b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let second = g.next_u64();
        assert_ne!(first, second);
        // Determinism pin: if the mixer changes, these change.
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(g2.next_u64(), first);
        assert_eq!(g2.next_u64(), second);
    }

    #[test]
    fn uniform_below_in_range_and_covers() {
        let n = 10u64;
        let mut seen = [false; 10];
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.below(n);
            assert!(v < n);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 buckets should be hit in 1000 draws");
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let n = 16u64;
        let trials = 160_000u64;
        let mut counts = [0u64; 16];
        let mut g = SplitMix64::new(99);
        for _ in 0..trials {
            counts[g.below(n) as usize] += 1;
        }
        let expected = (trials / n) as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn forks_are_independent_streams() {
        let parent = SplitMix64::new(77);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let collisions = (0..256).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(collisions, 0);
        // Same tweak ⇒ same stream.
        let mut d1 = parent.fork(3);
        let mut d2 = parent.fork(3);
        for _ in 0..32 {
            assert_eq!(d1.next_u64(), d2.next_u64());
        }
    }

    #[test]
    fn prf_is_stateless_and_keyed() {
        assert_eq!(prf2(1, 2), prf2(1, 2));
        assert_ne!(prf2(1, 2), prf2(2, 2));
        assert_ne!(prf2(1, 2), prf2(1, 3));
        assert_eq!(prf3(9, 1, 2), prf3(9, 1, 2));
        assert_ne!(prf3(9, 1, 2), prf3(9, 2, 1), "argument order must matter");
    }

    #[test]
    fn prf_avalanche() {
        // Flipping one input bit should flip ~half the output bits.
        let base = prf2(0xDEAD_BEEF, 12345);
        let flipped = prf2(0xDEAD_BEEF, 12345 ^ 1);
        let hamming = (base ^ flipped).count_ones();
        assert!((16..=48).contains(&hamming), "weak avalanche: {hamming} bits");
    }
}
