//! Arithmetic in `F_p` for the Mersenne prime `p = 2⁶¹ − 1`.
//!
//! Algorithm 1's derandomization evaluates an affine hash for **every
//! edge × every candidate function** in the tournament passes — the
//! workspace's hottest loop. Generic `(a·z + b) mod p` costs a hardware
//! division per evaluation; for a Mersenne modulus the reduction is two
//! shifts and an add, which is why fingerprinting codebases standardize
//! on `2⁶¹ − 1`. This module provides the fast field plus a drop-in
//! pairwise-independent affine family over it; `bench_hash` measures the
//! speedup against the generic [`crate::affine`] path.
//!
//! (The paper only needs `p = Θ(n log n)`; any prime `≥ n` keeps the
//! Carter–Wegman guarantee, and using a fixed larger prime only shrinks
//! collision probabilities.)

/// The Mersenne prime `2⁶¹ − 1`.
pub const P61: u64 = (1 << 61) - 1;

/// Reduces a 128-bit product to `[0, 2⁶¹ − 1)` using the Mersenne
/// identity `2⁶¹ ≡ 1 (mod p)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // Split into low 61 bits and the rest; fold twice (the first fold can
    // leave a value up to ~2⁶⁷), then one conditional subtract.
    let lo = (x as u64) & P61;
    let hi = x >> 61;
    let folded = lo as u128 + hi;
    let lo2 = (folded as u64) & P61;
    let hi2 = (folded >> 61) as u64;
    let mut r = lo2 + hi2;
    if r >= P61 {
        r -= P61;
    }
    r
}

/// `a · b mod (2⁶¹ − 1)` without hardware division.
#[inline]
pub fn mul61(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

/// `a + b mod (2⁶¹ − 1)`.
#[inline]
pub fn add61(a: u64, b: u64) -> u64 {
    let s = a + b; // both < 2⁶¹, no overflow in u64
    if s >= P61 {
        s - P61
    } else {
        s
    }
}

/// An affine hash `z ↦ (a·z + b) mod (2⁶¹ − 1)` — pairwise independent
/// over the fixed Mersenne field.
///
/// # Examples
/// ```
/// use sc_hash::{mulmod, MersenneAffine, P61};
///
/// let h = MersenneAffine::new(12345, 678);
/// assert_eq!(h.eval(9), (mulmod(12345, 9, P61) + 678) % P61);
/// assert!(h.eval_range(9, 100) < 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MersenneAffine {
    /// Slope (reduced mod `P61`).
    pub a: u64,
    /// Intercept (reduced mod `P61`).
    pub b: u64,
}

impl MersenneAffine {
    /// Creates the hash, reducing the parameters.
    pub fn new(a: u64, b: u64) -> Self {
        Self { a: a % P61, b: b % P61 }
    }

    /// Evaluates the hash.
    #[inline]
    pub fn eval(&self, z: u64) -> u64 {
        add61(mul61(self.a, z % P61), self.b)
    }

    /// Evaluates and maps onto `[range]` by the fixed-point multiply
    /// `(h · range) >> 61` — the bias is `≤ range/2⁶¹`, negligible for the
    /// `range = poly(n)` uses in this workspace.
    #[inline]
    pub fn eval_range(&self, z: u64, range: u64) -> u64 {
        ((self.eval(z) as u128 * range as u128) >> 61) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modp::{is_prime_u64, mulmod};
    use crate::prf::SplitMix64;

    #[test]
    fn p61_is_prime() {
        assert!(is_prime_u64(P61));
    }

    #[test]
    fn mul61_matches_generic_mulmod() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..2000 {
            let a = rng.below(P61);
            let b = rng.below(P61);
            assert_eq!(mul61(a, b), mulmod(a, b, P61), "a = {a}, b = {b}");
        }
    }

    #[test]
    fn boundary_values() {
        assert_eq!(mul61(P61 - 1, P61 - 1), mulmod(P61 - 1, P61 - 1, P61));
        assert_eq!(mul61(0, 12345), 0);
        assert_eq!(mul61(1, P61 - 1), P61 - 1);
        assert_eq!(add61(P61 - 1, 1), 0);
        assert_eq!(add61(P61 - 1, P61 - 1), P61 - 2);
        assert_eq!(reduce128((P61 as u128) * 2), 0);
        assert_eq!(reduce128(u128::MAX >> 6), reduce128(reduce128(u128::MAX >> 6) as u128));
    }

    #[test]
    fn reduce_is_canonical() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..2000 {
            let x = (rng.next_u64() as u128) << 32 | rng.next_u64() as u128;
            let r = reduce128(x);
            assert!(r < P61);
            assert_eq!(r as u128 % P61 as u128, x % P61 as u128);
        }
    }

    #[test]
    fn affine_eval_matches_definition() {
        let h = MersenneAffine::new(12345, 67890);
        let mut rng = SplitMix64::new(3);
        for _ in 0..500 {
            let z = rng.below(P61);
            let expect = (mulmod(12345, z, P61) + 67890) % P61;
            assert_eq!(h.eval(z), expect);
        }
    }

    #[test]
    fn pairwise_collision_rate_is_near_uniform() {
        // Empirical 2-universality: for fixed z1 ≠ z2 and range s, the
        // collision rate over random (a, b) should be ≈ 1/s.
        let mut rng = SplitMix64::new(4);
        let s = 64u64;
        let trials = 40_000;
        let mut collisions = 0;
        for _ in 0..trials {
            let h = MersenneAffine::new(rng.next_u64(), rng.next_u64());
            if h.eval_range(17, s) == h.eval_range(90_001, s) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / s as f64).abs() < 0.6 / s as f64,
            "collision rate {rate:.5} vs expected {:.5}",
            1.0 / s as f64
        );
    }

    #[test]
    fn eval_range_stays_in_range() {
        let h = MersenneAffine::new(999, 7);
        for z in 0..1000u64 {
            assert!(h.eval_range(z, 10) < 10);
        }
    }
}
