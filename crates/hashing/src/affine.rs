//! The Carter–Wegman affine family `H = {z ↦ az + b : a, b ∈ F_p}`.
//!
//! For a prime `p` this family, viewed as functions `F_p → F_p`, is
//! **pairwise independent**: for distinct `z₁ ≠ z₂` and any targets
//! `(t₁, t₂)`, exactly one `(a, b)` pair satisfies both equations, so
//! `Pr[h(z₁) = t₁ ∧ h(z₂) = t₂] = 1/p²`.
//!
//! Algorithm 1 of the paper (line 16) draws from this family with
//! `p ∈ [8 n log n, 16 n log n]` and runs a two-pass tournament over
//! `√|H|` *parts* to deterministically find a below-average function.
//! The natural part decomposition — and the one this module provides —
//! fixes the multiplier `a` and lets the offset `b` range: `|H| = p²`
//! splits into `p` parts of `p` functions each.
//!
//! For practical input sizes the full family is too large to enumerate
//! (`p² ≈ 10¹⁰` already at `n = 10³`), so the family also exposes
//! deterministic *sub-grids* `A × B` used by the default derandomization
//! strategy (DESIGN.md substitution S1).

use crate::modp::{is_prime_u64, mulmod};

/// One member `z ↦ (az + b) mod p` of the affine family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffineHash {
    /// Multiplier in `[0, p)`.
    pub a: u64,
    /// Offset in `[0, p)`.
    pub b: u64,
    /// Prime modulus.
    pub p: u64,
}

impl AffineHash {
    /// Evaluates the hash at `z` (reduced mod `p` first).
    #[inline]
    pub fn eval(&self, z: u64) -> u64 {
        (mulmod(self.a, z % self.p, self.p) + self.b) % self.p
    }
}

/// The full affine family over a fixed prime `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineFamily {
    p: u64,
}

impl AffineFamily {
    /// Creates the family over prime modulus `p`.
    ///
    /// # Panics
    /// Panics if `p` is not prime (the pairwise-independence argument
    /// needs a field).
    pub fn new(p: u64) -> Self {
        assert!(is_prime_u64(p), "AffineFamily modulus must be prime, got {p}");
        Self { p }
    }

    /// The modulus (= range size) of the family.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Total number of functions in the family (`p²`).
    #[inline]
    pub fn len(&self) -> u128 {
        self.p as u128 * self.p as u128
    }

    /// Always false: the family has `p² ≥ 4` members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the member with multiplier `a` and offset `b`.
    #[inline]
    pub fn member(&self, a: u64, b: u64) -> AffineHash {
        debug_assert!(a < self.p && b < self.p);
        AffineHash { a, b, p: self.p }
    }

    /// Iterates over the part with fixed multiplier `a` (all `p` offsets).
    pub fn part(&self, a: u64) -> impl Iterator<Item = AffineHash> + '_ {
        let p = self.p;
        (0..p).map(move |b| AffineHash { a, b, p })
    }

    /// Iterates over the entire family in `(a, b)` lexicographic order.
    ///
    /// Only feasible for tiny `p`; used by the `FullFamily` derandomization
    /// mode and by tests validating the tournament against ground truth.
    pub fn iter_all(&self) -> impl Iterator<Item = AffineHash> + '_ {
        let p = self.p;
        (0..p).flat_map(move |a| (0..p).map(move |b| AffineHash { a, b, p }))
    }

    /// A deterministic sub-grid `A × B` with `|A| = |B| = l`.
    ///
    /// The grids are evenly strided across `F_p` (offset by 1 so that the
    /// degenerate constant functions `a = 0` are avoided in the first
    /// slot), giving a spread, reproducible candidate set for the default
    /// derandomization strategy.
    pub fn grid(&self, l: usize) -> GridSubfamily {
        let l = l.max(1).min(self.p as usize);
        let stride = (self.p / l as u64).max(1);
        let multipliers: Vec<u64> = (0..l as u64).map(|i| (1 + i * stride) % self.p).collect();
        let offsets: Vec<u64> = (0..l as u64).map(|i| (i * stride) % self.p).collect();
        GridSubfamily { p: self.p, multipliers, offsets }
    }
}

/// A deterministic `A × B` sub-grid of an [`AffineFamily`].
///
/// Parts are indexed by multiplier (`part(i)` fixes `a = A[i]`), mirroring
/// the paper's `√|H|`-way split, so the derandomization tournament code is
/// identical for the full family and the grid.
#[derive(Debug, Clone)]
pub struct GridSubfamily {
    p: u64,
    multipliers: Vec<u64>,
    offsets: Vec<u64>,
}

impl GridSubfamily {
    /// Number of parts (= number of multipliers).
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.multipliers.len()
    }

    /// Number of functions per part (= number of offsets).
    #[inline]
    pub fn part_size(&self) -> usize {
        self.offsets.len()
    }

    /// Iterates the functions of part `i`.
    pub fn part(&self, i: usize) -> impl Iterator<Item = AffineHash> + '_ {
        let a = self.multipliers[i];
        let p = self.p;
        self.offsets.iter().map(move |&b| AffineHash { a, b, p })
    }

    /// The modulus of the underlying family.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    #[should_panic(expected = "must be prime")]
    fn rejects_composite_modulus() {
        AffineFamily::new(10);
    }

    #[test]
    fn eval_matches_formula() {
        let h = AffineHash { a: 3, b: 4, p: 7 };
        assert_eq!(h.eval(0), 4);
        assert_eq!(h.eval(1), 0); // 3+4 = 7 ≡ 0
        assert_eq!(h.eval(2), 3); // 6+4 = 10 ≡ 3
        assert_eq!(h.eval(9), 3); // 9 ≡ 2 mod 7
    }

    #[test]
    fn family_size() {
        let fam = AffineFamily::new(11);
        assert_eq!(fam.len(), 121);
        assert_eq!(fam.iter_all().count(), 121);
        assert_eq!(fam.part(3).count(), 11);
    }

    /// The defining property: for distinct z1 ≠ z2 every output pair is hit
    /// by exactly one (a, b).
    #[test]
    fn exact_pairwise_independence() {
        let p = 13u64;
        let fam = AffineFamily::new(p);
        let (z1, z2) = (2u64, 9u64);
        let mut counts: HashMap<(u64, u64), u64> = HashMap::new();
        for h in fam.iter_all() {
            *counts.entry((h.eval(z1), h.eval(z2))).or_default() += 1;
        }
        assert_eq!(counts.len() as u64, p * p);
        for (&pair, &c) in &counts {
            assert_eq!(c, 1, "pair {pair:?} hit {c} times, expected exactly 1");
        }
    }

    /// Marginal uniformity: each output value of z is hit exactly p times.
    #[test]
    fn exact_marginal_uniformity() {
        let p = 11u64;
        let fam = AffineFamily::new(p);
        let mut counts = vec![0u64; p as usize];
        for h in fam.iter_all() {
            counts[h.eval(5) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == p));
    }

    #[test]
    fn grid_shape_and_determinism() {
        let fam = AffineFamily::new(101);
        let g1 = fam.grid(8);
        let g2 = fam.grid(8);
        assert_eq!(g1.num_parts(), 8);
        assert_eq!(g1.part_size(), 8);
        let p1: Vec<_> = g1.part(3).collect();
        let p2: Vec<_> = g2.part(3).collect();
        assert_eq!(p1, p2, "grids must be deterministic");
        // Multipliers are all distinct and nonzero in the first slots.
        let all: Vec<_> = (0..8).flat_map(|i| g1.part(i)).collect();
        assert_eq!(all.len(), 64);
        assert!(all.iter().all(|h| h.p == 101));
    }

    #[test]
    fn grid_clamps_to_family_size() {
        let fam = AffineFamily::new(5);
        let g = fam.grid(100);
        assert_eq!(g.num_parts(), 5);
        assert_eq!(g.part_size(), 5);
    }

    #[test]
    fn grid_functions_have_spread_outputs() {
        // Two distinct vertices should collide on only a small fraction of
        // grid functions — the empirical analogue of 2-independence that the
        // derandomization quality rests on.
        let fam = AffineFamily::new(4099);
        let g = fam.grid(32);
        let mut collisions = 0usize;
        let mut total = 0usize;
        for i in 0..g.num_parts() {
            for h in g.part(i) {
                total += 1;
                if h.eval(17) == h.eval(923) {
                    collisions += 1;
                }
            }
        }
        assert_eq!(total, 1024);
        assert!(collisions <= 2, "too many collisions in grid: {collisions}");
    }
}
