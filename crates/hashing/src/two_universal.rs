//! The 2-universal family `{z ↦ ((az + b) mod p) mod s : a ∈ F_p∖{0}, b ∈ F_p}`.
//!
//! 2-universality (`Pr[h(z₁) = h(z₂)] ≤ 1/s` for `z₁ ≠ z₂`) is exactly the
//! property Lemma 3.10 of the paper needs to build its family of partitions
//! of the color space `C`: partition cells are the preimages
//! `R_i = {x ∈ C : h(x) = i}`, and the lemma's expectation bound
//! `E Σ_x max_S (|L_x ∩ S| − 1) ≤ (1/√s) Σ_x (|L_x| − 1)` follows from
//! pairwise collision probabilities alone.

use crate::modp::{is_prime_u64, mulmod, next_prime};

/// One member `z ↦ ((az + b) mod p) mod s`, `a ≠ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoUniversalHash {
    /// Multiplier in `[1, p)`.
    pub a: u64,
    /// Offset in `[0, p)`.
    pub b: u64,
    /// Prime modulus, `p ≥` domain size.
    pub p: u64,
    /// Range size `s`.
    pub s: u64,
}

impl TwoUniversalHash {
    /// Evaluates the hash at `z`.
    #[inline]
    pub fn eval(&self, z: u64) -> u64 {
        ((mulmod(self.a, z % self.p, self.p) + self.b) % self.p) % self.s
    }
}

/// The family of all such functions over fixed `(p, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoUniversalFamily {
    p: u64,
    s: u64,
}

impl TwoUniversalFamily {
    /// Builds a family hashing a domain of size `domain` into `[s]`.
    ///
    /// Picks the smallest prime `p ≥ max(domain, s)`. The family has
    /// `p(p−1)` members — the `O(|C|²)` size quoted in Lemma 3.10.
    pub fn for_domain(domain: u64, s: u64) -> Self {
        assert!(s >= 1, "range must be nonempty");
        let p = next_prime(domain.max(s).max(2));
        Self { p, s }
    }

    /// Builds the family from an explicit prime modulus.
    pub fn with_modulus(p: u64, s: u64) -> Self {
        assert!(is_prime_u64(p), "modulus must be prime");
        assert!(s >= 1 && s <= p, "need 1 ≤ s ≤ p");
        Self { p, s }
    }

    /// The prime modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The range size `s`.
    #[inline]
    pub fn range(&self) -> u64 {
        self.s
    }

    /// Number of members: `p · (p − 1)`.
    #[inline]
    pub fn len(&self) -> u128 {
        self.p as u128 * (self.p as u128 - 1)
    }

    /// Never empty for a valid family.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th member under lexicographic `(a, b)` enumeration with
    /// `a ∈ [1, p)`, `b ∈ [0, p)`.
    ///
    /// Indexing (rather than iteration) is what the 4-pass partition
    /// selection of Theorem 2 needs: it tournament-splits the index space
    /// `[0, len)` into parts and narrows to a single index.
    pub fn member(&self, index: u128) -> TwoUniversalHash {
        debug_assert!(index < self.len());
        let a = 1 + (index / self.p as u128) as u64;
        let b = (index % self.p as u128) as u64;
        TwoUniversalHash { a, b, p: self.p, s: self.s }
    }

    /// A deterministic subsample of `l` members, evenly strided through the
    /// index space (used when enumerating all `p(p−1)` members is
    /// impractical; see DESIGN.md substitution S1 which applies here too).
    pub fn strided_sample(&self, l: usize) -> Vec<TwoUniversalHash> {
        let len = self.len();
        let l = (l.max(1) as u128).min(len);
        let stride = (len / l).max(1);
        (0..l).map(|i| self.member((i * stride) % len)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_range() {
        let fam = TwoUniversalFamily::for_domain(100, 8);
        for idx in [0u128, 5, 99, 1000] {
            let h = fam.member(idx % fam.len());
            for z in 0..100 {
                assert!(h.eval(z) < 8);
            }
        }
    }

    #[test]
    fn modulus_is_prime_and_large_enough() {
        let fam = TwoUniversalFamily::for_domain(100, 16);
        assert!(fam.modulus() >= 100);
        assert!(is_prime_u64(fam.modulus()));
    }

    /// Exhaustive verification of the 2-universal property on a small field:
    /// over the whole family, collisions for any fixed pair occur with
    /// probability ≤ 1/s.
    #[test]
    fn exhaustive_two_universality() {
        let p = 31u64;
        let s = 4u64;
        let fam = TwoUniversalFamily::with_modulus(p, s);
        let pairs = [(0u64, 1u64), (3, 17), (5, 30), (11, 12)];
        let total = fam.len();
        for (z1, z2) in pairs {
            let mut collisions = 0u128;
            for idx in 0..total {
                let h = fam.member(idx);
                if h.eval(z1) == h.eval(z2) {
                    collisions += 1;
                }
            }
            // 2-universality: Pr[collision] ≤ 1/s. Allow exact boundary.
            assert!(
                collisions * s as u128 <= total,
                "pair ({z1},{z2}): {collisions}/{total} collisions > 1/{s}"
            );
        }
    }

    #[test]
    fn member_enumeration_has_no_zero_multiplier() {
        let fam = TwoUniversalFamily::with_modulus(13, 3);
        for idx in 0..fam.len() {
            let h = fam.member(idx);
            assert!(h.a >= 1 && h.a < 13);
            assert!(h.b < 13);
        }
    }

    #[test]
    fn member_enumeration_is_a_bijection() {
        let fam = TwoUniversalFamily::with_modulus(11, 4);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..fam.len() {
            let h = fam.member(idx);
            assert!(seen.insert((h.a, h.b)), "duplicate member ({}, {})", h.a, h.b);
        }
        assert_eq!(seen.len() as u128, fam.len());
    }

    #[test]
    fn strided_sample_is_deterministic_and_distinct() {
        let fam = TwoUniversalFamily::for_domain(1000, 16);
        let s1 = fam.strided_sample(32);
        let s2 = fam.strided_sample(32);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 32);
        let distinct: std::collections::HashSet<_> = s1.iter().map(|h| (h.a, h.b)).collect();
        assert_eq!(distinct.len(), 32);
    }

    #[test]
    fn strided_sample_clamps() {
        let fam = TwoUniversalFamily::with_modulus(5, 2);
        let all = fam.strided_sample(10_000);
        assert_eq!(all.len() as u128, fam.len());
    }

    /// Empirical partition-balance check used by Lemma 3.10: cells of a
    /// random member should each hold roughly |C|/s colors.
    #[test]
    fn partitions_are_roughly_balanced() {
        let c = 1024u64;
        let s = 8u64;
        let fam = TwoUniversalFamily::for_domain(c, s);
        let h = fam.member(fam.len() / 3);
        let mut cells = vec![0u64; s as usize];
        for z in 0..c {
            cells[h.eval(z) as usize] += 1;
        }
        let expected = c / s;
        for (i, &size) in cells.iter().enumerate() {
            assert!(
                size > expected / 4 && size < expected * 4,
                "cell {i} wildly unbalanced: {size} vs {expected}"
            );
        }
    }
}
