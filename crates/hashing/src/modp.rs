//! Modular arithmetic over `u64` moduli and deterministic primality.
//!
//! All routines widen through `u128`, so they are exact for any 64-bit
//! modulus. The Miller–Rabin implementation uses the standard deterministic
//! witness set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`, which is
//! known to be correct for every `n < 2^64`.

/// Computes `(a * b) mod m` without overflow.
#[inline]
pub fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0, "modulus must be positive");
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Computes `(a + b) mod m` without overflow.
#[inline]
pub fn addmod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0, "modulus must be positive");
    ((a as u128 + b as u128) % m as u128) as u64
}

/// Computes `base^exp mod m` by binary exponentiation.
pub fn powmod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 0, "modulus must be positive");
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// A Barrett-style reducer: precomputed magic for repeated `x mod m`.
///
/// Rust compiles a `% m` with a *runtime* modulus to a hardware divide
/// (u128 long division here, since the callers widen), which costs an
/// order of magnitude more than a multiply. Batched evaluation tiers
/// ([`crate::PolynomialHash::eval_batch`], [`crate::VertexSlotTable`])
/// reduce millions of times against the same modulus, so they hoist the
/// division into this one-time reciprocal and reduce with two multiplies.
///
/// Exact — [`Reducer::rem`] equals `x % m` for **every** `u64` input, so
/// routing a hash through it cannot perturb a single output bit. Proof
/// sketch: with `µ = ⌊2^64/m⌋`, the estimate `q = ⌊x·µ/2^64⌋` satisfies
/// `⌊x/m⌋ − 2 ≤ q ≤ ⌊x/m⌋`, so `r = x − q·m < 3m` and at most two
/// conditional subtractions finish the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reducer {
    m: u64,
    /// `⌊2^64 / m⌋`.
    mu: u64,
}

impl Reducer {
    /// Prepares reduction modulo `m` (requires `m ≥ 2`).
    #[inline]
    pub fn new(m: u64) -> Self {
        assert!(m >= 2, "Reducer needs a modulus ≥ 2");
        Self { m, mu: ((1u128 << 64) / m as u128) as u64 }
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.m
    }

    /// Computes `x % m` exactly, without a divide.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        let q = ((x as u128 * self.mu as u128) >> 64) as u64;
        // q ≤ ⌊x/m⌋, so q·m ≤ x and the subtraction cannot wrap.
        let mut r = x - q.wrapping_mul(self.m);
        if r >= self.m {
            r -= self.m;
        }
        if r >= self.m {
            r -= self.m;
        }
        r
    }
}

/// Deterministic witness set sufficient for all `n < 2^64`.
const MILLER_RABIN_WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Deterministic Miller–Rabin primality test, exact for every `u64`.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &small in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == small {
            return true;
        }
        if n.is_multiple_of(small) {
            return false;
        }
    }
    // Write n − 1 = d · 2^r with d odd.
    let mut d = n - 1;
    let r = d.trailing_zeros();
    d >>= r;
    'witness: for &a in &MILLER_RABIN_WITNESSES {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..r {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns the smallest prime `>= n`.
///
/// By Bertrand's postulate this terminates after scanning fewer than `n`
/// candidates; in practice prime gaps below `2^64` are tiny (< 1500).
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    if candidate > 2 && candidate.is_multiple_of(2) {
        candidate += 1;
    }
    loop {
        if is_prime_u64(candidate) {
            return candidate;
        }
        candidate = if candidate == 2 { 3 } else { candidate + 2 };
    }
}

/// Finds a prime in the inclusive range `[lo, hi]`, if one exists.
///
/// Algorithm 1 (paper line 16) needs a prime in `[8 n log n, 16 n log n]`;
/// Bertrand's postulate guarantees one whenever `hi >= 2·lo − 2`.
pub fn prime_in_range(lo: u64, hi: u64) -> Option<u64> {
    if lo > hi {
        return None;
    }
    let p = next_prime(lo);
    if p <= hi {
        Some(p)
    } else {
        None
    }
}

/// Returns `⌈log₂(n)⌉` for `n ≥ 1` (and `0` for `n ∈ {0, 1}`).
#[inline]
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Returns `⌊log₂(n)⌋` for `n ≥ 1`. Panics on `n = 0`.
#[inline]
pub fn floor_log2(n: u64) -> u32 {
    assert!(n > 0, "floor_log2(0) is undefined");
    63 - n.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_matches_wide_arithmetic() {
        let cases = [
            (u64::MAX, u64::MAX, u64::MAX),
            (u64::MAX - 1, u64::MAX - 2, u64::MAX - 58),
            (12345, 67890, 97),
            (0, 5, 7),
        ];
        for (a, b, m) in cases {
            let expect = ((a as u128 * b as u128) % m as u128) as u64;
            assert_eq!(mulmod(a, b, m), expect);
        }
    }

    #[test]
    fn powmod_small_cases() {
        assert_eq!(powmod(2, 10, 1_000_000_007), 1024);
        assert_eq!(powmod(3, 0, 7), 1);
        assert_eq!(powmod(10, 18, 1_000_000_007), 49);
        assert_eq!(powmod(5, 3, 1), 0);
    }

    #[test]
    fn powmod_fermat_little_theorem() {
        // a^(p-1) ≡ 1 mod p for prime p and gcd(a, p) = 1.
        for p in [7u64, 97, 1009, 1_000_003, 2_147_483_647] {
            for a in [2u64, 3, 10, 123_456] {
                assert_eq!(powmod(a % p, p - 1, p), 1, "a={a} p={p}");
            }
        }
    }

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 97, 101, 1009];
        for p in primes {
            assert!(is_prime_u64(p), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for c in [0u64, 1, 4, 6, 8, 9, 15, 21, 25, 27, 33, 35, 49, 91, 1001] {
            assert!(!is_prime_u64(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // Classic strong pseudoprimes to small bases.
        for c in [2047u64, 1_373_653, 25_326_001, 3_215_031_751, 3_825_123_056_546_413_051] {
            assert!(!is_prime_u64(c), "{c} is a strong pseudoprime, not prime");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime_u64(2_147_483_647)); // 2^31 − 1
        assert!(is_prime_u64((1 << 61) - 1)); // 2^61 − 1
        assert!(is_prime_u64(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime_u64(u64::MAX));
    }

    #[test]
    fn primality_matches_trial_division_exhaustively() {
        let mut sieve = vec![true; 10_000];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..10_000usize {
            if sieve[i] {
                let mut j = i * i;
                while j < 10_000 {
                    sieve[j] = false;
                    j += i;
                }
            }
        }
        for n in 0..10_000u64 {
            assert_eq!(is_prime_u64(n), sieve[n as usize], "disagreement at {n}");
        }
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(1_000_000), 1_000_003);
    }

    #[test]
    fn prime_in_range_finds_bertrand_prime() {
        // The paper's interval [8 n log n, 16 n log n] always contains a prime.
        for n in [16u64, 100, 1000, 50_000] {
            let log_n = ceil_log2(n).max(1) as u64;
            let lo = 8 * n * log_n;
            let hi = 16 * n * log_n;
            let p = prime_in_range(lo, hi).expect("Bertrand interval must contain a prime");
            assert!(p >= lo && p <= hi);
            assert!(is_prime_u64(p));
        }
    }

    #[test]
    fn prime_in_range_empty_interval() {
        assert_eq!(prime_in_range(24, 28), None); // no prime in [24, 28]
        assert_eq!(prime_in_range(10, 5), None);
    }

    #[test]
    fn log2_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(1024), 10);
        assert_eq!(floor_log2(1535), 10);
    }

    #[test]
    fn reducer_matches_hardware_remainder() {
        let moduli = [
            2u64,
            3,
            5,
            97,
            1009,
            65_536,
            (1 << 31) - 1,
            1 << 31,
            (1 << 31) + 11,
            1_000_000_007,
            (1 << 61) - 1,
            18_446_744_073_709_551_557, // largest u64 prime
            u64::MAX,
        ];
        let inputs = [
            0u64,
            1,
            2,
            96,
            97,
            98,
            65_535,
            65_536,
            (1 << 31) - 1,
            1 << 31,
            (1 << 62) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &m in &moduli {
            let red = Reducer::new(m);
            assert_eq!(red.modulus(), m);
            for &x in &inputs {
                assert_eq!(red.rem(x), x % m, "x = {x}, m = {m}");
            }
            // Dense sweep around multiples of m to hit every correction path.
            for k in 0u64..4 {
                let base = m.saturating_mul(k);
                for d in 0..8u64 {
                    let x = base.saturating_add(d);
                    assert_eq!(red.rem(x), x % m, "x = {x}, m = {m}");
                }
            }
        }
        // Pseudorandom cross-check over many (x, m) pairs.
        let mut g = crate::prf::SplitMix64::new(0xBADC_0FFE);
        for _ in 0..20_000 {
            let m = g.next_u64().max(2);
            let x = g.next_u64();
            assert_eq!(Reducer::new(m).rem(x), x % m, "x = {x}, m = {m}");
        }
    }

    #[test]
    fn addmod_wraps() {
        assert_eq!(addmod(u64::MAX - 1, u64::MAX - 1, u64::MAX), u64::MAX - 2);
        assert_eq!(addmod(3, 4, 5), 2);
    }
}
