//! Seeded "oracle" random functions — the stand-in for Algorithm 2's
//! oracle randomness (DESIGN.md substitution S2).
//!
//! Algorithm 2 assumes `∆ + √∆` uniformly random functions
//! `h_i : V → [∆²]`, `g_ℓ : V → [∆^{3/2}]`, accessed as a random oracle
//! (the paper charges their `O(n∆)` bits to an oracle, not to working
//! memory, and remarks that a cryptographic PRG is the practical
//! realization). [`OracleFn`] realizes one such function as a stateless
//! keyed PRF: evaluation is `O(1)`, storage is one 64-bit key, and the
//! adversary in our game framework observes only algorithm outputs — never
//! the key — matching the model.

use crate::prf::{prf2, prf2_derive, prf2_finish, prf3, splitmix64, uniform_below};

/// A seeded random function `u64 → [range]`.
///
/// Two `OracleFn`s with different `(seed, id)` pairs behave as independent
/// random functions; the same pair always yields the same function.
///
/// Evaluation was originally `uniform_below(prf3(key, 0x5EED, x), range)`;
/// since `prf3(key, a, x) = prf2(prf2(key, a), x)` and the inner call
/// depends only on the key, construction now caches the derived key
/// `dk = prf2_derive(prf2(key, 0x5EED))`, leaving exactly two mixer
/// rounds per point: `uniform_below(prf2_finish(dk, x), range)`. Same
/// bits out, about half the work — the scalar leg of the crate's batched
/// evaluation tier (see [`OracleFn::eval_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleFn {
    key: u64,
    /// Cached inner PRF state for the fixed tweak `0x5EED` (a pure
    /// function of `key`; kept alongside it so equality stays keyed).
    dk: u64,
    range: u64,
}

impl OracleFn {
    /// Creates the function identified by `id` under master seed `seed`,
    /// mapping into `[0, range)`.
    pub fn new(seed: u64, id: u64, range: u64) -> Self {
        assert!(range >= 1, "oracle range must be nonempty");
        let key = prf3(seed, 0x0B5E_55ED_0C0F_FEE5, id);
        let dk = prf2_derive(prf2(key, 0x5EED));
        Self { key, dk, range }
    }

    /// Evaluates the function at `x`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        uniform_below(prf2_finish(self.dk, x), self.range)
    }

    /// The key-independent inner mixing round of [`OracleFn::eval`]:
    /// `eval(x) == eval_presplit(presplit(x))` for **every** oracle, so
    /// hot loops that evaluate many functions at the same vertices
    /// (Algorithm 2 runs every chunk endpoint through one sketch per
    /// future epoch plus one per degree level) hoist this round into a
    /// per-chunk column and share it across all of them. Splitting is
    /// what makes the sharing expressible; the per-key outer round in
    /// [`OracleFn::eval_presplit`] is the irreducible per-function cost.
    #[inline]
    pub fn presplit(x: u64) -> u64 {
        splitmix64(x)
    }

    /// Completes an evaluation from a [`OracleFn::presplit`] value — the
    /// per-key outer round alone. Bit-identical to [`OracleFn::eval`]
    /// composed with `presplit` by construction (`prf2_finish(dk, x)` is
    /// `splitmix64(dk + splitmix64(x))`).
    #[inline]
    pub fn eval_presplit(&self, sx: u64) -> u64 {
        uniform_below(splitmix64(self.dk.wrapping_add(sx)), self.range)
    }

    /// Evaluates at every `xs[i]` into `out[i]` — the batched tier.
    ///
    /// **Bit-identical to [`OracleFn::eval`]** on each input. The loop
    /// body is branch-free (two mixer rounds and a fixed-point multiply),
    /// so the compiler can unroll and vectorize it; callers reuse the
    /// output buffers across chunks (`sc-core`'s `EvalScratch`).
    pub fn eval_batch(&self, xs: &[u32], out: &mut [u64]) {
        assert_eq!(xs.len(), out.len(), "eval_batch buffers must match");
        let (dk, range) = (self.dk, self.range);
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = uniform_below(prf2_finish(dk, x as u64), range);
        }
    }

    /// The range size of the function.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_identity() {
        let f1 = OracleFn::new(1, 2, 100);
        let f2 = OracleFn::new(1, 2, 100);
        for x in 0..50 {
            assert_eq!(f1.eval(x), f2.eval(x));
        }
    }

    #[test]
    fn distinct_ids_are_distinct_functions() {
        let f1 = OracleFn::new(1, 0, 1 << 20);
        let f2 = OracleFn::new(1, 1, 1 << 20);
        let agreements = (0..256).filter(|&x| f1.eval(x) == f2.eval(x)).count();
        assert!(agreements <= 2, "functions agree too often: {agreements}/256");
    }

    #[test]
    fn distinct_seeds_are_distinct_functions() {
        let f1 = OracleFn::new(10, 0, 1 << 20);
        let f2 = OracleFn::new(11, 0, 1 << 20);
        let agreements = (0..256).filter(|&x| f1.eval(x) == f2.eval(x)).count();
        assert!(agreements <= 2);
    }

    #[test]
    fn output_in_range() {
        let f = OracleFn::new(3, 9, 17);
        for x in 0..10_000 {
            assert!(f.eval(x) < 17);
        }
    }

    #[test]
    fn outputs_roughly_uniform() {
        let range = 32u64;
        let f = OracleFn::new(42, 7, range);
        let n = 64_000u64;
        let mut counts = vec![0u64; range as usize];
        for x in 0..n {
            counts[f.eval(x) as usize] += 1;
        }
        let expected = (n / range) as f64;
        for (cell, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "cell {cell} deviates {dev:.3}");
        }
    }

    #[test]
    fn pairwise_collision_rate_matches_uniform() {
        // Random functions have collision probability exactly 1/range.
        let range = 64u64;
        let trials = 20_000u64;
        let mut collisions = 0u64;
        for id in 0..trials {
            let f = OracleFn::new(5, id, range);
            if f.eval(1) == f.eval(2) {
                collisions += 1;
            }
        }
        let expected = trials / range;
        assert!(
            collisions > expected / 2 && collisions < expected * 2,
            "collisions {collisions} vs expected {expected}"
        );
    }

    #[test]
    fn derived_key_preserves_original_prf_chain() {
        // The cached-dk evaluation must equal the original definition
        // uniform_below(prf3(key, 0x5EED, x), range) bit-for-bit.
        for (seed, id, range) in [(0u64, 0u64, 1u64), (1, 2, 100), (42, 7, 1 << 20), (9, 3, 17)] {
            let f = OracleFn::new(seed, id, range);
            for x in (0..64).chain([u64::MAX - 1, u64::MAX, 1 << 32, 1 << 63]) {
                assert_eq!(f.eval(x), uniform_below(prf3(f.key, 0x5EED, x), range), "x = {x}");
            }
        }
    }

    #[test]
    fn eval_batch_matches_scalar() {
        let f = OracleFn::new(11, 4, 1 << 12);
        let xs: Vec<u32> = (0..1000).chain([u32::MAX - 1, u32::MAX]).collect();
        let mut out = vec![0u64; xs.len()];
        f.eval_batch(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            assert_eq!(o, f.eval(x as u64), "x = {x}");
        }
    }

    #[test]
    fn range_one_is_constant_zero() {
        let f = OracleFn::new(0, 0, 1);
        for x in 0..100 {
            assert_eq!(f.eval(x), 0);
        }
    }
}
