//! Seeded "oracle" random functions — the stand-in for Algorithm 2's
//! oracle randomness (DESIGN.md substitution S2).
//!
//! Algorithm 2 assumes `∆ + √∆` uniformly random functions
//! `h_i : V → [∆²]`, `g_ℓ : V → [∆^{3/2}]`, accessed as a random oracle
//! (the paper charges their `O(n∆)` bits to an oracle, not to working
//! memory, and remarks that a cryptographic PRG is the practical
//! realization). [`OracleFn`] realizes one such function as a stateless
//! keyed PRF: evaluation is `O(1)`, storage is one 64-bit key, and the
//! adversary in our game framework observes only algorithm outputs — never
//! the key — matching the model.

use crate::prf::{prf3, uniform_below};

/// A seeded random function `u64 → [range]`.
///
/// Two `OracleFn`s with different `(seed, id)` pairs behave as independent
/// random functions; the same pair always yields the same function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleFn {
    key: u64,
    range: u64,
}

impl OracleFn {
    /// Creates the function identified by `id` under master seed `seed`,
    /// mapping into `[0, range)`.
    pub fn new(seed: u64, id: u64, range: u64) -> Self {
        assert!(range >= 1, "oracle range must be nonempty");
        Self { key: prf3(seed, 0x0B5E_55ED_0C0F_FEE5, id), range }
    }

    /// Evaluates the function at `x`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        uniform_below(prf3(self.key, 0x5EED, x), self.range)
    }

    /// The range size of the function.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_identity() {
        let f1 = OracleFn::new(1, 2, 100);
        let f2 = OracleFn::new(1, 2, 100);
        for x in 0..50 {
            assert_eq!(f1.eval(x), f2.eval(x));
        }
    }

    #[test]
    fn distinct_ids_are_distinct_functions() {
        let f1 = OracleFn::new(1, 0, 1 << 20);
        let f2 = OracleFn::new(1, 1, 1 << 20);
        let agreements = (0..256).filter(|&x| f1.eval(x) == f2.eval(x)).count();
        assert!(agreements <= 2, "functions agree too often: {agreements}/256");
    }

    #[test]
    fn distinct_seeds_are_distinct_functions() {
        let f1 = OracleFn::new(10, 0, 1 << 20);
        let f2 = OracleFn::new(11, 0, 1 << 20);
        let agreements = (0..256).filter(|&x| f1.eval(x) == f2.eval(x)).count();
        assert!(agreements <= 2);
    }

    #[test]
    fn output_in_range() {
        let f = OracleFn::new(3, 9, 17);
        for x in 0..10_000 {
            assert!(f.eval(x) < 17);
        }
    }

    #[test]
    fn outputs_roughly_uniform() {
        let range = 32u64;
        let f = OracleFn::new(42, 7, range);
        let n = 64_000u64;
        let mut counts = vec![0u64; range as usize];
        for x in 0..n {
            counts[f.eval(x) as usize] += 1;
        }
        let expected = (n / range) as f64;
        for (cell, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "cell {cell} deviates {dev:.3}");
        }
    }

    #[test]
    fn pairwise_collision_rate_matches_uniform() {
        // Random functions have collision probability exactly 1/range.
        let range = 64u64;
        let trials = 20_000u64;
        let mut collisions = 0u64;
        for id in 0..trials {
            let f = OracleFn::new(5, id, range);
            if f.eval(1) == f.eval(2) {
                collisions += 1;
            }
        }
        let expected = trials / range;
        assert!(
            collisions > expected / 2 && collisions < expected * 2,
            "collisions {collisions} vs expected {expected}"
        );
    }

    #[test]
    fn range_one_is_constant_zero() {
        let f = OracleFn::new(0, 0, 1);
        for x in 0..100 {
            assert_eq!(f.eval(x), 0);
        }
    }
}
