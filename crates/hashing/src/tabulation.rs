//! Simple tabulation hashing.
//!
//! Splits a 32-bit key into 4 bytes and XORs four random 256-entry tables:
//! `h(x) = T₀[x₀] ⊕ T₁[x₁] ⊕ T₂[x₂] ⊕ T₃[x₃]`. Zobrist/Carter–Wegman
//! classic; **3-independent** (not 4-independent), yet with Chernoff-style
//! concentration far beyond its independence (Pătraşcu–Thorup 2012), and
//! evaluates in a handful of cache hits — no multiplications.
//!
//! Included as the practitioner's alternative to the polynomial families:
//! `bench_hash` compares their throughputs, and the robust colorers could
//! swap it in wherever only collision statistics matter (not the exact
//! 4-independence Lemma 4.8's variance computation uses — which is why
//! Algorithm 3 itself keeps the polynomial family).

use crate::prf::{uniform_below, SplitMix64};

/// A simple (4-way, byte-indexed) tabulation hash `u32 → [range]`.
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; 256]; 4]>,
    range: u64,
}

impl TabulationHash {
    /// Samples the four tables from a seeded generator.
    pub fn new(seed: u64, range: u64) -> Self {
        assert!(range >= 1);
        let mut rng = SplitMix64::new(seed);
        let mut tables = Box::new([[0u64; 256]; 4]);
        for t in tables.iter_mut() {
            for cell in t.iter_mut() {
                *cell = rng.next_u64();
            }
        }
        Self { tables, range }
    }

    /// Evaluates the hash.
    #[inline]
    pub fn eval(&self, x: u32) -> u64 {
        let b = x.to_le_bytes();
        let mixed = self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize];
        uniform_below(mixed, self.range)
    }

    /// The range size.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Bits of randomness stored (4 × 256 × 64).
    pub const RANDOMNESS_BITS: u64 = 4 * 256 * 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = TabulationHash::new(5, 1000);
        let b = TabulationHash::new(5, 1000);
        for x in 0..500u32 {
            assert_eq!(a.eval(x), b.eval(x));
        }
        let c = TabulationHash::new(6, 1000);
        let diff = (0..500u32).filter(|&x| a.eval(x) != c.eval(x)).count();
        assert!(diff > 490);
    }

    #[test]
    fn range_respected() {
        let h = TabulationHash::new(1, 37);
        for x in 0..10_000u32 {
            assert!(h.eval(x) < 37);
        }
    }

    #[test]
    fn roughly_uniform() {
        let range = 16u64;
        let h = TabulationHash::new(9, range);
        let trials = 64_000u32;
        let mut counts = vec![0u64; range as usize];
        for x in 0..trials {
            counts[h.eval(x) as usize] += 1;
        }
        let expected = trials as f64 / range as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.08, "bucket {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn pairwise_collisions_near_uniform() {
        let range = 64u64;
        let trials = 8000u64;
        let mut collisions = 0u64;
        for seed in 0..trials {
            let h = TabulationHash::new(seed, range);
            if h.eval(123) == h.eval(45_678) {
                collisions += 1;
            }
        }
        let expected = trials / range;
        assert!(
            collisions > expected / 2 && collisions < expected * 2,
            "{collisions} vs expected {expected}"
        );
    }

    #[test]
    fn xor_structure_threewise() {
        // Exhaustive check of 3-independence on a restricted projection
        // is infeasible here; instead verify that keys differing in one
        // byte produce (empirically) independent-looking outputs.
        let h = TabulationHash::new(3, 1 << 30);
        let base = h.eval(0x01020304);
        let mut equal = 0;
        for delta in 1..=255u32 {
            if h.eval(0x01020304 ^ delta) == base {
                equal += 1;
            }
        }
        assert_eq!(equal, 0);
    }
}
