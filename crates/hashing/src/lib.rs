//! # `sc-hash` — hashing substrate for `streamcolor`
//!
//! The algorithms of Assadi–Chakrabarti–Ghosh–Stoeckl (PODS 2023) rely on
//! several families of hash functions, each with a precise independence
//! guarantee that their analyses use:
//!
//! * [`AffineFamily`] — the Carter–Wegman family `{z ↦ az + b : a, b ∈ F_p}`
//!   of **pairwise-independent** functions `F_p → F_p`. Algorithm 1 (the
//!   deterministic multi-pass `(∆+1)`-coloring) derandomizes over this
//!   family when shrinking proposal subcubes (paper §3.2, line 16 of
//!   Algorithm 1).
//! * [`TwoUniversalFamily`] — `{z ↦ ((az + b) mod p) mod s : a ≠ 0}`, a
//!   **2-universal** family used by Lemma 3.10 to build the partition family
//!   for `(deg+1)`-list-coloring.
//! * [`PolynomialFamily`] — degree-`(k−1)` polynomials over `F_p`, a
//!   **k-independent** family; Algorithm 3 (randomness-efficient robust
//!   coloring) needs `k = 4`.
//! * [`OracleFn`] — a seeded pseudorandom function standing in for the
//!   "oracle access to `O(n∆)` random bits" that Algorithm 2 assumes
//!   (see DESIGN.md §3, substitution S2).
//!
//! Supporting machinery lives in [`modp`] (modular arithmetic on `u64`
//! via `u128` widening, deterministic Miller–Rabin primality for all
//! 64-bit inputs, and prime search in a range — Algorithm 1 needs a prime
//! in `[8n log n, 16n log n]`).
//!
//! ## Evaluation tiers
//!
//! Hot paths evaluate the same functions through three bit-identical
//! tiers (see [`batch`] for the full contract): scalar reference
//! evaluation ([`PolynomialHash::eval`], [`OracleFn::eval`]), batched
//! branch-free loops over pooled buffers ([`PolynomialHash::eval_batch`],
//! [`OracleFn::eval_batch`], powered by the Barrett [`modp::Reducer`]),
//! and the precomputed per-seed value matrix [`VertexSlotTable`] for
//! many-functions-over-one-small-domain workloads like Algorithm 3's
//! `∆ · P` candidate hashes. Equality across tiers is a tested law —
//! callers may pick purely on performance.
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns seeded randomness and its arithmetic — a seed plus a
//! family fully determines every value, on every platform and tier,
//! which is what the workspace's byte-identical determinism laws stand
//! on. It knows nothing of graphs, streams, or colorings, and it never
//! meters space: colorers that *store* hash functions account for the
//! seed words themselves.

pub mod affine;
pub mod batch;
pub mod mersenne;
pub mod modp;
pub mod oracle;
pub mod polynomial;
pub mod prf;
pub mod tabulation;
pub mod two_universal;

pub use affine::{AffineFamily, AffineHash};
pub use batch::{VertexSlotTable, MAX_TABLE_BYTES};
pub use mersenne::{add61, mul61, reduce128, MersenneAffine, P61};
pub use modp::{is_prime_u64, mulmod, next_prime, powmod, prime_in_range, Reducer};
pub use oracle::OracleFn;
pub use polynomial::{PolynomialFamily, PolynomialHash};
pub use prf::{splitmix64, uniform_below, SplitMix64};
pub use tabulation::TabulationHash;
pub use two_universal::{TwoUniversalFamily, TwoUniversalHash};
