//! Property-based tests for the hashing substrate: algebraic laws of the
//! modular arithmetic, structural guarantees of the families, and
//! determinism of every seeded construction.

use proptest::prelude::*;
use sc_hash::{
    is_prime_u64, mulmod, next_prime, powmod, prime_in_range, AffineFamily, OracleFn,
    PolynomialFamily, SplitMix64, TabulationHash, TwoUniversalFamily,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mulmod_is_exact(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(mulmod(a, b, m), expect);
    }

    #[test]
    fn powmod_matches_repeated_multiplication(base in 0u64..1000, exp in 0u64..64, m in 2u64..100_000) {
        let mut acc = 1u64 % m;
        for _ in 0..exp {
            acc = mulmod(acc, base % m, m);
        }
        prop_assert_eq!(powmod(base, exp, m), acc);
    }

    #[test]
    fn next_prime_is_prime_and_minimal(n in 0u64..10_000_000) {
        let p = next_prime(n);
        prop_assert!(p >= n.max(2));
        prop_assert!(is_prime_u64(p));
        // No prime strictly between n and p (spot-check small gaps).
        if p > n {
            for q in n..p {
                prop_assert!(!is_prime_u64(q));
            }
        }
    }

    #[test]
    fn bertrand_interval_never_empty(n in 2u64..100_000, l in 1u64..32) {
        prop_assert!(prime_in_range(8 * n * l, 16 * n * l).is_some());
    }

    #[test]
    fn affine_hash_stays_in_range(a in 0u64..97, b in 0u64..97, z in any::<u64>()) {
        let fam = AffineFamily::new(97);
        let h = fam.member(a, b);
        prop_assert!(h.eval(z) < 97);
    }

    #[test]
    fn two_universal_member_index_roundtrip(idx in 0u128..(31 * 30)) {
        let fam = TwoUniversalFamily::with_modulus(31, 5);
        let h = fam.member(idx);
        prop_assert!(h.a >= 1 && h.a < 31);
        prop_assert!(h.b < 31);
        // Lexicographic enumeration: recompute index.
        let back = (h.a as u128 - 1) * 31 + h.b as u128;
        prop_assert_eq!(back, idx);
    }

    #[test]
    fn polynomial_sampling_is_seed_deterministic(seed in any::<u64>()) {
        let fam = PolynomialFamily::for_domain(1 << 16, 256, 4);
        let h1 = fam.sample(&mut SplitMix64::new(seed));
        let h2 = fam.sample(&mut SplitMix64::new(seed));
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn oracle_fn_consistent_and_ranged(seed in any::<u64>(), id in any::<u64>(), x in any::<u64>(), r in 1u64..1_000_000) {
        let f = OracleFn::new(seed, id, r);
        prop_assert!(f.eval(x) < r);
        prop_assert_eq!(f.eval(x), f.eval(x));
    }

    #[test]
    fn tabulation_ranged(seed in any::<u64>(), x in any::<u32>(), r in 1u64..1_000_000) {
        let h = TabulationHash::new(seed, r);
        prop_assert!(h.eval(x) < r);
    }

    #[test]
    fn splitmix_fork_independence(seed in any::<u64>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        prop_assume!(t1 != t2);
        let parent = SplitMix64::new(seed);
        let mut a = parent.fork(t1);
        let mut b = parent.fork(t2);
        // Different tweaks should not produce identical first draws.
        prop_assert_ne!(a.next_u64(), b.next_u64());
    }
}

// ---- Mersenne field laws ----

use sc_hash::{add61, mul61, MersenneAffine, P61};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mersenne_mul_matches_generic(a in 0u64..P61, b in 0u64..P61) {
        prop_assert_eq!(mul61(a, b), mulmod(a, b, P61));
    }

    #[test]
    fn mersenne_field_laws(a in 0u64..P61, b in 0u64..P61, c in 0u64..P61) {
        // Commutativity and distributivity.
        prop_assert_eq!(mul61(a, b), mul61(b, a));
        prop_assert_eq!(add61(a, b), add61(b, a));
        prop_assert_eq!(mul61(a, add61(b, c)), add61(mul61(a, b), mul61(a, c)));
    }

    #[test]
    fn mersenne_affine_range_mapping(a in any::<u64>(), b in any::<u64>(), z in any::<u64>(), r in 1u64..10_000) {
        let h = MersenneAffine::new(a, b);
        prop_assert!(h.eval(z) < P61);
        prop_assert!(h.eval_range(z, r) < r);
    }
}
