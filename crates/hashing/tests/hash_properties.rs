//! Property-based tests for the hashing substrate: algebraic laws of the
//! modular arithmetic, structural guarantees of the families, and
//! determinism of every seeded construction.

use proptest::prelude::*;
use sc_hash::{
    is_prime_u64, mulmod, next_prime, powmod, prime_in_range, AffineFamily, OracleFn,
    PolynomialFamily, SplitMix64, TabulationHash, TwoUniversalFamily,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mulmod_is_exact(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(mulmod(a, b, m), expect);
    }

    #[test]
    fn powmod_matches_repeated_multiplication(base in 0u64..1000, exp in 0u64..64, m in 2u64..100_000) {
        let mut acc = 1u64 % m;
        for _ in 0..exp {
            acc = mulmod(acc, base % m, m);
        }
        prop_assert_eq!(powmod(base, exp, m), acc);
    }

    #[test]
    fn next_prime_is_prime_and_minimal(n in 0u64..10_000_000) {
        let p = next_prime(n);
        prop_assert!(p >= n.max(2));
        prop_assert!(is_prime_u64(p));
        // No prime strictly between n and p (spot-check small gaps).
        if p > n {
            for q in n..p {
                prop_assert!(!is_prime_u64(q));
            }
        }
    }

    #[test]
    fn bertrand_interval_never_empty(n in 2u64..100_000, l in 1u64..32) {
        prop_assert!(prime_in_range(8 * n * l, 16 * n * l).is_some());
    }

    #[test]
    fn affine_hash_stays_in_range(a in 0u64..97, b in 0u64..97, z in any::<u64>()) {
        let fam = AffineFamily::new(97);
        let h = fam.member(a, b);
        prop_assert!(h.eval(z) < 97);
    }

    #[test]
    fn two_universal_member_index_roundtrip(idx in 0u128..(31 * 30)) {
        let fam = TwoUniversalFamily::with_modulus(31, 5);
        let h = fam.member(idx);
        prop_assert!(h.a >= 1 && h.a < 31);
        prop_assert!(h.b < 31);
        // Lexicographic enumeration: recompute index.
        let back = (h.a as u128 - 1) * 31 + h.b as u128;
        prop_assert_eq!(back, idx);
    }

    #[test]
    fn polynomial_sampling_is_seed_deterministic(seed in any::<u64>()) {
        let fam = PolynomialFamily::for_domain(1 << 16, 256, 4);
        let h1 = fam.sample(&mut SplitMix64::new(seed));
        let h2 = fam.sample(&mut SplitMix64::new(seed));
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn oracle_fn_consistent_and_ranged(seed in any::<u64>(), id in any::<u64>(), x in any::<u64>(), r in 1u64..1_000_000) {
        let f = OracleFn::new(seed, id, r);
        prop_assert!(f.eval(x) < r);
        prop_assert_eq!(f.eval(x), f.eval(x));
    }

    #[test]
    fn tabulation_ranged(seed in any::<u64>(), x in any::<u32>(), r in 1u64..1_000_000) {
        let h = TabulationHash::new(seed, r);
        prop_assert!(h.eval(x) < r);
    }

    #[test]
    fn splitmix_fork_independence(seed in any::<u64>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        prop_assume!(t1 != t2);
        let parent = SplitMix64::new(seed);
        let mut a = parent.fork(t1);
        let mut b = parent.fork(t2);
        // Different tweaks should not produce identical first draws.
        prop_assert_ne!(a.next_u64(), b.next_u64());
    }
}

// ---- Mersenne field laws ----

use sc_hash::{add61, mul61, MersenneAffine, P61};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mersenne_mul_matches_generic(a in 0u64..P61, b in 0u64..P61) {
        prop_assert_eq!(mul61(a, b), mulmod(a, b, P61));
    }

    #[test]
    fn mersenne_field_laws(a in 0u64..P61, b in 0u64..P61, c in 0u64..P61) {
        // Commutativity and distributivity.
        prop_assert_eq!(mul61(a, b), mul61(b, a));
        prop_assert_eq!(add61(a, b), add61(b, a));
        prop_assert_eq!(mul61(a, add61(b, c)), add61(mul61(a, b), mul61(a, c)));
    }

    #[test]
    fn mersenne_affine_range_mapping(a in any::<u64>(), b in any::<u64>(), z in any::<u64>(), r in 1u64..10_000) {
        let h = MersenneAffine::new(a, b);
        prop_assert!(h.eval(z) < P61);
        prop_assert!(h.eval_range(z, r) < r);
    }
}

// ---- Batched evaluation tiers ----
//
// The batch/table tiers are pure accelerations: every law below pins them
// bit-for-bit to the scalar reference path, including the boundary values
// the vectorized loops are most likely to mishandle (range 1, domain
// endpoints, moduli past the u64 dot-product guard).

use sc_hash::{Reducer, VertexSlotTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reducer_rem_matches_hardware(x in any::<u64>(), m in 2u64..) {
        prop_assert_eq!(Reducer::new(m).rem(x), x % m);
    }

    #[test]
    fn oracle_presplit_factorization_matches_scalar(
        seed in any::<u64>(),
        id in any::<u64>(),
        r in 1u64..1_000_000,
        mut xs in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        // The fused batch tier rests on this law: the inner mixing round
        // is key-independent, so `eval = eval_presplit ∘ presplit` holds
        // bit-for-bit for every oracle — including the domain endpoints.
        xs.extend([0, 1, u64::MAX]);
        let f = OracleFn::new(seed, id, r);
        for &x in &xs {
            prop_assert_eq!(f.eval_presplit(OracleFn::presplit(x)), f.eval(x));
        }
    }

    #[test]
    fn oracle_eval_batch_matches_scalar(
        seed in any::<u64>(),
        id in any::<u64>(),
        r in 1u64..1_000_000,
        mut xs in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        // Force the endpoints of the u32 domain into every run.
        xs.extend([0, 1, u32::MAX]);
        let f = OracleFn::new(seed, id, r);
        let mut out = vec![0u64; xs.len()];
        f.eval_batch(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            prop_assert_eq!(o, f.eval(x as u64));
        }
    }

    #[test]
    fn polynomial_eval_batch_matches_scalar(
        seed in any::<u64>(),
        domain_log in 4u32..34,
        range in 1u64..100_000,
        degree in 2usize..6,
        mut xs in proptest::collection::vec(any::<u32>(), 0..100),
    ) {
        // domain_log ≥ 31 pushes p past the dot-product guard for the
        // higher degrees, covering the scalar-fallback arm too.
        xs.extend([0, 1, u32::MAX]);
        let fam = PolynomialFamily::for_domain(1u64 << domain_log, range, degree);
        let h = fam.sample(&mut SplitMix64::new(seed));
        let mut out = vec![0u64; xs.len()];
        h.eval_batch(&xs, &mut out);
        for (&x, &o) in xs.iter().zip(&out) {
            prop_assert_eq!(o, h.eval(x as u64));
        }
    }

    #[test]
    fn slot_table_matches_scalar_and_finds_all_collisions(
        seed in any::<u64>(),
        n in 2usize..80,
        slots in 1usize..12,
        range in 1u64..4096,
        from_raw in 0usize..12,
    ) {
        let fam = PolynomialFamily::for_domain(n as u64, range, 4);
        let mut rng = SplitMix64::new(seed);
        let hashes: Vec<_> = (0..slots).map(|_| fam.sample(&mut rng)).collect();
        let table = VertexSlotTable::build(&hashes, n)
            .expect("small same-field configuration must tabulate");
        for v in 0..n as u32 {
            for (s, h) in hashes.iter().enumerate() {
                prop_assert_eq!(table.value(v, s), h.eval(v as u64));
            }
        }
        // equal_slots reports exactly the colliding slot suffix.
        let from = from_raw % slots;
        let (u, v) = (0u32, (n - 1) as u32);
        let mut reported = Vec::new();
        table.equal_slots(u, v, from, |s| reported.push(s));
        let expect: Vec<usize> = (from..slots)
            .filter(|&s| hashes[s].eval(u as u64) == hashes[s].eval(v as u64))
            .collect();
        prop_assert_eq!(reported, expect);
    }
}
