//! Offline stand-in for the `proptest` crate (see
//! `crates/compat/README.md`).
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over `pattern in strategy` arguments, integer-range
//! / tuple / [`any`](arbitrary::any) / `prop_map` /
//! [`collection::vec`] strategies, and the
//! `prop_assert*` / `prop_assume!` macros. Sampling is deterministic per
//! test name. There is **no shrinking**: a failing case panics with its
//! case index so it can be replayed by reading the strategy values out of
//! the panic message.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a random source.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + ((rng.next_u64() as u128 * span) >> 64) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<u128> {
        type Value = u128;

        fn sample(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            // Modulo bias is ≤ span/2¹²⁸ — irrelevant for test sampling.
            self.start + wide % span
        }
    }

    macro_rules! impl_range_from_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    if self.start == <$t>::MIN {
                        return rng.next_u64() as $t;
                    }
                    let span = (<$t>::MAX - self.start) as u128 + 1;
                    self.start + ((rng.next_u64() as u128) % span) as $t
                }
            }
        )*};
    }

    impl_range_from_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A strategy returning a fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Samples a value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of `size`-many samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Case-count configuration and the deterministic test RNG.

    /// Per-test configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases the [`proptest!`](crate::proptest) loop runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// How a single case ended, when not by success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — skip the case.
        Reject,
        /// `prop_assert*` failed — fail the test.
        Fail(String),
    }

    /// Deterministic RNG for strategy sampling (SplitMix64 keyed by the
    /// test name, so every test draws an independent, reproducible
    /// sequence).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG keyed by `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module alias so `prop::collection::vec(...)` works after a glob
    /// import, as with upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies for the configured
/// number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let ( $($pat,)+ ) =
                        ( $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+ );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest case machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Expanded directly (not via the format arm): stringified
        // conditions may contain brace characters that `format!` would
        // misread as placeholders.
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` through the proptest case machinery.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// `assert_ne!` through the proptest case machinery.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Skips the current case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3usize..9, y in 0u64..100) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100);
        }

        #[test]
        fn tuples_and_maps(v in pair().prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 70, "v = {}", v);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_rejects(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_numbers() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }
}
