//! Offline stand-in for the `polling` crate (see
//! `crates/compat/README.md`).
//!
//! An epoll-shaped readiness API — [`Poller`], [`Event`], [`Events`] —
//! implementing the subset `sc-cluster`'s reactor uses, under the same
//! crate name as smol's `polling`, so the shim is drop-in replaceable
//! by the real crate (or rewired to `mio` with a thin adapter) the day
//! this environment gains crates.io access.
//!
//! Semantics mirror upstream:
//!
//! * **Oneshot interest.** A source's interest is disarmed after each
//!   delivered event; call [`Poller::modify`] to re-arm. (On Linux this
//!   is literally `EPOLLONESHOT`; the portable fallback emulates it.)
//! * **Level-triggered while armed.** An armed source whose readiness
//!   condition holds is reported on the next [`Poller::wait`].
//! * **Error/hang-up conditions** (`EPOLLERR`/`EPOLLHUP`) are delivered
//!   even when not requested, surfaced as both `readable` and
//!   `writable` so the caller's next I/O attempt observes the error.
//! * [`Poller::wait`] returning `Ok(0)` means the timeout elapsed — or
//!   a signal interrupted the wait (`EINTR` is a spurious wakeup, not
//!   an error), so callers must re-check their own deadlines.
//!
//! Backends: raw `epoll(7)` syscalls on Linux (no libc crate — the
//! three FFI declarations below link against the C library the Rust
//! runtime already pulls in), and a `poll(2)`-based emulation on other
//! Unix platforms.

#![cfg(unix)]

use std::io;
use std::os::unix::io::AsRawFd;
use std::time::Duration;

/// Interest in (or readiness of) a source, tagged with a caller-chosen
/// `key` that comes back in every delivered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key passed at registration, echoed in delivered events.
    pub key: usize,
    /// Interest in (or readiness for) reading.
    pub readable: bool,
    /// Interest in (or readiness for) writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub const fn readable(key: usize) -> Self {
        Self { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub const fn writable(key: usize) -> Self {
        Self { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub const fn all(key: usize) -> Self {
        Self { key, readable: true, writable: true }
    }

    /// No interest (a registered but disarmed source).
    pub const fn none(key: usize) -> Self {
        Self { key, readable: false, writable: false }
    }
}

/// A buffer of delivered events, reused across [`Poller::wait`] calls.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer with the default capacity (1024 events per wait).
    pub fn new() -> Self {
        Self::with_capacity(1024)
    }

    /// An empty buffer delivering at most `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap.max(1)) }
    }

    /// The events delivered by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of delivered events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the last wait delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discards the delivered events (done automatically by wait).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

/// The readiness poller: register sources with a key and an interest,
/// then [`Poller::wait`] for events.
pub struct Poller {
    sys: sys::Backend,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    /// Propagates the backend creation failure.
    pub fn new() -> io::Result<Self> {
        Ok(Self { sys: sys::Backend::new()? })
    }

    /// Registers `source` with the given interest. The source must stay
    /// open until [`Poller::delete`]; registering an already-registered
    /// source is an error.
    ///
    /// # Errors
    /// Propagates the backend registration failure.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.sys.add(source.as_raw_fd(), interest)
    }

    /// Replaces a registered source's interest (also the oneshot re-arm
    /// call).
    ///
    /// # Errors
    /// Propagates the backend failure (e.g. the source is unregistered).
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.sys.modify(source.as_raw_fd(), interest)
    }

    /// Unregisters a source. Call before closing its descriptor.
    ///
    /// # Errors
    /// Propagates the backend failure.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.sys.delete(source.as_raw_fd())
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` = forever), filling `events`. Returns the number
    /// of delivered events; `Ok(0)` means timeout or signal.
    ///
    /// # Errors
    /// Propagates backend wait failures (`EINTR` excluded — that is a
    /// spurious `Ok(0)` wakeup).
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let cap = events.inner.capacity();
        self.sys.wait(&mut events.inner, cap, timeout)?;
        Ok(events.inner.len())
    }
}

/// Rounds a timeout up to whole milliseconds for the syscall (never
/// down — rounding down would busy-spin callers with sub-ms deadlines).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll(7) via direct FFI — the same C library symbols std links.

    use super::{timeout_ms, Event};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EINTR: i32 = 4;

    // The kernel ABI packs this struct on x86 so the 64-bit payload
    // follows the 32-bit mask without padding.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, max: c_int, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Event) -> u32 {
        // RDHUP makes a half-closed peer readable (the read observes
        // EOF); ONESHOT implements the crate's disarm-after-delivery
        // contract kernel-side.
        let mut m = EPOLLONESHOT;
        if interest.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Self> {
            Ok(Self { epfd: check(unsafe { epoll_create1(EPOLL_CLOEXEC) })? })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent { events: mask(interest), data: interest.key as u64 };
            check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest)
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(
            &self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; cap.max(1)];
            let n = match check(unsafe {
                epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms(timeout))
            }) {
                Ok(n) => n as usize,
                Err(e) if e.raw_os_error() == Some(EINTR) => 0,
                Err(e) => return Err(e),
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (events, data) = (ev.events, ev.data);
                let fail = events & (EPOLLERR | EPOLLHUP) != 0;
                out.push(Event {
                    key: data as usize,
                    readable: fail || events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: fail || events & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) emulation for non-Linux Unix: interests live in a
    //! user-space registry, and oneshot disarm happens on delivery.

    use super::{timeout_ms, Event};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const EINTR: i32 = 4;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    #[derive(Default)]
    pub struct Backend {
        registry: Mutex<BTreeMap<RawFd, Event>>,
    }

    impl Backend {
        pub fn new() -> io::Result<Self> {
            Ok(Self::default())
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poisoned polling registry");
            if registry.insert(fd, interest).is_some() {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
            }
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poisoned polling registry");
            match registry.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered")),
            }
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poisoned polling registry");
            match registry.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered")),
            }
        }

        pub fn wait(
            &self,
            out: &mut Vec<Event>,
            cap: usize,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let armed: Vec<(RawFd, Event)> = {
                let registry = self.registry.lock().expect("poisoned polling registry");
                registry
                    .iter()
                    .filter(|(_, e)| e.readable || e.writable)
                    .map(|(f, e)| (*f, *e))
                    .collect()
            };
            let mut fds: Vec<PollFd> = armed
                .iter()
                .map(|(fd, e)| PollFd {
                    fd: *fd,
                    events: if e.readable { POLLIN } else { 0 }
                        | if e.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.raw_os_error() == Some(EINTR) {
                    return Ok(());
                }
                return Err(e);
            }
            let mut registry = self.registry.lock().expect("poisoned polling registry");
            for (pollfd, (fd, interest)) in fds.iter().zip(&armed) {
                if out.len() >= cap.max(1) || pollfd.revents == 0 {
                    continue;
                }
                let fail = pollfd.revents & (POLLERR | POLLHUP) != 0;
                out.push(Event {
                    key: interest.key,
                    readable: fail || pollfd.revents & POLLIN != 0,
                    writable: fail || pollfd.revents & POLLOUT != 0,
                });
                // Oneshot: disarm until the caller re-arms via modify.
                if let Some(slot) = registry.get_mut(fd) {
                    *slot = Event::none(interest.key);
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    const TICK: Option<Duration> = Some(Duration::from_secs(5));

    #[test]
    fn writable_then_readable_with_keys() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = UnixStream::pair().unwrap();
        poller.add(&a, Event::writable(7)).unwrap();
        poller.add(&b, Event::readable(9)).unwrap();

        let mut events = Events::new();
        // A fresh socket is writable immediately; b has nothing to read.
        poller.wait(&mut events, TICK).unwrap();
        let got: Vec<Event> = events.iter().collect();
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].key, 7);
        assert!(got[0].writable);

        a.write_all(b"hello").unwrap();
        poller.wait(&mut events, TICK).unwrap();
        let got: Vec<Event> = events.iter().collect();
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].key, 9);
        assert!(got[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 5);
        poller.delete(&a).unwrap();
        poller.delete(&b).unwrap();
    }

    #[test]
    fn interest_is_oneshot_until_rearmed() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        a.write_all(b"x\n").unwrap();

        let mut events = Events::new();
        assert_eq!(poller.wait(&mut events, TICK).unwrap(), 1);
        // Delivered once; without a modify the source stays disarmed
        // even though the data was never read.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap(), 0);
        poller.modify(&b, Event::readable(1)).unwrap();
        assert_eq!(poller.wait(&mut events, TICK).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().key, 1);
    }

    #[test]
    fn timeout_elapses_and_none_interest_disarms() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(&b, Event::none(3)).unwrap();
        a.write_all(b"pending").unwrap();
        let mut events = Events::new();
        let started = Instant::now();
        // Registered but disarmed: readable data must not wake the wait.
        assert_eq!(poller.wait(&mut events, Some(Duration::from_millis(60))).unwrap(), 0);
        assert!(started.elapsed() >= Duration::from_millis(55), "returned early");
        assert!(events.is_empty());
        poller.modify(&b, Event::all(3)).unwrap();
        assert_eq!(poller.wait(&mut events, TICK).unwrap(), 1);
        let event = events.iter().next().unwrap();
        assert!(event.readable && event.writable, "{event:?}");
    }

    #[test]
    fn hangup_is_delivered_as_readiness() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(&b, Event::readable(4)).unwrap();
        drop(a);
        let mut events = Events::new();
        assert_eq!(poller.wait(&mut events, TICK).unwrap(), 1);
        // The subsequent read observes EOF — exactly what a reactor
        // needs to reap the connection.
        assert!(events.iter().next().unwrap().readable);
    }

    #[test]
    fn double_add_and_unknown_delete_are_errors() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(&a, Event::readable(0)).unwrap();
        assert!(poller.add(&a, Event::readable(0)).is_err(), "double add must fail");
        assert!(poller.delete(&b).is_err(), "deleting an unregistered source must fail");
        poller.delete(&a).unwrap();
        assert!(poller.modify(&a, Event::readable(0)).is_err(), "modify after delete must fail");
    }

    #[test]
    fn timeouts_round_up_to_whole_milliseconds() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_nanos(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(250))), 250);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
