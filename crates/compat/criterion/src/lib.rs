//! Offline stand-in for the `criterion` crate (see
//! `crates/compat/README.md`).
//!
//! Implements the harness subset the workspace's benches use:
//! [`Criterion::bench_function`] / [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is adaptive-batch wall-clock
//! timing: batches are grown until one batch exceeds ~2 ms, then
//! `sample_size` batches are timed and the median per-iteration time is
//! reported. Each result is also appended as a JSON line to
//! `target/bench-results.jsonl` for machine consumption.

pub use std::hint::black_box;

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Runs one benchmark's closure repeatedly under timing.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Self { batch: 1, samples: Vec::new(), target_samples }
    }

    /// Times `f`, auto-scaling the batch size, and records samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Grow the batch until one batch takes ≥ ~2 ms (or a cap, for
        // very slow bodies).
        loop {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || self.batch >= 1 << 20 {
                break;
            }
            self.batch *= 2;
        }
        let mut budget = Duration::from_millis(300);
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / self.batch as u32);
            budget = budget.saturating_sub(elapsed);
            if budget.is_zero() && self.samples.len() >= 3 {
                break;
            }
        }
    }

    fn summarize(&self) -> Option<(Duration, Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        Some((sorted[0], median, *sorted.last().unwrap()))
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn report(name: &str, b: &Bencher) {
    if let Some((min, median, max)) = b.summarize() {
        println!(
            "{name:<50} time: [{} {} {}]",
            format_duration(min),
            format_duration(median),
            format_duration(max)
        );
        append_json_line(name, min, median, max);
    }
}

/// Best-effort machine-readable trail; failures are ignored (the bench
/// output on stdout is the primary artifact).
fn append_json_line(name: &str, min: Duration, median: Duration, max: Duration) {
    let dir = std::path::Path::new("target");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(mut f) =
        std::fs::OpenOptions::new().create(true).append(true).open(dir.join("bench-results.jsonl"))
    {
        let _ = writeln!(
            f,
            "{{\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"max_ns\":{}}}",
            name.replace('"', "'"),
            min.as_nanos(),
            median.as_nanos(),
            max.as_nanos()
        );
    }
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into_id()), &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.into_id()), &b);
        self
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_samples() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 3u64 * 3));
        g.bench_with_input(BenchmarkId::new("g", 4), &4u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
