//! Offline stand-in for the `rand` crate (see `crates/compat/README.md`).
//!
//! Implements the subset the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] / [`Rng::gen_range`],
//! and [`seq::SliceRandom`]. The generator is xoshiro256** (public domain
//! reference construction) seeded through SplitMix64 — high-quality and
//! deterministic per seed, but a *different* stream than upstream
//! `StdRng`; nothing in this workspace depends on specific draws.

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a range can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_below<R: RngCore + ?Sized>(span: Self, rng: &mut R) -> Self;
    /// Widening add used to shift a below-span sample to `[low, high)`.
    fn shift(low: Self, offset: Self) -> Self;
    /// `high - low`.
    fn span(low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(span: Self, rng: &mut R) -> Self {
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for test workloads.
                ((rng.next_u64() as u128 * span as u128) >> 64) as Self
            }
            #[inline]
            fn shift(low: Self, offset: Self) -> Self {
                low + offset
            }
            #[inline]
            fn span(low: Self, high: Self) -> Self {
                high - low
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        let span = T::span(self.start, self.end);
        T::shift(self.start, T::sample_below(span, rng))
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, the standard open-interval construction.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Samples uniformly from `range`.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 (NOT upstream's ChaCha12 — see
    /// the module docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the construction xoshiro's authors
            // recommend for seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (subset: shuffle / choose).

    use super::Rng;

    /// Slice extension methods.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleUniform::sample_below(i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::SampleUniform::sample_below(self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_covers_elements() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
