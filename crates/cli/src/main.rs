use std::io::Write;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if tokens.is_empty() {
        let _ = out.write_all(streamcolor_cli::HELP.as_bytes());
        return;
    }
    if let Err(e) = streamcolor_cli::dispatch(&tokens, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
