//! A small, dependency-free argument parser.
//!
//! Grammar: `streamcolor <subcommand> [--flag value | --switch]…`.
//! Every flag takes exactly one value except declared boolean switches.
//! Unknown flags are errors (catching typos beats silently ignoring
//! them), as are duplicate flags and missing required values.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor used throughout the command modules.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed arguments: a subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional token).
    pub command: String,
    flags: BTreeMap<String, String>,
    /// Flags that were consumed by a getter, for unknown-flag detection.
    consumed: std::cell::RefCell<std::collections::BTreeSet<String>>,
}

impl Args {
    /// Parses raw argv tokens (without the program name).
    ///
    /// `switches` lists boolean flags that take no value.
    pub fn parse(tokens: &[String], switches: &[&str]) -> Result<Self, CliError> {
        let mut it = tokens.iter().peekable();
        let command =
            it.next().ok_or_else(|| err("missing subcommand; try `streamcolor help`"))?.clone();
        if command.starts_with("--") {
            return Err(err(format!("expected a subcommand before flags, got {command:?}")));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(err("empty flag `--`"));
            }
            if flags.contains_key(name) {
                return Err(err(format!("duplicate flag --{name}")));
            }
            if switches.contains(&name) {
                flags.insert(name.to_string(), String::from("true"));
                continue;
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().expect("peeked").clone());
                }
                _ => return Err(err(format!("flag --{name} requires a value"))),
            }
        }
        Ok(Self { command, flags, consumed: Default::default() })
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.consumed.borrow_mut().insert(name.to_string());
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().insert(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    /// An optional parsed flag (`None` when absent).
    pub fn parse_optional<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        self.optional(name)
            .map(|raw| raw.parse().map_err(|_| err(format!("flag --{name}: cannot parse {raw:?}"))))
            .transpose()
    }

    /// An optional parsed flag with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        Ok(self.parse_optional(name)?.unwrap_or(default))
    }

    /// A required parsed flag.
    pub fn parse_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, CliError> {
        let raw = self.required(name)?;
        raw.parse().map_err(|_| err(format!("flag --{name}: cannot parse {raw:?}")))
    }

    /// A boolean switch (declared in `Args::parse`).
    pub fn switch(&self, name: &str) -> bool {
        self.optional(name) == Some("true")
    }

    /// Errors on any flag no getter asked about — call after all getters.
    pub fn reject_unknown(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        for name in self.flags.keys() {
            if !consumed.contains(name) {
                return Err(err(format!("unknown flag --{name} for `{}`", self.command)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let a = Args::parse(&toks("gen --n 100 --family gnp"), &[]).unwrap();
        assert_eq!(a.command, "gen");
        assert_eq!(a.required("n").unwrap(), "100");
        assert_eq!(a.optional("family"), Some("gnp"));
        assert_eq!(a.optional("missing"), None);
        a.reject_unknown().unwrap();
    }

    #[test]
    fn missing_subcommand_and_flag_values() {
        assert!(Args::parse(&[], &[]).is_err());
        assert!(Args::parse(&toks("--n 5"), &[]).is_err());
        let e = Args::parse(&toks("gen --n"), &[]).unwrap_err();
        assert!(e.to_string().contains("requires a value"), "{e}");
        let e = Args::parse(&toks("gen --n --m 3"), &[]).unwrap_err();
        assert!(e.to_string().contains("requires a value"));
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse(&toks("color --quiet --n 5"), &["quiet"]).unwrap();
        assert!(a.switch("quiet"));
        assert_eq!(a.required("n").unwrap(), "5");
        let b = Args::parse(&toks("color --n 5"), &["quiet"]).unwrap();
        assert!(!b.switch("quiet"));
    }

    #[test]
    fn duplicate_and_unknown_flags() {
        assert!(Args::parse(&toks("gen --n 1 --n 2"), &[]).is_err());
        let a = Args::parse(&toks("gen --bogus 7"), &[]).unwrap();
        let e = a.reject_unknown().unwrap_err();
        assert!(e.to_string().contains("--bogus"));
    }

    #[test]
    fn typed_getters() {
        let a = Args::parse(&toks("gen --n 64 --p 0.5"), &[]).unwrap();
        assert_eq!(a.parse_required::<usize>("n").unwrap(), 64);
        assert_eq!(a.parse_or::<f64>("p", 0.1).unwrap(), 0.5);
        assert_eq!(a.parse_or::<u64>("seed", 42).unwrap(), 42);
        assert!(a.parse_required::<usize>("p").is_err(), "0.5 is not a usize");
        assert_eq!(a.parse_optional::<usize>("n").unwrap(), Some(64));
        assert_eq!(a.parse_optional::<usize>("seed").unwrap(), None);
        assert!(a.parse_optional::<usize>("p").is_err(), "0.5 is not a usize");
    }

    #[test]
    fn positional_after_subcommand_rejected() {
        let e = Args::parse(&toks("gen extra"), &[]).unwrap_err();
        assert!(e.to_string().contains("positional"));
    }
}
