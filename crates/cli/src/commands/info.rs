//! `streamcolor info` — structural report on a workload: sizes, degrees,
//! degeneracy, connectivity, and coloring-relevant bounds.

use crate::args::{err, Args, CliError};
use crate::workload;
use sc_graph::{
    bipartition, brooks_bound, chromatic_number, connected_components, degeneracy_ordering,
    greedy_clique,
};
use std::io::Write;

/// Graphs up to this many vertices get an exact chromatic number.
const CHROMATIC_LIMIT: usize = 64;

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let g = workload::acquire(args)?;
    workload::mark_flags_consumed(args);
    let want_chromatic = args.switch("chromatic");
    args.reject_unknown()?;

    let n = g.n();
    let all: Vec<u32> = (0..n as u32).collect();
    let info = degeneracy_ordering(&g, &all);
    let comps = connected_components(&g);
    let clique = greedy_clique(&g);

    let w = |o: &mut dyn Write, k: &str, v: &dyn std::fmt::Display| {
        writeln!(o, "{k:<16} {v}").map_err(|e| err(e.to_string()))
    };
    w(out, "n", &n)?;
    w(out, "m", &g.m())?;
    w(out, "max degree ∆", &g.max_degree())?;
    let avg = if n == 0 { 0.0 } else { 2.0 * g.m() as f64 / n as f64 };
    w(out, "avg degree", &format!("{avg:.2}"))?;
    w(out, "degeneracy κ", &info.degeneracy)?;
    w(out, "components", &comps.len())?;
    w(out, "bipartite", &bipartition(&g).is_some())?;
    w(out, "clique ≥", &clique.len())?;
    w(out, "Brooks bound", &brooks_bound(&g))?;
    if want_chromatic {
        if n > CHROMATIC_LIMIT {
            return Err(err(format!(
                "--chromatic is exact (exponential); limited to n ≤ {CHROMATIC_LIMIT}, got {n}"
            )));
        }
        let (chi, _) = chromatic_number(&g);
        w(out, "chromatic χ", &chi)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &["chromatic"]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn reports_structure_of_petersen() {
        let text = run_str("info --family petersen").unwrap();
        assert!(text.contains("n                10"), "{text}");
        assert!(text.contains("m                15"));
        assert!(text.contains("max degree ∆     3"));
        assert!(text.contains("degeneracy κ     3"));
        assert!(text.contains("bipartite        false"));
        assert!(text.contains("Brooks bound     3"));
    }

    #[test]
    fn chromatic_switch_works_on_small_graphs() {
        let text = run_str("info --family complete --n 5 --chromatic").unwrap();
        assert!(text.contains("chromatic χ      5"), "{text}");
    }

    #[test]
    fn chromatic_switch_guards_large_graphs() {
        let e = run_str("info --family gnp --n 500 --chromatic").unwrap_err();
        assert!(e.to_string().contains("limited"));
    }

    #[test]
    fn bipartite_detection() {
        let text = run_str("info --family bipartite --n 20 --delta 5").unwrap();
        assert!(text.contains("bipartite        true"), "{text}");
    }
}
