//! Subcommand dispatch.

pub mod attack;
pub mod color;
pub mod gen;
pub mod info;
pub mod migrate;
pub mod serve;
pub mod shard;
pub mod verify;

use crate::args::{err, Args, CliError};
use std::io::Write;

/// Boolean switches, per subcommand (everything else takes a value).
fn switches(command_hint: Option<&str>) -> &'static [&'static str] {
    match command_hint {
        Some("info") => &["chromatic"],
        Some("serve") => &["reactor", "per-conn", "shared-sessions"],
        Some("shard") => &["smoke", "in-process"],
        _ => &[],
    }
}

/// The top-level help text.
pub const HELP: &str = "\
streamcolor — streaming graph coloring (PODS 2023 reproduction)

USAGE:
    streamcolor <subcommand> [--flag value …]

SUBCOMMANDS:
    gen      generate a workload graph (--family, --n, --delta, --p, --seed;
             --format edgelist|dimacs; --out FILE)
    color    run an algorithm on a graph (--algo, --input FILE or --family …;
             --order, --beta, --alg-seed, --out-coloring FILE)
    info     structural report (--input FILE or --family …; --chromatic)
    verify   streaming coloring verification (--input FILE, --coloring FILE;
             --sample K switches to the (1±ε) estimator)
    attack   adaptive-adversary game (--victim, --adversary, --n, --delta,
             --rounds, --seed; --lists overrides ps list sizing)
    shard    run a scenario grid sharded across workers and write the
             merged summary JSON (--smoke or --spec FILE; --workers N,
             --out FILE, --worker-bin PATH, --worker-threads K;
             --in-process runs the single-process reference;
             --transport process|stdio|tcp dispatches over the cluster
             layer instead — stragglers/dead workers are re-dispatched
             [--timeout-ms N], tcp dials a --connect ADDR listener)
    serve    host named coloring sessions behind the flat-JSON line
             protocol: one command object per stdin line, one canonical
             response per stdout line (--script FILE executes a command
             file, where --threads N fans independent sessions out;
             --listen ADDR serves over TCP: --per-conn [default] runs
             one fresh service per connection thread, --reactor
             multiplexes every connection onto one event loop sharing
             one service [--idle-ms N evicts idle connections;
             --max-sessions N evicts least-recently-used sessions at
             the cap, --snapshot-dir DIR upgrades that to evict-to-disk
             with transparent restore, --shared-sessions makes session
             names host-global and sessions outlive connections]
             [--accept N]; --max-sessions N bounds open sessions; any
             serve endpoint doubles as a cluster shard worker via the
             run_job command; sessions can be checkpointed with the
             snapshot command and revived with restore)
    migrate  move one live session between two serve endpoints
             (--session NAME, --from ADDR, --to ADDR [HOST:PORT or
             ssh:DEST], --timeout-ms N): snapshot on the source,
             restore on the target, then drop the source's copy —
             never destructive on failure
    help     this message

ALGORITHMS (--algo):   det batch robust auto rand-efficient cgs22 bg18 bcg20 ps greedy brooks
VICTIMS (--victim):    robust rand-efficient cgs22 ps bg18
ADVERSARIES:           mono random clique buffer level
FAMILIES (--family):   gnp exact pa cycle path complete star clique-union bipartite petersen circulant
";

/// Parses tokens and dispatches to a subcommand, writing human-readable
/// output to `out`. Returns an error with a user-facing message on any
/// failure.
pub fn dispatch(tokens: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let hint = tokens.first().map(String::as_str);
    let args = Args::parse(tokens, switches(hint))?;
    match args.command.as_str() {
        "gen" => gen::run(&args, out),
        "color" => color::run(&args, out),
        "info" => info::run(&args, out),
        "verify" => verify::run(&args, out),
        "attack" => attack::run(&args, out),
        "shard" => shard::run(&args, out),
        "serve" => serve::run(&args, out),
        "migrate" => migrate::run(&args, out),
        "help" | "--help" | "-h" => out.write_all(HELP.as_bytes()).map_err(|e| err(e.to_string())),
        other => Err(err(format!("unknown subcommand {other:?}; try `streamcolor help`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        dispatch(&toks, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_lists_all_subcommands() {
        let text = run_str("help").unwrap();
        for cmd in ["gen", "color", "info", "attack"] {
            assert!(text.contains(cmd), "help misses {cmd}");
        }
    }

    #[test]
    fn unknown_subcommand_is_friendly() {
        let e = run_str("paint").unwrap_err();
        assert!(e.to_string().contains("unknown subcommand"));
    }

    #[test]
    fn end_to_end_pipeline() {
        // gen to a file, then info + color + verify from that file.
        let dir = std::env::temp_dir().join("streamcolor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipeline.col");
        run_str(&format!(
            "gen --family exact --n 60 --delta 6 --format dimacs --out {}",
            path.display()
        ))
        .unwrap();
        let info = run_str(&format!("info --input {}", path.display())).unwrap();
        assert!(info.contains("max degree ∆     6"), "{info}");
        let cpath = dir.join("pipeline-coloring.txt");
        let color = run_str(&format!(
            "color --algo det --input {} --out-coloring {}",
            path.display(),
            cpath.display()
        ))
        .unwrap();
        assert!(color.contains("proper         true"), "{color}");
        let verify =
            run_str(&format!("verify --input {} --coloring {}", path.display(), cpath.display()))
                .unwrap();
        assert!(verify.contains("proper             true"), "{verify}");
        assert!(verify.contains("conflicts          0"), "{verify}");
    }
}
