//! `streamcolor attack` — run the adaptive-adversary game against a
//! chosen victim and report survival.
//!
//! The flags parse into a declarative [`AttackScenario`] refereed by
//! `sc-engine`'s [`Runner`] (which routes the per-round prefix queries
//! through the stream engine's checkpoint API). `--trials N` repeats the
//! game across independently seeded parties in parallel.

use crate::args::{err, Args, CliError};
use sc_engine::{AdversarySpec, AttackScenario, ColorerSpec, Runner};
use std::io::Write;

/// Victims selectable via `--victim`.
pub const VICTIMS: &str = "robust | rand-efficient | cgs22 | ps | bg18";
/// Adversaries selectable via `--adversary`.
pub const ADVERSARIES: &str = "mono | random | clique | buffer | level";

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let n: usize = args.parse_or("n", 100)?;
    let delta: usize = args.parse_or("delta", 10)?;
    let rounds: usize = args.parse_or("rounds", n * delta / 2)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let trials: usize = args.parse_or("trials", 1)?;
    let victim = args.optional("victim").unwrap_or("robust").to_string();
    let adversary = args.optional("adversary").unwrap_or("mono").to_string();
    let lists: Option<usize> = match args.optional("lists") {
        None => None,
        Some(raw) => {
            Some(raw.parse().map_err(|_| err(format!("flag --lists: cannot parse {raw:?}")))?)
        }
    };
    args.reject_unknown()?;

    let scenario =
        AttackScenario::new(parse_victim(&victim, lists)?, parse_adversary(&adversary)?, n, delta)
            .with_rounds(rounds)
            .with_seed(seed);

    let runner = Runner::default();
    let w = |o: &mut dyn Write, k: &str, v: &dyn std::fmt::Display| {
        writeln!(o, "{k:<18} {v}").map_err(|e| err(e.to_string()))
    };
    if trials <= 1 {
        let r = runner.run_attack(&scenario);
        w(out, "victim", &victim)?;
        w(out, "adversary", &adversary)?;
        w(out, "rounds played", &r.rounds)?;
        w(out, "final edges", &r.final_graph.m())?;
        w(out, "final max degree", &r.final_graph.max_degree())?;
        w(out, "max colors seen", &r.max_colors)?;
        w(out, "improper outputs", &r.improper_outputs)?;
        match r.first_failure_round {
            Some(round) => w(out, "verdict", &format!("BROKEN at round {round}"))?,
            None => w(out, "verdict", &"survived")?,
        }
    } else {
        let s = runner.run_attack_trials(&scenario, trials);
        w(out, "victim", &victim)?;
        w(out, "adversary", &adversary)?;
        w(out, "trials", &s.trials)?;
        w(out, "broken trials", &s.broken)?;
        w(out, "break rate", &format!("{:.2}", s.break_rate()))?;
        match s.median_failure_round() {
            Some(round) => w(out, "median failure", &round)?,
            None => w(out, "median failure", &"—")?,
        }
        w(out, "max colors seen", &s.max_colors)?;
        let verdict = if s.broken == 0 { "survived all trials" } else { "BROKEN" };
        w(out, "verdict", &verdict)?;
    }
    Ok(())
}

fn parse_victim(name: &str, lists: Option<usize>) -> Result<ColorerSpec, CliError> {
    Ok(match name {
        "robust" => ColorerSpec::Robust { beta: None },
        "rand-efficient" => ColorerSpec::RandEfficient,
        "cgs22" => ColorerSpec::Cgs22,
        // `--lists` overrides the Θ(log n) theory sizing — handy for
        // demonstrating the break threshold.
        "ps" => ColorerSpec::PaletteSparsification { lists },
        "bg18" => ColorerSpec::Bg18 { buckets: None },
        other => return Err(err(format!("unknown --victim {other:?}; one of: {VICTIMS}"))),
    })
}

fn parse_adversary(name: &str) -> Result<AdversarySpec, CliError> {
    Ok(match name {
        "mono" => AdversarySpec::Monochromatic,
        "random" => AdversarySpec::Random,
        "clique" => AdversarySpec::CliqueBuilder,
        "buffer" => AdversarySpec::BufferBoundary { buffer: None },
        "level" => AdversarySpec::LevelBoundary,
        other => return Err(err(format!("unknown --adversary {other:?}; one of: {ADVERSARIES}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn robust_victims_survive() {
        for victim in ["robust", "rand-efficient", "cgs22"] {
            let text = run_str(&format!(
                "attack --victim {victim} --adversary mono --n 50 --delta 6 --rounds 120"
            ))
            .unwrap();
            assert!(text.contains("survived"), "victim {victim}: {text}");
        }
    }

    #[test]
    fn every_adversary_is_selectable() {
        for adv in ["mono", "random", "clique", "buffer", "level"] {
            let text = run_str(&format!(
                "attack --victim robust --adversary {adv} --n 40 --delta 5 --rounds 60"
            ))
            .unwrap();
            assert!(text.contains("rounds played"), "adversary {adv}: {text}");
        }
    }

    #[test]
    fn non_robust_victim_can_break() {
        // Small sampled lists on palette sparsification: the mono attack
        // breaks it within the budget for at least one seed.
        let mut broke = false;
        for seed in 0..6u64 {
            let text = run_str(&format!(
                "attack --victim ps --lists 4 --adversary mono --n 50 --delta 12 \
                 --rounds 300 --seed {seed}"
            ))
            .unwrap();
            if text.contains("BROKEN") {
                broke = true;
                break;
            }
        }
        assert!(broke, "palette sparsification should break under the feedback attack");
    }

    #[test]
    fn multi_trial_sweeps_aggregate() {
        let text = run_str(
            "attack --victim ps --lists 3 --adversary mono --n 50 --delta 12 \
             --rounds 400 --trials 4 --seed 70",
        )
        .unwrap();
        assert!(text.contains("trials             4"), "{text}");
        assert!(text.contains("break rate"), "{text}");
    }

    #[test]
    fn unknown_names_error() {
        assert!(run_str("attack --victim nope").is_err());
        assert!(run_str("attack --adversary nope").is_err());
        assert!(run_str("attack --bogus 1").is_err());
    }
}
