//! `streamcolor attack` — run the adaptive-adversary game against a
//! chosen victim and report survival.

use crate::args::{err, Args, CliError};
use sc_adversary::{
    run_game, Adversary, BufferBoundaryAttacker, CliqueBuilder, GameReport,
    LevelBoundaryAttacker, MonochromaticAttacker, RandomAdversary,
};
use sc_stream::StreamingColorer;
use streamcolor::{
    Bg18Colorer, Cgs22Colorer, PaletteSparsification, RandEfficientColorer, RobustColorer,
};
use std::io::Write;

/// Victims selectable via `--victim`.
pub const VICTIMS: &str = "robust | rand-efficient | cgs22 | ps | bg18";
/// Adversaries selectable via `--adversary`.
pub const ADVERSARIES: &str = "mono | random | clique | buffer | level";

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let n: usize = args.parse_or("n", 100)?;
    let delta: usize = args.parse_or("delta", 10)?;
    let rounds: usize = args.parse_or("rounds", n * delta / 2)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let victim = args.optional("victim").unwrap_or("robust").to_string();
    let adversary = args.optional("adversary").unwrap_or("mono").to_string();
    let lists: Option<usize> = match args.optional("lists") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| err(format!("flag --lists: cannot parse {raw:?}")))?,
        ),
    };
    args.reject_unknown()?;

    let mut colorer = make_victim(&victim, n, delta, seed, lists)?;
    let mut attacker = make_adversary(&adversary, n, delta, seed ^ 0xA77AC)?;
    let report = run_game(colorer.as_mut(), attacker.as_mut(), n, rounds);
    print_report(out, &victim, &adversary, &report)?;
    Ok(())
}

fn make_victim(
    name: &str,
    n: usize,
    delta: usize,
    seed: u64,
    lists: Option<usize>,
) -> Result<Box<dyn StreamingColorer>, CliError> {
    Ok(match name {
        "robust" => Box::new(RobustColorer::new(n, delta, seed)),
        "rand-efficient" => Box::new(RandEfficientColorer::new(n, delta, seed)),
        "cgs22" => Box::new(Cgs22Colorer::new(n, delta, seed)),
        // `--lists` overrides the Θ(log n) theory sizing — handy for
        // demonstrating the break threshold.
        "ps" => match lists {
            Some(k) => Box::new(PaletteSparsification::new(n, delta, k, seed)),
            None => Box::new(PaletteSparsification::with_theory_lists(n, delta, seed)),
        },
        "bg18" => Box::new(Bg18Colorer::new(n, delta as u64, seed)),
        other => return Err(err(format!("unknown --victim {other:?}; one of: {VICTIMS}"))),
    })
}

fn make_adversary(
    name: &str,
    n: usize,
    delta: usize,
    seed: u64,
) -> Result<Box<dyn Adversary>, CliError> {
    Ok(match name {
        "mono" => Box::new(MonochromaticAttacker::new(n, delta, seed)),
        "random" => Box::new(RandomAdversary::new(n, delta, seed)),
        "clique" => Box::new(CliqueBuilder::new(n, delta)),
        "buffer" => Box::new(BufferBoundaryAttacker::new(n, delta, n, seed)),
        "level" => Box::new(LevelBoundaryAttacker::new(n, delta, seed)),
        other => {
            return Err(err(format!(
                "unknown --adversary {other:?}; one of: {ADVERSARIES}"
            )))
        }
    })
}

fn print_report(
    out: &mut dyn Write,
    victim: &str,
    adversary: &str,
    r: &GameReport,
) -> Result<(), CliError> {
    let w = |o: &mut dyn Write, k: &str, v: &dyn std::fmt::Display| {
        writeln!(o, "{k:<18} {v}").map_err(|e| err(e.to_string()))
    };
    w(out, "victim", &victim)?;
    w(out, "adversary", &adversary)?;
    w(out, "rounds played", &r.rounds)?;
    w(out, "final edges", &r.final_graph.m())?;
    w(out, "final max degree", &r.final_graph.max_degree())?;
    w(out, "max colors seen", &r.max_colors)?;
    w(out, "improper outputs", &r.improper_outputs)?;
    match r.first_failure_round {
        Some(round) => w(out, "verdict", &format!("BROKEN at round {round}"))?,
        None => w(out, "verdict", &"survived")?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn robust_victims_survive() {
        for victim in ["robust", "rand-efficient", "cgs22"] {
            let text = run_str(&format!(
                "attack --victim {victim} --adversary mono --n 50 --delta 6 --rounds 120"
            ))
            .unwrap();
            assert!(text.contains("survived"), "victim {victim}: {text}");
        }
    }

    #[test]
    fn every_adversary_is_selectable() {
        for adv in ["mono", "random", "clique", "buffer", "level"] {
            let text = run_str(&format!(
                "attack --victim robust --adversary {adv} --n 40 --delta 5 --rounds 60"
            ))
            .unwrap();
            assert!(text.contains("rounds played"), "adversary {adv}: {text}");
        }
    }

    #[test]
    fn non_robust_victim_can_break() {
        // Small sampled lists on palette sparsification: the mono attack
        // breaks it within the budget for at least one seed.
        let mut broke = false;
        for seed in 0..6u64 {
            let text = run_str(&format!(
                "attack --victim ps --lists 4 --adversary mono --n 50 --delta 12 \
                 --rounds 300 --seed {seed}"
            ))
            .unwrap();
            if text.contains("BROKEN") {
                broke = true;
                break;
            }
        }
        assert!(broke, "palette sparsification should break under the feedback attack");
    }

    #[test]
    fn unknown_names_error() {
        assert!(run_str("attack --victim nope").is_err());
        assert!(run_str("attack --adversary nope").is_err());
        assert!(run_str("attack --bogus 1").is_err());
    }
}
