//! `streamcolor gen` — generate a workload graph and write it to a file
//! or stdout.

use crate::args::{err, Args, CliError};
use crate::workload;
use sc_graph::io;
use std::io::Write;

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let g = workload::acquire(args)?;
    workload::mark_flags_consumed(args);
    let format = args.optional("format").unwrap_or("edgelist");
    let dest = args.optional("out").map(String::from);
    args.reject_unknown()?;

    let mut buf = Vec::new();
    match format {
        "edgelist" => io::write_edge_list(&g, &mut buf),
        "dimacs" => io::write_dimacs(&g, &mut buf),
        other => return Err(err(format!("unknown --format {other:?} (edgelist | dimacs)"))),
    }
    .map_err(|e| err(format!("write failed: {e}")))?;

    match dest {
        Some(path) => {
            std::fs::write(&path, &buf).map_err(|e| err(format!("cannot write {path}: {e}")))?;
            writeln!(out, "wrote {} vertices / {} edges to {path}", g.n(), g.m())
                .map_err(|e| err(e.to_string()))?;
        }
        None => out.write_all(&buf).map_err(|e| err(e.to_string()))?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn writes_edge_list_to_stdout() {
        let text = run_str("gen --family cycle --n 5").unwrap();
        assert!(text.starts_with("n 5\n"), "{text}");
        assert_eq!(text.lines().count(), 6); // header + 5 edges
    }

    #[test]
    fn writes_dimacs() {
        let text = run_str("gen --family complete --n 4 --format dimacs").unwrap();
        assert!(text.contains("p edge 4 6"), "{text}");
    }

    #[test]
    fn rejects_unknown_format_and_flags() {
        assert!(run_str("gen --format yaml").is_err());
        assert!(run_str("gen --bogus 3").is_err());
    }

    #[test]
    fn writes_to_file() {
        let dir = std::env::temp_dir().join("streamcolor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen-out.txt");
        let msg = run_str(&format!("gen --family star --n 6 --out {}", path.display())).unwrap();
        assert!(msg.contains("6 vertices / 5 edges"), "{msg}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("n 6\n"));
    }
}
