//! `streamcolor serve` — host many named coloring sessions behind the
//! flat-JSON line protocol.
//!
//! Reads one command object per line, writes one canonical response
//! object per line (see `sc_service::service` for the protocol):
//!
//! ```text
//! $ streamcolor serve <<'EOF'
//! {"cmd":"open","session":"a","n":100,"delta":8,"colorer":"robust","seed":7}
//! {"cmd":"push_batch","session":"a","edges":"0-1 1-2 2-3"}
//! {"cmd":"observe","session":"a"}
//! {"cmd":"finish","session":"a"}
//! EOF
//! ```
//!
//! With no `--script`, commands stream from stdin and each response is
//! written (and flushed) as soon as its command arrives — an
//! interactive client, like the adversary game, can react to every
//! answer. `--script FILE` executes a whole command file instead,
//! fanning independent sessions out across `--threads N` workers;
//! responses come back in input order and are **byte-identical for
//! every thread count** (CI's `service-smoke` job diffs them against a
//! committed golden file).
//!
//! `--listen ADDR` serves over a TCP socket instead of stdio, in one of
//! two modes:
//!
//! * `--per-conn` (the default): every accepted connection gets its own
//!   fresh `Service` on its own thread (`sc_cluster::TcpServer`) —
//!   tenants on different connections share nothing.
//! * `--reactor`: every connection is multiplexed onto **one** event
//!   loop over one shared `Service` (`sc_cluster::Reactor`) — sessions
//!   stay owner-scoped per connection, so the responses are
//!   byte-identical to `--per-conn` for any client, while thousands of
//!   idle connections cost one thread. `--idle-ms N` evicts connections
//!   silent for N milliseconds; with `--max-sessions N` the cap evicts
//!   the least-recently-used session (an error response on its owner's
//!   next command) instead of rejecting the `open`. `--snapshot-dir DIR`
//!   upgrades that eviction to evict-to-disk: the victim's state is
//!   written as a snapshot file and its owner's next command
//!   transparently restores it, replaying byte-identically instead of
//!   erroring. `--shared-sessions` makes session names host-global (one
//!   shared owner for every connection) and lets sessions outlive their
//!   opening connection — the mode `streamcolor migrate` needs to
//!   address sessions other clients opened.
//!
//! Either endpoint is what `streamcolor shard --transport tcp` dials —
//! any serve process doubles as a remote shard worker via the protocol's
//! `run_job` command. `--max-sessions N` bounds the open sessions per
//! service (per connection under `--per-conn`, host-wide under
//! `--reactor`), turning a rogue client's unbounded `open`s into error
//! responses (or LRU evictions); `--accept N` closes the listener after
//! N connections (demos and tests — default is to accept forever).

use crate::args::{err, Args, CliError};
use sc_cluster::{Reactor, TcpServer};
use sc_service::Service;
use std::io::Write;
use std::time::Duration;

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let threads_given = args.optional("threads").is_some();
    let threads: usize = args.parse_or("threads", 1)?;
    let script = args.optional("script").map(String::from);
    let listen = args.optional("listen").map(String::from);
    let max_sessions: Option<usize> = args.parse_optional("max-sessions")?;
    let accept: Option<usize> = args.parse_optional("accept")?;
    let reactor = args.switch("reactor");
    let per_conn = args.switch("per-conn");
    let idle_ms: Option<u64> = args.parse_optional("idle-ms")?;
    let snapshot_dir = args.optional("snapshot-dir").map(String::from);
    let shared_sessions = args.switch("shared-sessions");
    args.reject_unknown()?;
    if threads == 0 {
        return Err(err("--threads must be at least 1"));
    }
    if script.is_some() && listen.is_some() {
        return Err(err("--script and --listen are mutually exclusive"));
    }
    // Stdin and socket modes answer line-at-a-time (the client may react
    // to every response), so there is nothing to fan out — reject the
    // flag rather than silently ignoring it.
    if threads_given && script.is_none() {
        return Err(err("--threads applies to --script mode only (interactive serving answers \
             one command at a time)"));
    }
    if accept.is_some() && listen.is_none() {
        return Err(err("--accept applies to --listen mode only"));
    }
    if accept == Some(0) {
        return Err(err("--accept must be at least 1"));
    }
    // A zero cap could never host a session — same spirit as --accept 0.
    if max_sessions == Some(0) {
        return Err(err("--max-sessions must be at least 1"));
    }
    if reactor && per_conn {
        return Err(err("--reactor and --per-conn are mutually exclusive"));
    }
    if (reactor || per_conn) && listen.is_none() {
        return Err(err("--reactor/--per-conn apply to --listen mode only"));
    }
    if idle_ms.is_some() && !reactor {
        return Err(err("--idle-ms applies to --reactor mode only"));
    }
    if idle_ms == Some(0) {
        return Err(err("--idle-ms must be at least 1"));
    }
    // Evict-to-disk is a property of the shared-service reactor: under
    // --per-conn each connection's service dies with the connection, so
    // a snapshot dir there would silently never restore anything.
    if snapshot_dir.is_some() && !reactor {
        return Err(err("--snapshot-dir applies to --reactor mode only"));
    }
    // Only the reactor shares one service across connections; per-conn
    // services have nothing to share.
    if shared_sessions && !reactor {
        return Err(err("--shared-sessions applies to --reactor mode only"));
    }

    if let Some(addr) = listen {
        if reactor {
            let mut server =
                Reactor::bind(&addr).map_err(|e| err(format!("cannot listen on {addr}: {e}")))?;
            if let Some(limit) = max_sessions {
                server = server.with_max_sessions(limit);
            }
            if let Some(ms) = idle_ms {
                server = server.with_idle_timeout(Duration::from_millis(ms));
            }
            if let Some(dir) = snapshot_dir {
                server = server.with_snapshot_dir(std::path::PathBuf::from(dir));
            }
            if shared_sessions {
                server = server.with_shared_sessions();
            }
            let local = server.local_addr().map_err(|e| err(e.to_string()))?;
            writeln!(out, "listening on {local}")
                .and_then(|()| out.flush())
                .map_err(|e| err(e.to_string()))?;
            return server.run(accept).map_err(|e| err(e.to_string()));
        }
        let mut server =
            TcpServer::bind(&addr).map_err(|e| err(format!("cannot listen on {addr}: {e}")))?;
        if let Some(limit) = max_sessions {
            server = server.with_max_sessions(limit);
        }
        let local = server.local_addr().map_err(|e| err(e.to_string()))?;
        // Announce the bound address (port 0 resolves here) so scripts
        // can wait for readiness before dialing.
        writeln!(out, "listening on {local}")
            .and_then(|()| out.flush())
            .map_err(|e| err(e.to_string()))?;
        return server.run(accept).map_err(|e| err(e.to_string()));
    }

    let mut service = Service::with_threads(threads);
    if let Some(limit) = max_sessions {
        service = service.with_max_sessions(limit);
    }
    match script {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| err(format!("cannot read script {path:?}: {e}")))?;
            out.write_all(service.run_script(&text).as_bytes()).map_err(|e| err(e.to_string()))?;
        }
        None => {
            let stdin = std::io::stdin();
            service.serve(stdin.lock(), out).map_err(|e| err(e.to_string()))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_script_file(script: &str, extra: &str) -> Result<String, CliError> {
        let dir = std::env::temp_dir().join("streamcolor-serve-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("script-{}.commands", std::process::id()));
        std::fs::write(&path, script).unwrap();
        let toks: Vec<String> = format!("serve --script {} {extra}", path.display())
            .split_whitespace()
            .map(String::from)
            .collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    const SCRIPT: &str = r#"# two tenants
{"cmd":"open","session":"a","n":12,"delta":3,"colorer":"store-all","seed":1}
{"cmd":"open","session":"b","n":12,"delta":3,"colorer":"trivial","seed":2}
{"cmd":"push_batch","session":"a","edges":"0-1 1-2 2-3"}
{"cmd":"push_batch","session":"b","edges":"0-1 1-2 2-3"}
{"cmd":"observe","session":"a"}
{"cmd":"observe","session":"b"}
{"cmd":"finish","session":"a"}
{"cmd":"finish","session":"b"}
"#;

    #[test]
    fn script_mode_emits_one_response_per_command() {
        let text = run_script_file(SCRIPT, "").unwrap();
        assert_eq!(text.lines().count(), 8, "{text}");
        assert!(text.lines().all(|l| l.contains("\"ok\":true")), "{text}");
    }

    #[test]
    fn script_output_is_thread_count_invariant() {
        let one = run_script_file(SCRIPT, "--threads 1").unwrap();
        let four = run_script_file(SCRIPT, "--threads 4").unwrap();
        assert_eq!(one, four, "thread count leaked into protocol output");
    }

    #[test]
    fn max_sessions_bounds_script_tenants() {
        let text = run_script_file(SCRIPT, "--max-sessions 1").unwrap();
        assert_eq!(text.matches("session limit reached (1 open)").count(), 1, "{text}");
        // Session b's open is the rejected one; its later commands fail
        // with unknown session — all as responses, the run completes.
        assert_eq!(text.lines().count(), 8, "{text}");
    }

    #[test]
    fn flag_grammar_is_validated() {
        assert!(run_script_file(SCRIPT, "--threads 0").is_err());
        assert!(run_script_file(SCRIPT, "--bogus 1").is_err());
        assert!(run_script_file(SCRIPT, "--listen 127.0.0.1:0").is_err(), "script+listen");
        assert!(run_script_file(SCRIPT, "--max-sessions x").is_err());
        let toks: Vec<String> = ["serve", "--script", "/nonexistent/x.commands"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&toks, &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        // --threads is script-mode-only: stdin serving is interactive,
        // so the flag would be a silent no-op — reject it instead.
        let toks: Vec<String> = ["serve", "--threads", "4"].iter().map(|s| s.to_string()).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let e = run(&args, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("--script mode only"), "{e}");
        // --accept needs --listen; zero connections make no sense.
        for bad in [vec!["serve", "--accept", "2"], vec!["serve", "--listen", "x", "--accept", "0"]]
        {
            let toks: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let args = Args::parse(&toks, &[]).unwrap();
            assert!(run(&args, &mut Vec::new()).is_err(), "{toks:?}");
        }
        // A zero session cap could never host anything — friendly error,
        // exactly like --accept 0.
        let toks: Vec<String> = ["serve", "--listen", "127.0.0.1:0", "--max-sessions", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let e = run(&args, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("--max-sessions must be at least 1"), "{e}");
        // Reactor-flag grammar: the modes are exclusive, listen-only,
        // and --idle-ms belongs to the reactor.
        const SERVE_SWITCHES: &[&str] = &["reactor", "per-conn", "shared-sessions"];
        for (bad, want) in [
            (vec!["serve", "--listen", "127.0.0.1:0", "--reactor", "--per-conn"], "exclusive"),
            (vec!["serve", "--reactor"], "--listen mode only"),
            (vec!["serve", "--listen", "127.0.0.1:0", "--idle-ms", "5"], "--reactor mode only"),
            (vec!["serve", "--listen", "127.0.0.1:0", "--reactor", "--idle-ms", "0"], "at least 1"),
            (
                vec!["serve", "--listen", "127.0.0.1:0", "--snapshot-dir", "/tmp/x"],
                "--reactor mode only",
            ),
            (vec!["serve", "--listen", "127.0.0.1:0", "--shared-sessions"], "--reactor mode only"),
        ] {
            let toks: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            let args = Args::parse(&toks, SERVE_SWITCHES).unwrap();
            let e = run(&args, &mut Vec::new()).unwrap_err();
            assert!(e.to_string().contains(want), "{bad:?}: {e}");
        }
        // An unbindable listen address is a friendly error.
        let toks: Vec<String> =
            ["serve", "--listen", "256.0.0.1:1"].iter().map(|s| s.to_string()).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let e = run(&args, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("cannot listen"), "{e}");
    }

    #[test]
    fn reactor_mode_serves_protocol_lines_over_tcp() {
        use sc_cluster::{Tcp, Transport as _};
        // Same drive as the per-connection test below, but through the
        // event-loop server the --reactor flag selects.
        let mut server = Reactor::bind("127.0.0.1:0").unwrap().with_max_sessions(2);
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(1)).unwrap());
        let mut t = Tcp::connect(&addr).unwrap();
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        let response = t.recv(std::time::Duration::from_secs(10)).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        t.send(r#"{"cmd":"host_stats","session":"probe"}"#).unwrap();
        let stats = t.recv(std::time::Duration::from_secs(10)).unwrap();
        assert!(stats.contains("\"connections_accepted\":1"), "{stats}");
        drop(t);
        handle.join().unwrap();
    }

    #[test]
    fn listen_mode_serves_protocol_lines_over_tcp() {
        use sc_cluster::{Tcp, Transport as _};
        // Bind on an ephemeral port via the library (the CLI path prints
        // the resolved address; here we drive the same server directly).
        let server = TcpServer::bind("127.0.0.1:0").unwrap().with_max_sessions(2);
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run(Some(1)).unwrap());
        let mut t = Tcp::connect(&addr).unwrap();
        t.send(r#"{"cmd":"open","session":"a","n":10,"colorer":"trivial"}"#).unwrap();
        let response = t.recv(std::time::Duration::from_secs(10)).unwrap();
        assert!(response.contains("\"ok\":true"), "{response}");
        drop(t);
        handle.join().unwrap();
    }
}
