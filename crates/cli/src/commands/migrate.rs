//! `streamcolor migrate` — move one named session between two serve
//! endpoints, live.
//!
//! ```text
//! $ streamcolor migrate --session a --from 127.0.0.1:7001 --to 127.0.0.1:7002
//! migrated session "a": 214 snapshot bytes, source dropped
//! ```
//!
//! The move is copy-then-drop (`sc_cluster::migrate_session`): snapshot
//! on the source (non-destructive), restore on the target, and only once
//! the target holds the session finish the source's copy. Any failure
//! leaves at least one live copy — a dead target leaves the source
//! untouched; a source that dies the instant the snapshot escapes still
//! yields a working target (reported as `source NOT dropped`). From the
//! hand-off point on, the target answers byte-identically to the
//! uninterrupted source (the persistence law), so clients that re-dial
//! the target cannot tell the migration happened.
//!
//! Endpoints are `HOST:PORT` (dialed over TCP) or `ssh:DEST` (a
//! `streamcolor serve` spawned over ssh, as in `shard --transport`).
//! `--timeout-ms N` bounds each protocol exchange (default 10000).

use crate::args::{err, Args, CliError};
use sc_cluster::{Ssh, Tcp, Transport};
use std::io::Write;
use std::time::Duration;

/// Dials one endpoint spec: `ssh:DEST` spawns a remote serve process
/// over ssh, anything else is a TCP address.
fn dial(spec: &str, role: &str) -> Result<Box<dyn Transport>, CliError> {
    if let Some(dest) = spec.strip_prefix("ssh:") {
        return Ok(Box::new(
            Ssh::connect(dest).map_err(|e| err(format!("cannot dial {role} {spec:?}: {e}")))?,
        ));
    }
    Ok(Box::new(Tcp::connect(spec).map_err(|e| err(format!("cannot dial {role} {spec:?}: {e}")))?))
}

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let session = args.required("session")?.to_string();
    let from = args.required("from")?.to_string();
    let to = args.required("to")?.to_string();
    let timeout_ms: u64 = args.parse_or("timeout-ms", 10_000)?;
    args.reject_unknown()?;
    if timeout_ms == 0 {
        return Err(err("--timeout-ms must be at least 1"));
    }
    if from == to {
        return Err(err("--from and --to name the same endpoint; nothing to migrate"));
    }

    let mut source = dial(&from, "--from")?;
    let mut target = dial(&to, "--to")?;
    let report = sc_cluster::migrate_session(
        source.as_mut(),
        target.as_mut(),
        &session,
        Duration::from_millis(timeout_ms),
    )
    .map_err(err)?;

    writeln!(
        out,
        "migrated session {:?}: {} snapshot bytes, source {}",
        report.name,
        report.snapshot_bytes,
        if report.source_dropped { "dropped" } else { "NOT dropped (endpoint unreachable)" }
    )
    .map_err(|e| err(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cluster::Reactor;

    fn run_toks(toks: &[&str]) -> Result<String, CliError> {
        let toks: Vec<String> = toks.iter().map(|s| s.to_string()).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn flag_grammar_is_validated() {
        for bad in [
            vec!["migrate", "--from", "a:1", "--to", "b:1"], // missing --session
            vec!["migrate", "--session", "s", "--to", "b:1"], // missing --from
            vec!["migrate", "--session", "s", "--from", "a:1"], // missing --to
            vec!["migrate", "--session", "s", "--from", "a:1", "--to", "a:1"], // same endpoint
            vec!["migrate", "--session", "s", "--from", "a:1", "--to", "b:1", "--timeout-ms", "0"],
            vec!["migrate", "--session", "s", "--from", "a:1", "--to", "b:1", "--bogus", "1"],
        ] {
            assert!(run_toks(&bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unreachable_endpoint_is_a_friendly_error() {
        // 256.0.0.1 is not a valid IPv4 address, so the dial fails fast.
        let e = run_toks(&["migrate", "--session", "s", "--from", "256.0.0.1:1", "--to", "b:1"])
            .unwrap_err();
        assert!(e.to_string().contains("cannot dial --from"), "{e}");
    }

    #[test]
    fn migrates_a_session_between_two_shared_reactors() {
        // The full CLI story: a client opens a session on listener A
        // and disconnects; `streamcolor migrate` dials in fresh, moves
        // it to listener B; another fresh client finds it on B. This
        // needs --shared-sessions (sessions outlive connections and
        // names are host-global) — exactly what the serve flag enables.
        let mut source = Reactor::bind("127.0.0.1:0").unwrap().with_shared_sessions();
        let from_addr = source.local_addr().unwrap().to_string();
        let mut target = Reactor::bind("127.0.0.1:0").unwrap().with_shared_sessions();
        let to_addr = target.local_addr().unwrap().to_string();
        let s_handle = std::thread::spawn(move || source.run(Some(2)).unwrap());
        let t_handle = std::thread::spawn(move || target.run(Some(2)).unwrap());

        // Seeding client: open + push, then hang up.
        let mut seed = Tcp::connect(&from_addr).unwrap();
        for line in [
            r#"{"cmd":"open","session":"m","n":20,"delta":4,"colorer":"robust","seed":3}"#,
            r#"{"cmd":"push_batch","session":"m","edges":"0-1 1-2 2-3"}"#,
        ] {
            seed.send(line).unwrap();
            let response = seed.recv(Duration::from_secs(10)).unwrap();
            assert!(response.contains("\"ok\":true"), "{response}");
        }
        drop(seed);

        let text = run_toks(&["migrate", "--session", "m", "--from", &from_addr, "--to", &to_addr])
            .unwrap();
        assert!(text.contains("migrated session \"m\""), "{text}");
        assert!(text.contains("source dropped"), "{text}");

        // A fresh client finds the session on the target, with all its
        // state, and can finish it.
        let mut check = Tcp::connect(&to_addr).unwrap();
        check.send(r#"{"cmd":"stats","session":"m"}"#).unwrap();
        let stats = check.recv(Duration::from_secs(10)).unwrap();
        assert!(stats.contains("\"edges\":3"), "{stats}");
        check.send(r#"{"cmd":"finish","session":"m"}"#).unwrap();
        let finish = check.recv(Duration::from_secs(10)).unwrap();
        assert!(finish.contains("\"ok\":true") && finish.contains("\"coloring\":"), "{finish}");
        drop(check);

        s_handle.join().unwrap();
        t_handle.join().unwrap();
    }
}
