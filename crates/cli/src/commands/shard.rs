//! `streamcolor shard` — run a scenario grid sharded across workers and
//! write the merged summary JSON.
//!
//! Four execution modes over the same spec vocabulary, all merging
//! byte-identically (CI literally `diff`s them):
//!
//! ```text
//! cargo build --release --bin streamcolor --bin shard_worker
//! # single-process reference
//! target/release/streamcolor shard --smoke --in-process --out single.json
//! # PR 3 file-based coordinator: spec files + shard_worker processes
//! target/release/streamcolor shard --smoke --workers 4 --out merged.json
//! # cluster transports: run_job dispatch lines over the service protocol
//! target/release/streamcolor shard --smoke --transport process --workers 4
//! target/release/streamcolor shard --smoke --transport stdio   --workers 4
//! target/release/streamcolor serve --listen 127.0.0.1:7841 &
//! target/release/streamcolor shard --smoke --transport tcp --connect 127.0.0.1:7841 --workers 4
//! ```
//!
//! `--transport` selects an `sc_cluster::TransportSpec`: `process` hosts
//! loopback services in this process (protocol fidelity, no spawn cost),
//! `stdio` spawns `streamcolor serve` children and speaks over their
//! pipes, `tcp` opens `--workers` connections to a `--connect ADDR`
//! listener, and `ssh` starts `--workers` remote serve processes via
//! `ssh USER@HOST[:PATH] serve` (`--connect` names the destination).
//! Cluster modes survive dead workers and stragglers by re-dispatching
//! their slices (`--timeout-ms` sets the straggler deadline); the run
//! report counts any retries. Scheduling knobs: `--dispatch
//! static|stealing` picks fixed partitions vs the work-stealing slice
//! queue (the default), `--speculate-after FRAC` launches a duplicate of
//! a slice held past `FRAC × timeout` on an idle worker (first answer
//! wins — byte-identical either way), and `--skew-ms N` deliberately
//! slows the last worker's answers (the reproducible straggler CI's
//! skewed-fleet smoke run measures scheduling against). `--spec FILE`
//! runs an arbitrary `ShardJob::encode` spec file instead of the
//! built-in `--smoke` grid.

use crate::args::{err, Args, CliError};
use sc_cluster::{ClusterCoordinator, TransportSpec};
use sc_engine::shard::{run_in_process, smoke_grid, Coordinator, ShardJob, ShardOutcome};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let workers: usize = args.parse_or("workers", 2)?;
    let threads: usize = args.parse_or("worker-threads", 1)?;
    let smoke = args.switch("smoke");
    let in_process = args.switch("in-process");
    let spec_path = args.optional("spec").map(String::from);
    let out_path = args.optional("out").map(String::from);
    let worker_bin = args.optional("worker-bin").map(PathBuf::from);
    let transport = args.optional("transport").map(String::from);
    let connect = args.optional("connect").map(String::from);
    let timeout_ms: u64 = args.parse_optional("timeout-ms")?.unwrap_or(600_000);
    let timeout_given = args.optional("timeout-ms").is_some();
    let speculate_after: Option<f64> = args.parse_optional("speculate-after")?;
    let skew_ms: Option<u64> = args.parse_optional("skew-ms")?;
    let dispatch = args.optional("dispatch").map(String::from);
    args.reject_unknown()?;
    if workers == 0 {
        return Err(err("--workers must be at least 1 (0 processes cannot run anything)"));
    }
    if threads == 0 {
        return Err(err("--worker-threads must be at least 1"));
    }
    if timeout_ms == 0 {
        return Err(err("--timeout-ms must be at least 1"));
    }
    if timeout_given && transport.is_none() {
        return Err(err(
            "--timeout-ms applies to --transport modes only (the file-based coordinator waits \
             for its workers to exit)",
        ));
    }
    // NaN-safe: `NaN > 0.0` is false, so `--speculate-after nan` lands here too.
    if let Some(fraction) = speculate_after {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(err(format!(
                "--speculate-after must be a fraction of --timeout-ms in (0, 1], got {fraction}"
            )));
        }
    }
    if skew_ms == Some(0) {
        return Err(err("--skew-ms must be at least 1 (omit it for an unskewed fleet)"));
    }
    let static_dispatch = match dispatch.as_deref() {
        None | Some("stealing") => false,
        Some("static") => true,
        Some(other) => {
            return Err(err(format!("unknown --dispatch {other:?} (stealing | static)")))
        }
    };
    if transport.is_none() && (speculate_after.is_some() || skew_ms.is_some() || dispatch.is_some())
    {
        return Err(err(
            "--speculate-after / --skew-ms / --dispatch apply to --transport modes only (the \
             file-based coordinator partitions up front)",
        ));
    }
    if transport.is_some() && in_process {
        return Err(err("--transport and --in-process are mutually exclusive"));
    }
    if transport.is_some() && (worker_bin.is_some() || threads != 1) {
        return Err(err(
            "--worker-bin / --worker-threads apply to the file-based coordinator only \
             (cluster workers are serve processes; see `streamcolor serve`)",
        ));
    }
    if connect.is_some() && !matches!(transport.as_deref(), Some("tcp") | Some("ssh")) {
        return Err(err("--connect applies to --transport tcp and ssh only"));
    }

    let job = match (smoke, spec_path) {
        (true, None) => ShardJob::Grid(smoke_grid()),
        (false, Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| err(format!("cannot read spec {path:?}: {e}")))?;
            ShardJob::decode(&text).map_err(|e| err(format!("spec {path:?}: {e}")))?
        }
        (true, Some(_)) => return Err(err("--smoke and --spec are mutually exclusive")),
        (false, None) => return Err(err("need --smoke or --spec <file>")),
    };

    // `how` describes what actually ran, for the report line.
    let (outcome, how) = if in_process {
        (run_in_process(&job, workers).map_err(err)?, "1 process".to_string())
    } else if let Some(mode) = transport {
        let spec = match mode.as_str() {
            "process" => TransportSpec::InProcess { workers },
            "stdio" => {
                let exe = std::env::current_exe()
                    .map_err(|e| err(format!("cannot locate myself: {e}")))?;
                TransportSpec::ChildStdio {
                    command: vec![exe.to_string_lossy().into_owned(), "serve".into()],
                    workers,
                }
            }
            "tcp" => {
                let addr = connect.ok_or_else(|| err("--transport tcp needs --connect ADDR"))?;
                TransportSpec::Tcp { addr, connections: workers }
            }
            "ssh" => {
                let dest = connect
                    .ok_or_else(|| err("--transport ssh needs --connect USER@HOST[:PATH]"))?;
                TransportSpec::Ssh { dest, connections: workers }
            }
            other => {
                return Err(err(format!(
                    "unknown --transport {other:?} (process | stdio | tcp | ssh)"
                )))
            }
        };
        let mut coordinator =
            ClusterCoordinator::new(spec).with_timeout(Duration::from_millis(timeout_ms));
        if static_dispatch {
            coordinator = coordinator.with_static_dispatch();
        }
        if let Some(fraction) = speculate_after {
            coordinator = coordinator.with_speculation(fraction);
        }
        if let Some(ms) = skew_ms {
            coordinator = coordinator.with_skewed_worker(Duration::from_millis(ms));
        }
        let report = coordinator.run(&job).map_err(err)?;
        let retries = match report.retries {
            0 => String::new(),
            n => format!(", {n} slice(s) re-dispatched"),
        };
        let speculated = match report.speculative {
            0 => String::new(),
            n => format!(", {n} speculated ({} wasted)", report.wasted),
        };
        (report.outcome, format!("{} {mode} worker(s){retries}{speculated}", report.shards))
    } else {
        let mut coordinator =
            Coordinator::new(workers, worker_bin.map_or_else(default_worker_bin, Ok)?);
        coordinator.worker_threads = threads;
        let outcome = coordinator.run(&job).map_err(err)?;
        // The coordinator clamps the worker count to the job size;
        // report what actually ran.
        (outcome, format!("{} worker(s)", workers.clamp(1, job.len().max(1))))
    };

    let json = outcome.encode();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| err(format!("cannot write {path:?}: {e}")))?;
            let what = match &outcome {
                ShardOutcome::Grid(summaries) => format!("{} run summaries", summaries.len()),
                ShardOutcome::Attack(s) => format!("trial summary ({} trials)", s.trials),
            };
            writeln!(out, "{} item(s) across {how} — wrote {what} to {path}", job.len())
                .map_err(|e| err(e.to_string()))?;
        }
        None => out.write_all(json.as_bytes()).map_err(|e| err(e.to_string()))?,
    }
    Ok(())
}

/// `shard_worker` next to the running executable (`target/<profile>/`).
fn default_worker_bin() -> Result<PathBuf, CliError> {
    let exe = std::env::current_exe().map_err(|e| err(format!("cannot locate myself: {e}")))?;
    let dir = exe.parent().ok_or_else(|| err("executable has no parent directory"))?;
    let candidate = dir.join(if cfg!(windows) { "shard_worker.exe" } else { "shard_worker" });
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(err(format!(
            "worker binary not found at {candidate:?}; build it with \
             `cargo build --release --bin shard_worker` or pass --worker-bin PATH"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &["smoke", "in-process"]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    // Worker-process spawning is covered by `crates/bench`'s
    // `shard_determinism` integration test and `crates/cluster`'s
    // `cluster_determinism` (which can name built worker binaries via
    // CARGO_BIN_EXE); here we cover the in-process paths and the flag
    // grammar.

    #[test]
    fn in_process_smoke_grid_emits_summaries() {
        let text = run_str("shard --smoke --in-process --workers 3").unwrap();
        let outcome = ShardOutcome::decode(&text).unwrap();
        match outcome {
            ShardOutcome::Grid(summaries) => {
                assert_eq!(summaries.len(), smoke_grid().len());
                assert!(summaries.iter().all(|s| s.colors > 0));
            }
            other => panic!("expected grid summaries, got {other:?}"),
        }
    }

    #[test]
    fn in_process_runs_are_worker_count_invariant() {
        let a = run_str("shard --smoke --in-process --workers 1").unwrap();
        let b = run_str("shard --smoke --in-process --workers 4").unwrap();
        assert_eq!(a, b, "thread count leaked into the merged JSON");
    }

    #[test]
    fn process_transport_matches_the_in_process_reference() {
        // The cluster loopback fleet must merge byte-identically to the
        // single-process run — the determinism law through the CLI.
        let dir = std::env::temp_dir().join("streamcolor-shard-transport-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(&spec, ShardJob::Grid(smoke_grid()[..3].to_vec()).encode()).unwrap();
        let reference = run_str(&format!("shard --spec {} --in-process", spec.display())).unwrap();
        let clustered =
            run_str(&format!("shard --spec {} --transport process --workers 2", spec.display()))
                .unwrap();
        assert_eq!(clustered, reference, "process-transport merge diverged");
    }

    #[test]
    fn spec_files_round_trip_through_the_cli() {
        let dir = std::env::temp_dir().join("streamcolor-shard-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        let grid = ShardJob::Grid(smoke_grid()[..2].to_vec());
        std::fs::write(&spec, grid.encode()).unwrap();
        let out_file = dir.join("merged.json");
        let text = run_str(&format!(
            "shard --spec {} --in-process --out {}",
            spec.display(),
            out_file.display()
        ))
        .unwrap();
        assert!(text.contains("2 item(s)"), "{text}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        assert!(
            matches!(ShardOutcome::decode(&written).unwrap(), ShardOutcome::Grid(s) if s.len() == 2)
        );
    }

    #[test]
    fn flag_grammar_is_validated() {
        assert!(run_str("shard --in-process").is_err(), "need a job source");
        assert!(run_str("shard --smoke --spec x.json --in-process").is_err(), "exclusive flags");
        assert!(run_str("shard --smoke --bogus 1").is_err());
        // Cluster-flag grammar.
        assert!(run_str("shard --smoke --transport process --in-process").is_err());
        assert!(run_str("shard --smoke --transport warp").is_err(), "unknown transport");
        assert!(run_str("shard --smoke --transport tcp").is_err(), "tcp needs --connect");
        assert!(run_str("shard --smoke --transport process --worker-threads 2").is_err());
        assert!(run_str("shard --smoke --transport process --worker-bin x").is_err());
        assert!(run_str("shard --smoke --connect 1.2.3.4:5").is_err(), "connect needs tcp/ssh");
        assert!(run_str("shard --smoke --transport process --timeout-ms 0").is_err());
        assert!(run_str("shard --smoke --transport ssh").is_err(), "ssh needs --connect");
        // A malformed ssh destination fails fleet validation, not spawn.
        let e = run_str("shard --smoke --transport ssh --connect host:").unwrap_err();
        assert!(e.to_string().contains("empty remote path"), "{e}");
        // --timeout-ms would be a silent no-op without a transport.
        let e = run_str("shard --smoke --in-process --timeout-ms 5000").unwrap_err();
        assert!(e.to_string().contains("--transport modes only"), "{e}");
        // An unreachable tcp endpoint is a friendly error.
        let e = run_str("shard --smoke --transport tcp --connect 127.0.0.1:1").unwrap_err();
        assert!(e.to_string().contains("cannot connect"), "{e}");
    }

    #[test]
    fn scheduling_flags_are_validated() {
        // The fraction must be a real number in (0, 1].
        for bad in ["0", "-0.25", "1.5", "nan"] {
            let e = run_str(&format!("shard --smoke --transport process --speculate-after {bad}"))
                .unwrap_err();
            assert!(e.to_string().contains("(0, 1]"), "{bad}: {e}");
        }
        let e = run_str("shard --smoke --transport process --skew-ms 0").unwrap_err();
        assert!(e.to_string().contains("--skew-ms must be at least 1"), "{e}");
        let e = run_str("shard --smoke --transport process --dispatch warp").unwrap_err();
        assert!(e.to_string().contains("stealing | static"), "{e}");
        // Scheduling knobs without a transport would be silent no-ops.
        for flags in ["--speculate-after 0.5", "--skew-ms 50", "--dispatch static"] {
            let e = run_str(&format!("shard --smoke --in-process {flags}")).unwrap_err();
            assert!(e.to_string().contains("--transport modes only"), "{flags}: {e}");
        }
    }

    #[test]
    fn scheduling_modes_preserve_the_merged_bytes() {
        // Static partitioning, speculation, and a skewed worker are all
        // byte-invisible: every variant reproduces the reference.
        let dir = std::env::temp_dir().join("streamcolor-shard-scheduling-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        std::fs::write(&spec, ShardJob::Grid(smoke_grid()[..3].to_vec()).encode()).unwrap();
        let reference = run_str(&format!("shard --spec {} --in-process", spec.display())).unwrap();
        for flags in ["--dispatch static", "--speculate-after 1 --timeout-ms 60000", "--skew-ms 1"]
        {
            let text = run_str(&format!(
                "shard --spec {} --transport process --workers 2 {flags}",
                spec.display()
            ))
            .unwrap();
            assert_eq!(text, reference, "{flags}: scheduling mode leaked into the bytes");
        }
    }

    #[test]
    fn zero_workers_is_a_friendly_error_not_a_silent_clamp() {
        for flags in ["--smoke --workers 0", "--smoke --in-process --workers 0"] {
            let e = run_str(&format!("shard {flags}")).unwrap_err();
            assert!(e.to_string().contains("--workers must be at least 1"), "{e}");
        }
        let e = run_str("shard --smoke --in-process --worker-threads 0").unwrap_err();
        assert!(e.to_string().contains("--worker-threads must be at least 1"), "{e}");
    }

    #[test]
    fn grids_smaller_than_the_worker_count_merge_correctly() {
        // A 2-scenario grid with 7 requested workers: the coordinator
        // clamps to the job size (degenerate-but-correct merge), and the
        // report names the spawn count that would actually run.
        let dir = std::env::temp_dir().join("streamcolor-shard-degenerate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("tiny-spec.json");
        let grid = ShardJob::Grid(smoke_grid()[..2].to_vec());
        std::fs::write(&spec, grid.encode()).unwrap();
        let out_file = dir.join("tiny-merged.json");
        let text = run_str(&format!(
            "shard --spec {} --in-process --workers 7 --out {}",
            spec.display(),
            out_file.display()
        ))
        .unwrap();
        assert!(text.contains("2 item(s)"), "{text}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        match ShardOutcome::decode(&written).unwrap() {
            ShardOutcome::Grid(summaries) => {
                assert_eq!(summaries.len(), 2);
                assert!(summaries.iter().all(|s| s.proper));
            }
            other => panic!("expected grid summaries, got {other:?}"),
        }
        // The reference single-worker run is byte-identical.
        let ref_file = dir.join("tiny-single.json");
        run_str(&format!(
            "shard --spec {} --in-process --workers 1 --out {}",
            spec.display(),
            ref_file.display()
        ))
        .unwrap();
        assert_eq!(written, std::fs::read_to_string(&ref_file).unwrap());
    }
}
