//! `streamcolor shard` — run a scenario grid sharded across worker
//! processes and write the merged summary JSON.
//!
//! The coordinator front end of `sc_engine::shard`: it encodes the grid
//! as a wire-format spec file, spawns `--workers N` copies of the
//! `shard_worker` binary (each runs its deterministic slice), and merges
//! their outputs. The merged JSON is byte-identical for every worker
//! count — and identical to `--in-process`, the single-process reference
//! — so CI can literally `diff` the two:
//!
//! ```text
//! cargo build --release --bin streamcolor --bin shard_worker
//! target/release/streamcolor shard --smoke --workers 4 --out merged.json
//! target/release/streamcolor shard --smoke --in-process --out single.json
//! diff single.json merged.json
//! ```
//!
//! `--spec FILE` runs an arbitrary `ShardJob::encode` spec file instead
//! of the built-in `--smoke` grid. The worker binary defaults to
//! `shard_worker` next to the current executable; `--worker-bin PATH`
//! overrides it.

use crate::args::{err, Args, CliError};
use sc_engine::shard::{run_in_process, smoke_grid, Coordinator, ShardJob, ShardOutcome};
use std::io::Write;
use std::path::PathBuf;

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let workers: usize = args.parse_or("workers", 2)?;
    let threads: usize = args.parse_or("worker-threads", 1)?;
    let smoke = args.switch("smoke");
    let in_process = args.switch("in-process");
    let spec_path = args.optional("spec").map(String::from);
    let out_path = args.optional("out").map(String::from);
    let worker_bin = args.optional("worker-bin").map(PathBuf::from);
    args.reject_unknown()?;
    if workers == 0 {
        return Err(err("--workers must be at least 1 (0 processes cannot run anything)"));
    }
    if threads == 0 {
        return Err(err("--worker-threads must be at least 1"));
    }

    let job = match (smoke, spec_path) {
        (true, None) => ShardJob::Grid(smoke_grid()),
        (false, Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| err(format!("cannot read spec {path:?}: {e}")))?;
            ShardJob::decode(&text).map_err(|e| err(format!("spec {path:?}: {e}")))?
        }
        (true, Some(_)) => return Err(err("--smoke and --spec are mutually exclusive")),
        (false, None) => return Err(err("need --smoke or --spec <file>")),
    };

    let outcome = if in_process {
        run_in_process(&job, workers).map_err(err)?
    } else {
        let mut coordinator =
            Coordinator::new(workers, worker_bin.map_or_else(default_worker_bin, Ok)?);
        coordinator.worker_threads = threads;
        coordinator.run(&job).map_err(err)?
    };

    let json = outcome.encode();
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| err(format!("cannot write {path:?}: {e}")))?;
            let what = match &outcome {
                ShardOutcome::Grid(summaries) => format!("{} run summaries", summaries.len()),
                ShardOutcome::Attack(s) => format!("trial summary ({} trials)", s.trials),
            };
            // The coordinator clamps the worker count to the job size;
            // report what actually ran.
            let spawned = workers.clamp(1, job.len().max(1));
            writeln!(
                out,
                "{} item(s) across {} — wrote {what} to {path}",
                job.len(),
                if in_process { "1 process".to_string() } else { format!("{spawned} worker(s)") },
            )
            .map_err(|e| err(e.to_string()))?;
        }
        None => out.write_all(json.as_bytes()).map_err(|e| err(e.to_string()))?,
    }
    Ok(())
}

/// `shard_worker` next to the running executable (`target/<profile>/`).
fn default_worker_bin() -> Result<PathBuf, CliError> {
    let exe = std::env::current_exe().map_err(|e| err(format!("cannot locate myself: {e}")))?;
    let dir = exe.parent().ok_or_else(|| err("executable has no parent directory"))?;
    let candidate = dir.join(if cfg!(windows) { "shard_worker.exe" } else { "shard_worker" });
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(err(format!(
            "worker binary not found at {candidate:?}; build it with \
             `cargo build --release --bin shard_worker` or pass --worker-bin PATH"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &["smoke", "in-process"]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    // Worker-process spawning is covered by `crates/bench`'s
    // `shard_determinism` integration test (which can name the built
    // worker binary via `CARGO_BIN_EXE_shard_worker`); here we cover the
    // in-process path and the flag grammar.

    #[test]
    fn in_process_smoke_grid_emits_summaries() {
        let text = run_str("shard --smoke --in-process --workers 3").unwrap();
        let outcome = ShardOutcome::decode(&text).unwrap();
        match outcome {
            ShardOutcome::Grid(summaries) => {
                assert_eq!(summaries.len(), smoke_grid().len());
                assert!(summaries.iter().all(|s| s.colors > 0));
            }
            other => panic!("expected grid summaries, got {other:?}"),
        }
    }

    #[test]
    fn in_process_runs_are_worker_count_invariant() {
        let a = run_str("shard --smoke --in-process --workers 1").unwrap();
        let b = run_str("shard --smoke --in-process --workers 4").unwrap();
        assert_eq!(a, b, "thread count leaked into the merged JSON");
    }

    #[test]
    fn spec_files_round_trip_through_the_cli() {
        let dir = std::env::temp_dir().join("streamcolor-shard-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("spec.json");
        let grid = ShardJob::Grid(smoke_grid()[..2].to_vec());
        std::fs::write(&spec, grid.encode()).unwrap();
        let out_file = dir.join("merged.json");
        let text = run_str(&format!(
            "shard --spec {} --in-process --out {}",
            spec.display(),
            out_file.display()
        ))
        .unwrap();
        assert!(text.contains("2 item(s)"), "{text}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        assert!(
            matches!(ShardOutcome::decode(&written).unwrap(), ShardOutcome::Grid(s) if s.len() == 2)
        );
    }

    #[test]
    fn flag_grammar_is_validated() {
        assert!(run_str("shard --in-process").is_err(), "need a job source");
        assert!(run_str("shard --smoke --spec x.json --in-process").is_err(), "exclusive flags");
        assert!(run_str("shard --smoke --bogus 1").is_err());
    }

    #[test]
    fn zero_workers_is_a_friendly_error_not_a_silent_clamp() {
        for flags in ["--smoke --workers 0", "--smoke --in-process --workers 0"] {
            let e = run_str(&format!("shard {flags}")).unwrap_err();
            assert!(e.to_string().contains("--workers must be at least 1"), "{e}");
        }
        let e = run_str("shard --smoke --in-process --worker-threads 0").unwrap_err();
        assert!(e.to_string().contains("--worker-threads must be at least 1"), "{e}");
    }

    #[test]
    fn grids_smaller_than_the_worker_count_merge_correctly() {
        // A 2-scenario grid with 7 requested workers: the coordinator
        // clamps to the job size (degenerate-but-correct merge), and the
        // report names the spawn count that would actually run.
        let dir = std::env::temp_dir().join("streamcolor-shard-degenerate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("tiny-spec.json");
        let grid = ShardJob::Grid(smoke_grid()[..2].to_vec());
        std::fs::write(&spec, grid.encode()).unwrap();
        let out_file = dir.join("tiny-merged.json");
        let text = run_str(&format!(
            "shard --spec {} --in-process --workers 7 --out {}",
            spec.display(),
            out_file.display()
        ))
        .unwrap();
        assert!(text.contains("2 item(s)"), "{text}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        match ShardOutcome::decode(&written).unwrap() {
            ShardOutcome::Grid(summaries) => {
                assert_eq!(summaries.len(), 2);
                assert!(summaries.iter().all(|s| s.proper));
            }
            other => panic!("expected grid summaries, got {other:?}"),
        }
        // The reference single-worker run is byte-identical.
        let ref_file = dir.join("tiny-single.json");
        run_str(&format!(
            "shard --spec {} --in-process --workers 1 --out {}",
            spec.display(),
            ref_file.display()
        ))
        .unwrap();
        assert_eq!(written, std::fs::read_to_string(&ref_file).unwrap());
    }
}
