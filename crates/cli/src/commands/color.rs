//! `streamcolor color` — run one of the paper's algorithms (or a
//! baseline) on a workload and report palette / pass / space numbers.
//!
//! The flags parse into a declarative [`Scenario`] executed by
//! `sc-engine`'s [`Runner`] — the same path every experiment binary uses,
//! so there is no CLI-private harness loop to drift out of sync.

use crate::args::{err, Args, CliError};
use crate::workload;
use sc_engine::{ColorerSpec, Runner, Scenario};
use sc_stream::{EngineConfig, StreamOrder};
use std::io::Write;
use streamcolor::DetConfig;

/// Algorithms selectable via `--algo`.
pub const ALGOS: &str =
    "det | batch | robust | auto | rand-efficient | cgs22 | bg18 | bcg20 | ps | greedy | brooks";

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let source = workload::acquire_spec(args)?;
    workload::mark_flags_consumed(args);
    let algo = args.optional("algo").unwrap_or("det").to_string();
    let seed: u64 = args.parse_or("alg-seed", 7)?;
    let beta: f64 = args.parse_or("beta", 0.0)?;
    let chunk: usize = args.parse_or("chunk", 256)?;
    let order = parse_order(args.optional("order"), seed)?;
    let out_coloring = args.optional("out-coloring").map(String::from);
    args.reject_unknown()?;

    let scenario = Scenario::new(source, parse_spec(&algo, beta)?)
        .with_order(order)
        .with_seed(seed)
        .with_engine(EngineConfig::batched(chunk));
    let outcome = Runner::default().run(&scenario);

    if let Some(path) = out_coloring {
        let mut buf = Vec::new();
        sc_graph::io::write_coloring(&outcome.coloring, &mut buf)
            .map_err(|e| err(e.to_string()))?;
        std::fs::write(&path, &buf).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }

    let w = |o: &mut dyn Write, k: &str, v: &dyn std::fmt::Display| {
        writeln!(o, "{k:<14} {v}").map_err(|e| err(e.to_string()))
    };
    w(out, "algorithm", &outcome.algo)?;
    w(out, "order", &order.label())?;
    w(out, "n", &outcome.n)?;
    w(out, "m", &outcome.m)?;
    w(out, "max degree", &outcome.delta)?;
    w(out, "colors", &outcome.colors)?;
    w(out, "proper", &outcome.proper)?;
    if let Some(p) = outcome.passes {
        w(out, "passes", &p)?;
    }
    if let Some(s) = outcome.space_bits {
        w(out, "space (bits)", &s)?;
    }
    if !outcome.proper {
        return Err(err("the produced coloring is IMPROPER (randomized failure?)"));
    }
    Ok(())
}

fn parse_order(raw: Option<&str>, seed: u64) -> Result<StreamOrder, CliError> {
    Ok(match raw.unwrap_or("generated") {
        "generated" => StreamOrder::AsGenerated,
        "shuffled" => StreamOrder::Shuffled(seed),
        "hubs-first" => StreamOrder::HubsFirst,
        "hubs-last" => StreamOrder::HubsLast,
        "vertex-contiguous" => StreamOrder::VertexContiguous,
        "interleaved" => StreamOrder::Interleaved(seed),
        other => {
            return Err(err(format!(
                "unknown --order {other:?} (generated | shuffled | hubs-first | hubs-last | \
                 vertex-contiguous | interleaved)"
            )))
        }
    })
}

fn parse_spec(algo: &str, beta: f64) -> Result<ColorerSpec, CliError> {
    Ok(match algo {
        "det" => ColorerSpec::Det(DetConfig::default()),
        "batch" => ColorerSpec::BatchGreedy,
        "robust" => ColorerSpec::Robust { beta: Some(beta) },
        // Auto dispatch: store-everything for small ∆ (the paper's
        // ∆ = O(polylog n) fallback), Algorithm 2 otherwise.
        "auto" => ColorerSpec::Auto,
        "rand-efficient" => ColorerSpec::RandEfficient,
        "cgs22" => ColorerSpec::Cgs22,
        "bg18" => ColorerSpec::Bg18 { buckets: None },
        "bcg20" => ColorerSpec::Bcg20 { epsilon: 0.5 },
        "ps" => ColorerSpec::PaletteSparsification { lists: None },
        "greedy" => ColorerSpec::OfflineGreedy,
        "brooks" => ColorerSpec::Brooks,
        other => return Err(err(format!("unknown --algo {other:?}; one of: {ALGOS}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn every_algorithm_runs_and_reports() {
        for algo in [
            "det",
            "batch",
            "robust",
            "auto",
            "rand-efficient",
            "cgs22",
            "bg18",
            "bcg20",
            "ps",
            "greedy",
            "brooks",
        ] {
            let text =
                run_str(&format!("color --algo {algo} --family exact --n 80 --delta 8 --seed 3"))
                    .unwrap_or_else(|e| panic!("algo {algo}: {e}"));
            assert!(text.contains("proper         true"), "algo {algo}: {text}");
            assert!(text.contains("colors"), "{text}");
        }
    }

    #[test]
    fn deterministic_reports_passes() {
        let text = run_str("color --algo det --family gnp --n 64 --delta 6").unwrap();
        assert!(text.contains("passes"), "{text}");
        assert!(text.contains("space (bits)"), "{text}");
    }

    #[test]
    fn orders_are_selectable() {
        for order in ["shuffled", "hubs-first", "hubs-last", "vertex-contiguous", "interleaved"] {
            let text = run_str(&format!(
                "color --algo robust --family gnp --n 60 --delta 6 --order {order}"
            ))
            .unwrap();
            assert!(text.contains(order), "{text}");
        }
        assert!(run_str("color --order sideways").is_err());
    }

    #[test]
    fn beta_flag_feeds_the_tradeoff() {
        let text =
            run_str("color --algo robust --family exact --n 100 --delta 9 --beta 0.5").unwrap();
        assert!(text.contains("proper         true"));
    }

    #[test]
    fn chunk_flag_controls_batching_without_changing_results() {
        let base = "color --algo robust --family exact --n 90 --delta 8 --seed 4";
        let a = run_str(&format!("{base} --chunk 1")).unwrap();
        let b = run_str(&format!("{base} --chunk 64")).unwrap();
        // Batched and per-edge ingestion must report identical results.
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_algo_is_an_error() {
        let e = run_str("color --algo quantum").unwrap_err();
        assert!(e.to_string().contains("unknown --algo"));
    }
}
