//! `streamcolor color` — run one of the paper's algorithms (or a
//! baseline) on a workload and report palette / pass / space numbers.

use crate::args::{err, Args, CliError};
use crate::workload;
use sc_graph::{Coloring, Graph};
use sc_stream::{run_oblivious, StoredStream, StreamOrder, StreamingColorer};
use streamcolor::{
    batch_greedy_coloring, deterministic_coloring, offline_greedy, Bcg20Colorer, Bg18Colorer,
    Cgs22Colorer, DetConfig, PaletteSparsification, RandEfficientColorer, RobustColorer,
    RobustParams,
};
use std::io::Write;

/// Algorithms selectable via `--algo`.
pub const ALGOS: &str =
    "det | batch | robust | auto | rand-efficient | cgs22 | bg18 | bcg20 | ps | greedy | brooks";

/// One run's result, printed as an aligned report.
struct RunResult {
    algo: &'static str,
    coloring: Coloring,
    passes: Option<u64>,
    space_bits: Option<u64>,
}

/// Runs the subcommand.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let g = workload::acquire(args)?;
    workload::mark_flags_consumed(args);
    let algo = args.optional("algo").unwrap_or("det").to_string();
    let seed: u64 = args.parse_or("alg-seed", 7)?;
    let beta: f64 = args.parse_or("beta", 0.0)?;
    let order = parse_order(args.optional("order"), seed)?;
    let out_coloring = args.optional("out-coloring").map(String::from);
    args.reject_unknown()?;

    let delta = g.max_degree();
    let edges = order.arrange(&g);
    let result = run_algo(&algo, &g, delta, &edges, seed, beta)?;

    if let Some(path) = out_coloring {
        let mut buf = Vec::new();
        sc_graph::io::write_coloring(&result.coloring, &mut buf)
            .map_err(|e| err(e.to_string()))?;
        std::fs::write(&path, &buf).map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }

    let proper = result.coloring.is_proper_total(&g);
    let w = |o: &mut dyn Write, k: &str, v: &dyn std::fmt::Display| {
        writeln!(o, "{k:<14} {v}").map_err(|e| err(e.to_string()))
    };
    w(out, "algorithm", &result.algo)?;
    w(out, "order", &order.label())?;
    w(out, "n", &g.n())?;
    w(out, "m", &g.m())?;
    w(out, "max degree", &delta)?;
    w(out, "colors", &result.coloring.num_distinct_colors())?;
    w(out, "proper", &proper)?;
    if let Some(p) = result.passes {
        w(out, "passes", &p)?;
    }
    if let Some(s) = result.space_bits {
        w(out, "space (bits)", &s)?;
    }
    if !proper {
        return Err(err("the produced coloring is IMPROPER (randomized failure?)"));
    }
    Ok(())
}

fn parse_order(raw: Option<&str>, seed: u64) -> Result<StreamOrder, CliError> {
    Ok(match raw.unwrap_or("generated") {
        "generated" => StreamOrder::AsGenerated,
        "shuffled" => StreamOrder::Shuffled(seed),
        "hubs-first" => StreamOrder::HubsFirst,
        "hubs-last" => StreamOrder::HubsLast,
        "vertex-contiguous" => StreamOrder::VertexContiguous,
        "interleaved" => StreamOrder::Interleaved(seed),
        other => {
            return Err(err(format!(
                "unknown --order {other:?} (generated | shuffled | hubs-first | hubs-last | \
                 vertex-contiguous | interleaved)"
            )))
        }
    })
}

fn run_algo(
    algo: &str,
    g: &Graph,
    delta: usize,
    edges: &[sc_graph::Edge],
    seed: u64,
    beta: f64,
) -> Result<RunResult, CliError> {
    let stream = StoredStream::from_edges(edges.iter().copied());
    let one_pass = |mut c: Box<dyn StreamingColorer>| {
        let coloring = run_oblivious(c.as_mut(), edges.iter().copied());
        RunResult {
            algo: c.name(),
            coloring,
            passes: Some(1),
            space_bits: Some(c.peak_space_bits()),
        }
    };
    Ok(match algo {
        "det" => {
            let r = deterministic_coloring(&stream, g.n(), delta, &DetConfig::default());
            RunResult {
                algo: "deterministic (Thm 1)",
                coloring: r.coloring,
                passes: Some(r.passes),
                space_bits: Some(r.peak_space_bits),
            }
        }
        "batch" => {
            let r = batch_greedy_coloring(&stream, g.n(), delta.max(1));
            RunResult {
                algo: "batch-greedy (O(∆) passes)",
                coloring: r.coloring,
                passes: Some(r.passes),
                space_bits: Some(r.peak_space_bits),
            }
        }
        "robust" => {
            let params = RobustParams::with_beta(g.n(), delta.max(1), beta);
            one_pass(Box::new(RobustColorer::with_params(params, seed)))
        }
        // Auto dispatch: store-everything for small ∆ (the paper's
        // ∆ = O(polylog n) fallback), Algorithm 2 otherwise.
        "auto" => one_pass(Box::new(streamcolor::robust::auto_robust_colorer(
            g.n(),
            delta.max(1),
            seed,
        ))),
        "rand-efficient" => one_pass(Box::new(RandEfficientColorer::new(g.n(), delta.max(1), seed))),
        "cgs22" => one_pass(Box::new(Cgs22Colorer::new(g.n(), delta.max(1), seed))),
        "bg18" => one_pass(Box::new(Bg18Colorer::new(g.n(), delta.max(1) as u64, seed))),
        "bcg20" => one_pass(Box::new(Bcg20Colorer::for_graph(g, 0.5, seed))),
        "ps" => one_pass(Box::new(PaletteSparsification::with_theory_lists(
            g.n(),
            delta,
            seed,
        ))),
        "greedy" => RunResult {
            algo: "offline greedy",
            coloring: offline_greedy(g),
            passes: None,
            space_bits: None,
        },
        "brooks" => RunResult {
            algo: "offline Brooks (∆ colors)",
            coloring: sc_graph::brooks_coloring(g),
            passes: None,
            space_bits: None,
        },
        other => return Err(err(format!("unknown --algo {other:?}; one of: {ALGOS}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn every_algorithm_runs_and_reports() {
        for algo in [
            "det",
            "batch",
            "robust",
            "auto",
            "rand-efficient",
            "cgs22",
            "bg18",
            "bcg20",
            "ps",
            "greedy",
            "brooks",
        ] {
            let text = run_str(&format!(
                "color --algo {algo} --family exact --n 80 --delta 8 --seed 3"
            ))
            .unwrap_or_else(|e| panic!("algo {algo}: {e}"));
            assert!(text.contains("proper         true"), "algo {algo}: {text}");
            assert!(text.contains("colors"), "{text}");
        }
    }

    #[test]
    fn deterministic_reports_passes() {
        let text = run_str("color --algo det --family gnp --n 64 --delta 6").unwrap();
        assert!(text.contains("passes"), "{text}");
        assert!(text.contains("space (bits)"), "{text}");
    }

    #[test]
    fn orders_are_selectable() {
        for order in ["shuffled", "hubs-first", "hubs-last", "vertex-contiguous", "interleaved"] {
            let text = run_str(&format!(
                "color --algo robust --family gnp --n 60 --delta 6 --order {order}"
            ))
            .unwrap();
            assert!(text.contains(order), "{text}");
        }
        assert!(run_str("color --order sideways").is_err());
    }

    #[test]
    fn beta_flag_feeds_the_tradeoff() {
        let text =
            run_str("color --algo robust --family exact --n 100 --delta 9 --beta 0.5").unwrap();
        assert!(text.contains("proper         true"));
    }

    #[test]
    fn unknown_algo_is_an_error() {
        let e = run_str("color --algo quantum").unwrap_err();
        assert!(e.to_string().contains("unknown --algo"));
    }
}
