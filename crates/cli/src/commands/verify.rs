//! `streamcolor verify` — check an announced coloring against a graph in
//! the vertex-arrival streaming model (the BBMU21 problem).

use crate::args::{err, Args, CliError};
use crate::workload;
use sc_engine::{run_verify, VerifyMode, VerifyReport};
use sc_graph::io;
use std::io::Write;

/// Runs the subcommand (the arrival-ingest loop lives in
/// [`sc_engine::run_verify`], shared with the experiment harness).
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let g = workload::acquire(args)?;
    workload::mark_flags_consumed(args);
    let coloring_path = args.required("coloring")?.to_string();
    let sample: Option<usize> = match args.optional("sample") {
        None => None,
        Some(raw) => {
            Some(raw.parse().map_err(|_| err(format!("flag --sample: cannot parse {raw:?}")))?)
        }
    };
    let seed: u64 = args.parse_or("alg-seed", 1)?;
    args.reject_unknown()?;

    let text = std::fs::read_to_string(&coloring_path)
        .map_err(|e| err(format!("cannot read {coloring_path}: {e}")))?;
    let coloring = io::read_coloring(text.as_bytes(), g.n())
        .map_err(|e| err(format!("{coloring_path}: {e}")))?;
    if !coloring.is_total() {
        return Err(err(format!(
            "{coloring_path}: {} vertices are uncolored — verification needs a total coloring",
            coloring.num_uncolored()
        )));
    }
    let mode = match sample {
        None => VerifyMode::Exact,
        Some(k) => VerifyMode::Sampled { k },
    };

    let w = |o: &mut dyn Write, k: &str, v: &dyn std::fmt::Display| {
        writeln!(o, "{k:<18} {v}").map_err(|e| err(e.to_string()))
    };
    w(out, "n", &g.n())?;
    w(out, "m", &g.m())?;
    w(out, "colors announced", &coloring.num_distinct_colors())?;
    match run_verify(&g, &coloring, mode, seed) {
        VerifyReport::Exact { conflicts, space_bits, proper } => {
            w(out, "mode", &"exact")?;
            w(out, "conflicts", &conflicts)?;
            w(out, "space (bits)", &space_bits)?;
            w(out, "proper", &proper)?;
        }
        VerifyReport::Sampled { sample_size, estimate, visible_conflicts, space_bits } => {
            w(out, "mode", &format!("sampled (k = {sample_size})"))?;
            w(out, "estimate", &format!("{estimate:.1}"))?;
            w(out, "visible conflicts", &visible_conflicts)?;
            w(out, "space (bits)", &space_bits)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{generators, greedy_complete, Coloring};

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("streamcolor-cli-verify");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn run_str(s: &str) -> Result<String, CliError> {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        let args = Args::parse(&toks, &[]).unwrap();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    #[test]
    fn verifies_proper_and_improper_colorings() {
        let dir = tmpdir();
        let g = generators::random_with_exact_max_degree(50, 6, 1);
        let gpath = dir.join("v.txt");
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&gpath, &buf).unwrap();

        let mut c = Coloring::empty(50);
        greedy_complete(&g, &mut c);
        let cpath = dir.join("good.col");
        let mut cbuf = Vec::new();
        io::write_coloring(&c, &mut cbuf).unwrap();
        std::fs::write(&cpath, &cbuf).unwrap();
        let text =
            run_str(&format!("verify --input {} --coloring {}", gpath.display(), cpath.display()))
                .unwrap();
        assert!(text.contains("proper             true"), "{text}");

        // Corrupt one vertex to its neighbor's color.
        let v = g.edges().next().unwrap();
        c.unset(v.u());
        c.set(v.u(), c.get(v.v()).unwrap());
        let bad = dir.join("bad.col");
        let mut bbuf = Vec::new();
        io::write_coloring(&c, &mut bbuf).unwrap();
        std::fs::write(&bad, &bbuf).unwrap();
        let text =
            run_str(&format!("verify --input {} --coloring {}", gpath.display(), bad.display()))
                .unwrap();
        assert!(text.contains("proper             false"), "{text}");
    }

    #[test]
    fn sampled_mode_reports_estimate() {
        let dir = tmpdir();
        let g = generators::complete(20);
        let gpath = dir.join("k20.txt");
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&gpath, &buf).unwrap();
        // All-same coloring: every edge conflicts.
        let mono: String = (0..20).map(|v| format!("{v} 0\n")).collect();
        let cpath = dir.join("mono.col");
        std::fs::write(&cpath, mono).unwrap();
        let text = run_str(&format!(
            "verify --input {} --coloring {} --sample 20",
            gpath.display(),
            cpath.display()
        ))
        .unwrap();
        assert!(text.contains("estimate           190.0"), "{text}");
    }

    #[test]
    fn partial_coloring_is_rejected() {
        let dir = tmpdir();
        let g = generators::path(4);
        let gpath = dir.join("p4.txt");
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&gpath, &buf).unwrap();
        let cpath = dir.join("partial.col");
        std::fs::write(&cpath, "0 1\n").unwrap();
        let e =
            run_str(&format!("verify --input {} --coloring {}", gpath.display(), cpath.display()))
                .unwrap_err();
        assert!(e.to_string().contains("uncolored"), "{e}");
    }
}
