//! # `streamcolor-cli` — command-line front end
//!
//! A thin, dependency-free CLI over the `streamcolor` workspace:
//! generate workloads, run any of the paper's algorithms or baselines,
//! inspect graph structure, and referee adaptive-adversary games —
//! without writing a Rust program.
//!
//! ```text
//! streamcolor gen    --family exact --n 1000 --delta 32 --out g.txt
//! streamcolor info   --input g.txt
//! streamcolor color  --algo det --input g.txt
//! streamcolor color  --algo robust --beta 0.5 --input g.txt
//! streamcolor attack --victim ps --adversary mono --n 100 --delta 16
//! ```
//!
//! All argument parsing is hand-rolled ([`args`]) to stay within the
//! workspace's no-new-dependencies policy; see DESIGN.md §6.
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns *flags and friendly errors*, nothing else. Every
//! command is a thin adapter onto a lower layer's public API —
//! `color`/`gen`/`attack` onto `sc-engine` scenarios, `serve` onto
//! `sc-service`, `shard` onto the `sc-engine` coordinator and the
//! `sc-cluster` transports — so behavior reachable from the shell is
//! exactly the behavior the library tests already pin down.

pub mod args;
pub mod commands;
pub mod workload;

pub use args::{Args, CliError};
pub use commands::{dispatch, HELP};
