//! Workload acquisition shared by the CLI subcommands: either read a graph
//! file (`--input`, edge-list or DIMACS, format auto-sniffed) or describe
//! one of `sc-engine`'s generator families from the `--family` flags.
//!
//! The flags parse into a declarative [`SourceSpec`] so `color` (and any
//! future scenario-driven command) hands the *description* to the
//! [`Runner`](sc_engine::Runner) instead of a materialized graph;
//! commands that need the graph itself ([`acquire`]) materialize it.

use crate::args::{err, Args, CliError};
use sc_engine::{GraphFamily, SourceSpec};
use sc_graph::{io, Graph};
use std::sync::Arc;

/// The generator families exposed on the command line.
pub const FAMILIES: &str =
    "gnp | exact | pa | cycle | path | complete | star | clique-union | bipartite | petersen | circulant";

/// Parses `--input FILE` or `--family …` flags into a graph source.
///
/// Flags: `--n`, `--delta` (degree cap/target), `--p` (density), `--seed`,
/// `--k`/`--size` (clique-union), `--a`/`--b` (bipartite sides).
pub fn acquire_spec(args: &Args) -> Result<SourceSpec, CliError> {
    if let Some(path) = args.optional("input") {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        let g = io::read_auto(&text).map_err(|e| err(format!("{path}: {e}")))?;
        return Ok(SourceSpec::stored(g));
    }
    let family = args.optional("family").unwrap_or("gnp");
    let n: usize = args.parse_or("n", 256)?;
    let delta: usize = args.parse_or("delta", 8)?;
    let p: f64 = args.parse_or("p", 0.3)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let family = match family {
        "gnp" => GraphFamily::Gnp,
        "exact" => {
            if delta >= n {
                return Err(err(format!("family exact needs --delta < --n ({delta} ≥ {n})")));
            }
            GraphFamily::ExactDegree
        }
        "pa" => GraphFamily::PreferentialAttachment,
        "cycle" => {
            if n < 3 {
                return Err(err("family cycle needs --n ≥ 3"));
            }
            GraphFamily::Cycle
        }
        "path" => GraphFamily::Path,
        "complete" => GraphFamily::Complete,
        "star" => GraphFamily::Star,
        "clique-union" => {
            let k: usize = args.parse_or("k", 4)?;
            let size: usize = args.parse_or("size", delta + 1)?;
            GraphFamily::CliqueUnion { k, size }
        }
        "bipartite" => {
            let a: usize = args.parse_or("a", n / 2)?;
            let b: usize = args.parse_or("b", n - n / 2)?;
            GraphFamily::Bipartite { a, b }
        }
        "petersen" => GraphFamily::Petersen,
        "circulant" => {
            let half = (delta / 2).max(1);
            if n <= 2 * half {
                return Err(err(format!(
                    "family circulant needs --n > --delta ({n} ≤ {})",
                    2 * half
                )));
            }
            GraphFamily::Circulant
        }
        other => return Err(err(format!("unknown --family {other:?}; one of: {FAMILIES}"))),
    };
    Ok(SourceSpec::Family { family, n, delta, p, seed })
}

/// Builds the input graph from the workload flags (materializing a
/// described family).
pub fn acquire(args: &Args) -> Result<Arc<Graph>, CliError> {
    Ok(acquire_spec(args)?.materialize())
}

/// Consumes the workload flags so `reject_unknown` stays accurate for
/// commands that only *may* use them.
pub fn mark_flags_consumed(args: &Args) {
    for f in ["input", "family", "n", "delta", "p", "seed", "k", "size", "a", "b"] {
        let _ = args.optional(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        let toks: Vec<String> = s.split_whitespace().map(String::from).collect();
        Args::parse(&toks, &[]).unwrap()
    }

    #[test]
    fn generates_each_family() {
        for fam in [
            "gnp",
            "exact",
            "pa",
            "cycle",
            "path",
            "complete",
            "star",
            "clique-union",
            "bipartite",
            "petersen",
            "circulant",
        ] {
            let g = acquire(&args(&format!("gen --family {fam} --n 24 --delta 4"))).unwrap();
            assert!(g.n() > 0, "family {fam} produced an empty graph");
        }
    }

    #[test]
    fn unknown_family_is_an_error() {
        let e = acquire(&args("gen --family nope")).unwrap_err();
        assert!(e.to_string().contains("unknown --family"));
    }

    #[test]
    fn reads_input_files() {
        let dir = std::env::temp_dir().join("streamcolor-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tri.txt");
        std::fs::write(&path, "n 3\n0 1\n1 2\n0 2\n").unwrap();
        let g = acquire(&args(&format!("info --input {}", path.display()))).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        let e = acquire(&args("info --input /nonexistent/file")).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }

    #[test]
    fn defaults_apply() {
        let g = acquire(&args("gen")).unwrap();
        assert_eq!(g.n(), 256);
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn exact_family_validates_delta() {
        let e = acquire(&args("gen --family exact --n 8 --delta 8")).unwrap_err();
        assert!(e.to_string().contains("delta"));
    }

    #[test]
    fn family_flags_become_declarative_specs() {
        match acquire_spec(&args("color --family gnp --n 64 --delta 6 --seed 5")).unwrap() {
            SourceSpec::Family { family: GraphFamily::Gnp, n: 64, delta: 6, seed: 5, .. } => {}
            other => panic!("unexpected spec: {other:?}"),
        }
    }
}
