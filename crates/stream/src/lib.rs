//! # `sc-stream` — streaming-model substrate for `streamcolor`
//!
//! Encodes the computational model of the paper so algorithms can be
//! *measured* against their claimed complexities:
//!
//! * [`StreamSource`] / [`StoredStream`] — sequential multi-pass access to
//!   a token stream (edges, and `(x, L_x)` color lists for Theorem 2).
//! * [`PassCounter`] — counts passes for the `O(log ∆ log log ∆)` bound.
//! * [`SpaceMeter`] — bit-level, self-reported space accounting for the
//!   `O(n log² n)` / `Õ(n)` bounds.
//! * [`StreamingColorer`] — the process/query contract of the single-pass
//!   (robust) setting, shared by the adversarial game driver.
//! * [`StreamEngine`] / [`EngineSession`] — the batched ingestion engine:
//!   chunking, pass counting, space metering and checkpointed mid-stream
//!   queries in one place (see [`engine`]).
//! * [`Session`] / [`BoxedColorer`] — the *owned* form of the same
//!   session: the colorer moves in at open and the report moves out at
//!   finish, so sessions can be stored, sent across threads, and hosted
//!   many-at-a-time by `sc-service`.
//! * [`QueryCache`] — epoch-keyed reuse of query artifacts, powering the
//!   incremental query path
//!   ([`StreamingColorer::query_incremental`]; see [`query_cache`]).
//! * [`SignedEdge`] / [`DynamicSupport`] — the dynamic (turnstile) model:
//!   signed edge tokens and the engine-side multiplicity referee that
//!   rejects deletions of never-inserted edges loudly (see [`support`]).
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! the engine owns chunking, pass counting, and checkpointed
//! mid-stream queries — colorers only ever see `process_batch` slices
//! and must behave identically for every chunking. Space is
//! self-reported by each colorer through [`SpaceMeter`]; the engine
//! snapshots it at checkpoints and never guesses. Parallelism lives
//! strictly *above* this crate (`sc-engine`'s `Runner` fans out whole
//! scenarios); every session here is single-threaded so the model's
//! space accounting stays honest.

pub mod colorer;
pub mod engine;
pub mod order;
pub mod query_cache;
pub mod source;
pub mod space;
pub mod state;
pub mod support;
pub mod token;
pub mod trace;

pub use colorer::{run_oblivious, BoxedColorer, StreamingColorer};
pub use engine::{
    Checkpoint, EngineConfig, EngineReport, EngineSession, QuerySchedule, Session, SessionSnapshot,
    StreamEngine,
};
pub use order::StreamOrder;
pub use query_cache::{CacheState, CacheStats, QueryCache};
pub use source::{PassCounter, StoredStream, StreamSource};
pub use space::{color_bits, counter_bits, edge_bits, vertex_bits, SpaceMeter};
pub use state::{
    decode_edge_list, decode_signed_list, decode_u64_list, encode_edge_list, encode_signed_list,
    encode_u64_list, StateReader, StateWriter,
};
pub use support::DynamicSupport;
pub use token::{Sign, SignedEdge, StreamItem};
pub use trace::{TraceReport, TracingSource};
