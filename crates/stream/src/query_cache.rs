//! Epoch-keyed query caching: the substrate of the incremental query path.
//!
//! The adversarially robust setting queries after *every* prefix (the
//! game of §2 observes the coloring each round), so a colorer that
//! rebuilds its whole answer per [`query`] spends the bulk of a
//! checkpointed run inside queries. [`QueryCache`] gives every colorer
//! the same bookkeeping for reusing the previous query's artifacts:
//!
//! * an **ingestion epoch** — a monotone generation counter the colorer
//!   bumps from `process`/`process_batch` (one tick per ingested edge);
//! * an **artifact slot** stamped with the epoch it was computed at, so a
//!   later [`query_incremental`] can tell a *fresh* artifact (same epoch:
//!   return it), a *stale* one (earlier epoch: patch it with the edges
//!   ingested since), and an *empty* cache (build from scratch);
//! * [`CacheStats`] counting those three outcomes plus explicit
//!   invalidations (epoch-buffer rotations, `⊥`-wipes), so experiments
//!   can report how often the incremental path actually engaged.
//!
//! The cache is harness bookkeeping, **not** algorithm state: it never
//! touches the [`SpaceMeter`](crate::SpaceMeter), and the incremental
//! path it powers must be observationally identical to the from-scratch
//! [`query`] — a law property-tested per colorer in
//! `crates/core/tests/incremental_equivalence.rs`.
//!
//! [`query`]: crate::StreamingColorer::query
//! [`query_incremental`]: crate::StreamingColorer::query_incremental

/// Outcome counters for a colorer's incremental query path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered entirely from a fresh artifact (same epoch).
    pub hits: u64,
    /// Queries answered by patching a stale artifact with the edges
    /// ingested since it was computed.
    pub patches: u64,
    /// Queries that rebuilt from scratch (empty or unusable cache).
    pub misses: u64,
    /// Artifacts dropped by explicit invalidation (buffer rotations,
    /// sketch wipes) rather than superseded by a newer computation.
    pub invalidations: u64,
    /// Cumulative vertices recolored by patch-path queries — the size of
    /// the dirty frontier the incremental repair actually touched, summed
    /// over all patches. Colorers whose patch path has no per-vertex
    /// repair notion leave this 0; the experiment harness surfaces it so
    /// serving runs can report patch *depth*, not just patch *count*.
    pub patched_vertices: u64,
}

impl CacheStats {
    /// Total queries classified (`hits + patches + misses`).
    pub fn queries(&self) -> u64 {
        self.hits + self.patches + self.misses
    }

    /// Fraction of queries that avoided a from-scratch rebuild, or 0.0
    /// before any query ran.
    pub fn reuse_rate(&self) -> f64 {
        let q = self.queries();
        if q == 0 {
            0.0
        } else {
            (self.hits + self.patches) as f64 / q as f64
        }
    }
}

/// How a [`QueryCache`] lookup classified its artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Artifact computed at the current epoch: reusable verbatim.
    Fresh,
    /// Artifact from an earlier epoch: reusable after patching.
    Stale,
    /// No artifact (never computed, or invalidated).
    Empty,
}

/// An ingestion-epoch-keyed slot for one query artifact.
///
/// `T` is whatever the owning colorer reuses between queries — a patched
/// degree census and per-phase colorings (alg2), a decoded-sketch mirror
/// graph plus greedy state (alg3), a dirty-repairable coloring
/// (store-all), per-block sub-colorings (bg18), or a conflict-graph
/// mirror (bcg20).
#[derive(Debug, Clone)]
pub struct QueryCache<T> {
    /// Current ingestion epoch: total edges accepted by the colorer.
    epoch: u64,
    /// The artifact and the epoch it was computed at.
    entry: Option<(u64, T)>,
    stats: CacheStats,
}

impl<T> Default for QueryCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> QueryCache<T> {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        Self { epoch: 0, entry: None, stats: CacheStats::default() }
    }

    /// The current ingestion epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the ingestion epoch by `edges` ticks. Colorers call this
    /// from `process`/`process_batch`; a query artifact computed before
    /// the bump becomes [`CacheState::Stale`].
    #[inline]
    pub fn advance(&mut self, edges: u64) {
        self.epoch += edges;
    }

    /// Classifies the artifact against the current epoch.
    pub fn state(&self) -> CacheState {
        match &self.entry {
            Some((at, _)) if *at == self.epoch => CacheState::Fresh,
            Some(_) => CacheState::Stale,
            None => CacheState::Empty,
        }
    }

    /// The fresh artifact, recording a cache **hit** — or `None` (and no
    /// stat) if the artifact is stale or missing.
    pub fn fresh(&mut self) -> Option<&T> {
        match self.state() {
            CacheState::Fresh => {
                self.stats.hits += 1;
                self.entry.as_ref().map(|(_, a)| a)
            }
            _ => None,
        }
    }

    /// Takes the artifact out for patching, recording a **patch** and
    /// returning `(epoch_computed_at, artifact)` — or `None` (and a
    /// recorded **miss**) if the cache is empty. Callers re-install the
    /// patched artifact with [`QueryCache::install`].
    pub fn take_for_patch(&mut self) -> Option<(u64, T)> {
        match self.entry.take() {
            Some(e) => {
                self.stats.patches += 1;
                Some(e)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `artifact` stamped with the current epoch.
    pub fn install(&mut self, artifact: T) {
        self.entry = Some((self.epoch, artifact));
    }

    /// Records that a patch-path query recolored `vertices` vertices
    /// (accumulated into [`CacheStats::patched_vertices`]). Colorers call
    /// this with the dirty-frontier size right after a repair.
    #[inline]
    pub fn note_patched(&mut self, vertices: u64) {
        self.stats.patched_vertices += vertices;
    }

    /// Resets the cache to `epoch` with no artifact and zeroed stats —
    /// the session-restore path. The epoch must be restored exactly
    /// (it counts total ingested edges, and canonical state re-encoding
    /// depends on it); the artifact is deliberately left cold, which is
    /// observationally sound because the incremental path must equal
    /// the from-scratch [`query`](crate::StreamingColorer::query) at
    /// every prefix. Stats are harness bookkeeping outside the
    /// determinism law and start over.
    pub fn restore_at_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.entry = None;
        self.stats = CacheStats::default();
    }

    /// Drops the artifact (recording an invalidation if one existed).
    /// The epoch keeps counting — invalidation only forgets the answer,
    /// not how much stream went by.
    pub fn invalidate(&mut self) {
        if self.entry.take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Mutable access to the artifact regardless of freshness (for
    /// colorers that patch in place instead of taking). Records nothing.
    pub fn artifact_mut(&mut self) -> Option<(u64, &mut T)> {
        self.entry.as_mut().map(|(at, a)| (*at, a))
    }

    /// Outcome counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_fresh_stale_empty() {
        let mut c: QueryCache<String> = QueryCache::new();
        assert_eq!(c.state(), CacheState::Empty);
        assert_eq!(c.epoch(), 0);

        c.install("first".to_string());
        assert_eq!(c.state(), CacheState::Fresh);
        assert_eq!(c.fresh().map(String::as_str), Some("first"));

        c.advance(3);
        assert_eq!(c.epoch(), 3);
        assert_eq!(c.state(), CacheState::Stale);
        assert!(c.fresh().is_none(), "stale artifacts are not hits");

        let (at, art) = c.take_for_patch().expect("stale entry is patchable");
        assert_eq!((at, art.as_str()), (0, "first"));
        assert_eq!(c.state(), CacheState::Empty);

        c.install("patched".to_string());
        assert_eq!(c.state(), CacheState::Fresh);
    }

    #[test]
    fn stats_count_each_outcome_once() {
        let mut c: QueryCache<u32> = QueryCache::new();
        assert!(c.take_for_patch().is_none()); // miss
        c.install(1);
        assert!(c.fresh().is_some()); // hit
        c.advance(1);
        assert!(c.take_for_patch().is_some()); // patch
        c.install(2);
        c.note_patched(5);
        c.note_patched(2);
        c.invalidate(); // invalidation
        c.invalidate(); // no-op: nothing left to drop
        let s = c.stats();
        assert_eq!((s.hits, s.patches, s.misses, s.invalidations), (1, 1, 1, 1), "stats: {s:?}");
        assert_eq!(s.patched_vertices, 7);
        assert_eq!(s.queries(), 3);
        assert!((s.reuse_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalidation_keeps_the_epoch() {
        let mut c: QueryCache<u32> = QueryCache::new();
        c.advance(10);
        c.install(7);
        c.invalidate();
        assert_eq!(c.epoch(), 10);
        assert_eq!(c.state(), CacheState::Empty);
    }

    #[test]
    fn empty_stats_are_zero() {
        let c: QueryCache<u32> = QueryCache::new();
        assert_eq!(c.stats().queries(), 0);
        assert_eq!(c.stats().reuse_rate(), 0.0);
    }
}
