//! Multiplicity tracking for turnstile streams.
//!
//! A dynamic (insert/delete) stream is only well-formed if every deletion
//! removes an edge that is currently present: the turnstile model of the
//! sparse-recovery literature requires multiplicities to stay
//! non-negative, and a deletion of a never-inserted edge is almost always
//! a producer bug. [`DynamicSupport`] is the engine-side referee for that
//! policy — it tracks the multiplicity of every edge the session has
//! accepted and rejects an under-flowing deletion *loudly, naming the
//! edge*, before the token ever reaches a colorer.
//!
//! It is **harness bookkeeping**, not algorithm state: sessions maintain
//! it only for colorers that
//! [`supports_deletions`](crate::StreamingColorer::supports_deletions),
//! and it is never charged to any colorer's
//! [`SpaceMeter`](crate::SpaceMeter) (the whole point of a sketch-based
//! dynamic colorer is that *it* does not store the support — the referee
//! may).

use crate::token::{Sign, SignedEdge};
use sc_graph::Edge;
use std::collections::BTreeMap;

/// The live edge multiset of a turnstile stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynamicSupport {
    /// Multiplicity per edge; entries are strictly positive (an edge
    /// deleted down to zero leaves the map, keeping the encoding
    /// canonical).
    counts: BTreeMap<Edge, u64>,
    /// Total multiplicity (sum over `counts`).
    total: u64,
}

impl DynamicSupport {
    /// An empty support.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct live edges (the `L0` norm).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total multiplicity (the `L1` norm).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Multiplicity of one edge (0 if absent).
    pub fn multiplicity(&self, e: Edge) -> u64 {
        self.counts.get(&e).copied().unwrap_or(0)
    }

    /// The distinct live edges in ascending order.
    pub fn live_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.counts.keys().copied()
    }

    /// Applies one token.
    ///
    /// # Errors
    /// A deletion of an edge with multiplicity 0 errors, naming the edge
    /// — the documented never-inserted-deletion policy. The support is
    /// unchanged on error.
    pub fn apply(&mut self, t: SignedEdge) -> Result<(), String> {
        match t.sign {
            Sign::Insert => {
                *self.counts.entry(t.edge).or_insert(0) += 1;
                self.total += 1;
                Ok(())
            }
            Sign::Delete => match self.counts.get_mut(&t.edge) {
                Some(c) if *c > 1 => {
                    *c -= 1;
                    self.total -= 1;
                    Ok(())
                }
                Some(_) => {
                    self.counts.remove(&t.edge);
                    self.total -= 1;
                    Ok(())
                }
                None => Err(format!(
                    "delete of edge {} which was never inserted (multiplicity 0)",
                    t.edge
                )),
            },
        }
    }

    /// Validates and applies a whole token slice **atomically**: either
    /// every token is applied, or none is and the error names the first
    /// offending deletion. Internal insert-then-delete sequences within
    /// the slice are legal (the overlay sees them in order).
    pub fn apply_all(&mut self, tokens: &[SignedEdge]) -> Result<(), String> {
        // Dry-run against an overlay of net deltas so a failed batch
        // leaves the support untouched (the service protocol promises
        // request atomicity).
        let mut overlay: BTreeMap<Edge, i64> = BTreeMap::new();
        for t in tokens {
            let delta = overlay.entry(t.edge).or_insert(0);
            if t.sign == Sign::Delete && self.multiplicity(t.edge) as i64 + *delta <= 0 {
                return Err(format!(
                    "delete of edge {} which was never inserted (multiplicity 0)",
                    t.edge
                ));
            }
            *delta += t.sign.unit();
        }
        for t in tokens {
            self.apply(*t).expect("validated above");
        }
        Ok(())
    }

    /// Canonical encoding: `"0-1:2 2-3:1"` — ascending `u-v:multiplicity`
    /// entries, space-joined, empty string for an empty support. Free of
    /// `;` and `=`, so it embeds in [`crate::state`] blobs.
    pub fn encode(&self) -> String {
        let parts: Vec<String> =
            self.counts.iter().map(|(e, c)| format!("{}-{}:{}", e.u(), e.v(), c)).collect();
        parts.join(" ")
    }

    /// Decodes an [`DynamicSupport::encode`] string, validating endpoints
    /// against `n` and multiplicities against zero.
    ///
    /// # Errors
    /// Names the malformed entry.
    pub fn decode(text: &str, n: usize) -> Result<Self, String> {
        let mut support = Self::new();
        if text.is_empty() {
            return Ok(support);
        }
        for part in text.split(' ') {
            let (edge, count) =
                part.split_once(':').ok_or(format!("support entry {part:?} is not u-v:count"))?;
            let edges = crate::state::decode_edge_list(edge, n)
                .map_err(|e| format!("support entry {part:?}: {e}"))?;
            let [e] = edges[..] else {
                return Err(format!("support entry {part:?} is not a single edge"));
            };
            let count: u64 =
                count.parse().map_err(|err| format!("support entry {part:?}: {err}"))?;
            if count == 0 {
                return Err(format!("support entry {part:?} has multiplicity 0"));
            }
            if support.counts.insert(e, count).is_some() {
                return Err(format!("support entry {part:?} duplicates edge {e}"));
            }
            support.total += count;
        }
        Ok(support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(u, v)
    }

    #[test]
    fn inserts_and_deletes_track_multiplicity() {
        let mut s = DynamicSupport::new();
        s.apply(SignedEdge::insert(e(0, 1))).unwrap();
        s.apply(SignedEdge::insert(e(0, 1))).unwrap();
        s.apply(SignedEdge::insert(e(1, 2))).unwrap();
        assert_eq!(s.multiplicity(e(0, 1)), 2);
        assert_eq!((s.distinct(), s.total()), (2, 3));
        s.apply(SignedEdge::delete(e(0, 1))).unwrap();
        assert_eq!(s.multiplicity(e(0, 1)), 1);
        s.apply(SignedEdge::delete(e(0, 1))).unwrap();
        assert_eq!(s.multiplicity(e(0, 1)), 0);
        assert_eq!(s.live_edges().collect::<Vec<_>>(), vec![e(1, 2)]);
    }

    #[test]
    fn underflow_deletion_names_the_edge() {
        let mut s = DynamicSupport::new();
        let err = s.apply(SignedEdge::delete(e(3, 7))).unwrap_err();
        assert!(err.contains("(3, 7)") && err.contains("never inserted"), "{err}");
        assert_eq!(s, DynamicSupport::new(), "failed delete must not change the support");
    }

    #[test]
    fn batch_application_is_atomic() {
        let mut s = DynamicSupport::new();
        s.apply(SignedEdge::insert(e(0, 1))).unwrap();
        let before = s.clone();
        let err = s
            .apply_all(&[
                SignedEdge::insert(e(1, 2)),
                SignedEdge::delete(e(1, 2)),
                SignedEdge::delete(e(1, 2)), // underflows after the in-batch delete
            ])
            .unwrap_err();
        assert!(err.contains("(1, 2)"), "{err}");
        assert_eq!(s, before, "failed batch must roll back entirely");
        s.apply_all(&[SignedEdge::insert(e(1, 2)), SignedEdge::delete(e(0, 1))]).unwrap();
        assert_eq!(s.live_edges().collect::<Vec<_>>(), vec![e(1, 2)]);
    }

    #[test]
    fn encoding_is_canonical_and_round_trips() {
        let mut s = DynamicSupport::new();
        for t in [
            SignedEdge::insert(e(2, 3)),
            SignedEdge::insert(e(0, 1)),
            SignedEdge::insert(e(0, 1)),
        ] {
            s.apply(t).unwrap();
        }
        let text = s.encode();
        assert_eq!(text, "0-1:2 2-3:1", "ascending, multiplicity-tagged");
        let back = DynamicSupport::decode(&text, 4).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.encode(), text);
        assert_eq!(DynamicSupport::decode("", 4).unwrap(), DynamicSupport::new());
    }

    #[test]
    fn decode_rejects_malformed_entries() {
        for bad in ["0-1", "0-1:0", "0-1:x", "9-1:1", "0-1:1 0-1:2", "0:1:1"] {
            assert!(DynamicSupport::decode(bad, 5).is_err(), "{bad:?} must not decode");
        }
    }
}
