//! Canonical `key=value;` state codec for colorer snapshots.
//!
//! The persistence subsystem serializes every colorer's *mutable*
//! algorithm state — stored edges, epoch counters, space meters — so a
//! session can be snapshotted, evicted to disk, or migrated between
//! service endpoints and then resumed **mid-stream-exact**. Constructor
//! parameters (`n`, `∆`, seed, spec knobs) are *not* part of a state
//! blob: the restoring side rebuilds the colorer from its
//! `ColorerSpec` and then replays the mutable state into it, so the
//! wire vocabulary of `open` and `restore` never fork.
//!
//! The format follows the existing compact wire convention of
//! [`EngineConfig::wire_encode`](crate::EngineConfig::wire_encode):
//! `;`-separated `key=value` fields in a **fixed order** per colorer.
//! Encoding is canonical — re-encoding a decoded state reproduces the
//! exact bytes — and decoding is sequential and total: every field is
//! demanded by name, every parse failure names the offending key, and
//! trailing/unknown keys are rejected (naming the first offender), so
//! truncated or typo'd blobs fail loudly instead of restoring a
//! half-session.

use crate::token::{Sign, SignedEdge};
use sc_graph::Edge;

/// Builds a canonical state string field by field.
#[derive(Debug, Default)]
pub struct StateWriter {
    out: String,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `key=value`. Values must not contain `;` or `=` (the
    /// separators); every vocabulary used by the colorers — edge lists,
    /// `,`-joined counters, `|`-joined sub-lists, `-` for ⊥ — is free of
    /// both by construction.
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        let value = value.to_string();
        debug_assert!(
            !value.contains(';') && !value.contains('='),
            "state value for {key:?} contains a separator: {value:?}"
        );
        if !self.out.is_empty() {
            self.out.push(';');
        }
        self.out.push_str(key);
        self.out.push('=');
        self.out.push_str(&value);
        self
    }

    /// Appends an edge-list field (see [`encode_edge_list`]).
    pub fn edges(&mut self, key: &str, edges: &[Edge]) -> &mut Self {
        self.field(key, encode_edge_list(edges))
    }

    /// The finished canonical string.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Sequentially consumes a [`StateWriter`]-produced string, demanding
/// each field by name.
#[derive(Debug)]
pub struct StateReader<'a> {
    parts: std::iter::Peekable<std::str::Split<'a, char>>,
}

impl<'a> StateReader<'a> {
    /// A reader over `text`.
    pub fn new(text: &'a str) -> Self {
        Self { parts: text.split(';').peekable() }
    }

    /// The next field, which must be named `key`; returns its raw value.
    ///
    /// # Errors
    /// Names the expected key on truncation and both keys on mismatch.
    pub fn expect(&mut self, key: &str) -> Result<&'a str, String> {
        let part = self
            .parts
            .next()
            .filter(|p| !p.is_empty())
            .ok_or_else(|| format!("state: truncated before key {key:?}"))?;
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("state: {part:?} is not key=value (expected {key:?})"))?;
        if k != key {
            return Err(format!("state: expected key {key:?}, found {k:?}"));
        }
        Ok(v)
    }

    /// The next field as a `u64`.
    pub fn u64_field(&mut self, key: &str) -> Result<u64, String> {
        let v = self.expect(key)?;
        v.parse().map_err(|e| format!("state: {key}={v:?}: {e}"))
    }

    /// The next field as a `usize`.
    pub fn usize_field(&mut self, key: &str) -> Result<usize, String> {
        let v = self.expect(key)?;
        v.parse().map_err(|e| format!("state: {key}={v:?}: {e}"))
    }

    /// The next field as an edge list over vertex ids below `n`.
    pub fn edges_field(&mut self, key: &str, n: usize) -> Result<Vec<Edge>, String> {
        let v = self.expect(key)?;
        decode_edge_list(v, n).map_err(|e| format!("state: {key}: {e}"))
    }

    /// Asserts the input is exhausted, naming the first leftover key.
    pub fn done(mut self) -> Result<(), String> {
        match self.parts.next().filter(|p| !p.is_empty()) {
            None => Ok(()),
            Some(part) => {
                let key = part.split('=').next().unwrap_or(part);
                Err(format!("state: unknown trailing key {key:?}"))
            }
        }
    }
}

/// Encodes edges as `"0-1 0-2"` (space-separated `u-v` pairs; empty
/// string for no edges) — the same vocabulary `sc_engine::wire` uses on
/// the service protocol, duplicated here because this crate sits below
/// it in the dependency order.
pub fn encode_edge_list(edges: &[Edge]) -> String {
    let mut out = String::new();
    for (i, e) in edges.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&format!("{}-{}", e.u(), e.v()));
    }
    out
}

/// Decodes an [`encode_edge_list`] string, validating every endpoint
/// against `n`.
pub fn decode_edge_list(text: &str, n: usize) -> Result<Vec<Edge>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(' ')
        .map(|pair| {
            let (u, v) = pair.split_once('-').ok_or(format!("edge {pair:?} is not u-v"))?;
            let u: u32 = u.parse().map_err(|e| format!("edge {pair:?}: {e}"))?;
            let v: u32 = v.parse().map_err(|e| format!("edge {pair:?}: {e}"))?;
            if u.max(v) as usize >= n {
                return Err(format!("edge {pair:?} out of range for n={n}"));
            }
            Ok(Edge::new(u, v))
        })
        .collect()
}

/// Encodes signed tokens as `"+0-1 -0-1"` (space-separated, each `u-v`
/// pair prefixed by its sign glyph; empty string for none) — the signed
/// extension of [`encode_edge_list`], shared by the engine snapshot and
/// the service wire vocabularies.
pub fn encode_signed_list(tokens: &[SignedEdge]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push(t.sign.glyph());
        out.push_str(&format!("{}-{}", t.edge.u(), t.edge.v()));
    }
    out
}

/// Decodes an [`encode_signed_list`] string, validating every endpoint
/// against `n`. A bare `u-v` token (no glyph) is an insertion, so every
/// [`encode_edge_list`] string also decodes here.
pub fn decode_signed_list(text: &str, n: usize) -> Result<Vec<SignedEdge>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(' ')
        .map(|tok| {
            let (sign, pair) = match tok.strip_prefix('+') {
                Some(rest) => (Sign::Insert, rest),
                None => match tok.strip_prefix('-') {
                    Some(rest) => (Sign::Delete, rest),
                    None => (Sign::Insert, tok),
                },
            };
            let edges = decode_edge_list(pair, n).map_err(|e| format!("token {tok:?}: {e}"))?;
            let [edge] = edges[..] else {
                return Err(format!("token {tok:?} is not a single signed edge"));
            };
            Ok(SignedEdge { edge, sign })
        })
        .collect()
}

/// Encodes counters as `"0,3,1"` (`,`-joined; empty string for none).
pub fn encode_u64_list(values: &[u64]) -> String {
    values.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

/// Decodes an [`encode_u64_list`] string.
pub fn decode_u64_list(text: &str) -> Result<Vec<u64>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',').map(|v| v.parse().map_err(|e| format!("counter {v:?}: {e}"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_lists_round_trip() {
        let vals = vec![0u64, 3, 17, u64::MAX];
        assert_eq!(decode_u64_list(&encode_u64_list(&vals)).unwrap(), vals);
        assert_eq!(decode_u64_list("").unwrap(), Vec::<u64>::new());
        assert!(decode_u64_list("1,x").is_err());
    }

    #[test]
    fn round_trips_field_by_field() {
        let mut w = StateWriter::new();
        w.field("algo", "toy").field("curr", 3u64).edges("buf", &[Edge::new(0, 1)]);
        let text = w.finish();
        assert_eq!(text, "algo=toy;curr=3;buf=0-1");
        let mut r = StateReader::new(&text);
        assert_eq!(r.expect("algo").unwrap(), "toy");
        assert_eq!(r.u64_field("curr").unwrap(), 3);
        assert_eq!(r.edges_field("buf", 2).unwrap(), vec![Edge::new(0, 1)]);
        r.done().unwrap();
    }

    #[test]
    fn errors_name_the_offending_key() {
        let mut r = StateReader::new("algo=toy");
        r.expect("algo").unwrap();
        let err = r.u64_field("curr").unwrap_err();
        assert!(err.contains("curr"), "{err}");

        let mut r = StateReader::new("algo=toy;currr=3");
        r.expect("algo").unwrap();
        let err = r.u64_field("curr").unwrap_err();
        assert!(err.contains("curr") && err.contains("currr"), "{err}");

        let mut r = StateReader::new("algo=toy;bogus=1");
        r.expect("algo").unwrap();
        let err = r.done().unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn signed_lists_round_trip_and_validate() {
        let tokens = vec![
            SignedEdge::insert(Edge::new(0, 1)),
            SignedEdge::delete(Edge::new(0, 1)),
            SignedEdge::insert(Edge::new(2, 5)),
        ];
        let text = encode_signed_list(&tokens);
        assert_eq!(text, "+0-1 -0-1 +2-5");
        assert_eq!(decode_signed_list(&text, 6).unwrap(), tokens);
        // Bare edge lists decode as insertions (backward vocabulary).
        assert_eq!(
            decode_signed_list("0-1 2-5", 6).unwrap(),
            vec![SignedEdge::insert(Edge::new(0, 1)), SignedEdge::insert(Edge::new(2, 5))]
        );
        assert_eq!(decode_signed_list("", 6).unwrap(), Vec::new());
        assert!(decode_signed_list("+0-9", 6).is_err(), "range check applies");
        assert!(decode_signed_list("-0-x", 6).is_err());
        assert!(decode_signed_list("~0-1", 6).is_err(), "unknown glyph is not a sign");
    }

    #[test]
    fn edge_lists_round_trip_and_validate() {
        let edges = vec![Edge::new(0, 1), Edge::new(2, 5), Edge::new(1, 3)];
        let text = encode_edge_list(&edges);
        assert_eq!(decode_edge_list(&text, 6).unwrap(), edges);
        assert_eq!(decode_edge_list("", 6).unwrap(), Vec::new());
        assert!(decode_edge_list(&text, 5).is_err(), "endpoint 5 out of range");
        assert!(decode_edge_list("0-x", 6).is_err());
        assert!(decode_edge_list("01", 6).is_err());
    }
}
