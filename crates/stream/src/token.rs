//! Stream tokens.
//!
//! Theorem 2's input is "a stream consisting of, in any order, the edges of
//! `G` and `(x, L_x)` pairs" — so a token is either an edge or a color
//! list. Plain edge streams (Theorems 1, 3, 4) simply never contain
//! [`StreamItem::ColorList`] tokens.

use sc_graph::{Color, Edge, VertexId};

/// One token of a (possibly list-annotated) graph stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// An edge insertion.
    Edge(Edge),
    /// The allowed-color list `L_x` for vertex `x`.
    ColorList(VertexId, Vec<Color>),
}

impl StreamItem {
    /// The edge, if this token is one.
    #[inline]
    pub fn as_edge(&self) -> Option<Edge> {
        match self {
            StreamItem::Edge(e) => Some(*e),
            StreamItem::ColorList(..) => None,
        }
    }

    /// The `(x, L_x)` pair, if this token is one.
    #[inline]
    pub fn as_color_list(&self) -> Option<(VertexId, &[Color])> {
        match self {
            StreamItem::Edge(_) => None,
            StreamItem::ColorList(x, l) => Some((*x, l)),
        }
    }
}

impl From<Edge> for StreamItem {
    #[inline]
    fn from(e: Edge) -> Self {
        StreamItem::Edge(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = StreamItem::Edge(Edge::new(1, 2));
        assert_eq!(e.as_edge(), Some(Edge::new(1, 2)));
        assert!(e.as_color_list().is_none());

        let l = StreamItem::ColorList(3, vec![1, 4, 9]);
        assert!(l.as_edge().is_none());
        let (x, colors) = l.as_color_list().unwrap();
        assert_eq!(x, 3);
        assert_eq!(colors, &[1, 4, 9]);
    }

    #[test]
    fn from_edge() {
        let item: StreamItem = Edge::new(5, 2).into();
        assert_eq!(item, StreamItem::Edge(Edge::new(2, 5)));
    }
}
