//! Stream tokens.
//!
//! Theorem 2's input is "a stream consisting of, in any order, the edges of
//! `G` and `(x, L_x)` pairs" — so a token is either an edge or a color
//! list. Plain edge streams (Theorems 1, 3, 4) simply never contain
//! [`StreamItem::ColorList`] tokens.
//!
//! The **dynamic (turnstile) model** — the natural adversarial playground
//! of the robust-coloring line (Chakrabarti–Ghosh–Stoeckl 2021) — adds
//! *signed* edge tokens: an edge may be deleted again after insertion.
//! [`StreamItem::Deletion`] is that third token kind, and [`SignedEdge`]
//! is the `(edge, sign)` pair the dynamic engine paths traffic in.
//! Insert-only consumers keep using [`StreamItem::as_edge`], which sees
//! insertions only, so every existing law is untouched.

use sc_graph::{Color, Edge, VertexId};

/// The direction of a signed edge token: `+e` or `−e`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    /// The edge enters the graph (multiplicity `+1`).
    Insert,
    /// The edge leaves the graph (multiplicity `−1`). Deleting an edge
    /// whose multiplicity is zero is a *stream error*: the engine
    /// rejects it loudly, naming the edge (see
    /// [`DynamicSupport`](crate::DynamicSupport)).
    Delete,
}

impl Sign {
    /// `+1` for insert, `−1` for delete (the turnstile increment).
    #[inline]
    pub fn unit(self) -> i64 {
        match self {
            Sign::Insert => 1,
            Sign::Delete => -1,
        }
    }

    /// The wire glyph: `"+"` / `"-"`.
    #[inline]
    pub fn glyph(self) -> char {
        match self {
            Sign::Insert => '+',
            Sign::Delete => '-',
        }
    }
}

impl std::fmt::Display for Sign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.glyph())
    }
}

/// One turnstile token: an edge together with its [`Sign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignedEdge {
    /// The (normalized) edge.
    pub edge: Edge,
    /// Insert or delete.
    pub sign: Sign,
}

impl SignedEdge {
    /// An insertion token.
    #[inline]
    pub fn insert(edge: Edge) -> Self {
        Self { edge, sign: Sign::Insert }
    }

    /// A deletion token.
    #[inline]
    pub fn delete(edge: Edge) -> Self {
        Self { edge, sign: Sign::Delete }
    }

    /// Whether this token is an insertion.
    #[inline]
    pub fn is_insert(&self) -> bool {
        self.sign == Sign::Insert
    }
}

impl std::fmt::Display for SignedEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.sign, self.edge)
    }
}

impl From<Edge> for SignedEdge {
    #[inline]
    fn from(e: Edge) -> Self {
        SignedEdge::insert(e)
    }
}

/// One token of a (possibly list-annotated, possibly turnstile) graph
/// stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamItem {
    /// An edge insertion.
    Edge(Edge),
    /// An edge deletion (turnstile streams only).
    Deletion(Edge),
    /// The allowed-color list `L_x` for vertex `x`.
    ColorList(VertexId, Vec<Color>),
}

impl StreamItem {
    /// The edge, if this token is an **insertion**. Deletions answer
    /// `None` here: insert-only consumers written against this accessor
    /// never see a deletion as an insertion by accident (the engine's
    /// signed path routes deletions explicitly).
    #[inline]
    pub fn as_edge(&self) -> Option<Edge> {
        match self {
            StreamItem::Edge(e) => Some(*e),
            StreamItem::Deletion(_) | StreamItem::ColorList(..) => None,
        }
    }

    /// The signed form, if this token is an edge token of either sign.
    #[inline]
    pub fn as_signed(&self) -> Option<SignedEdge> {
        match self {
            StreamItem::Edge(e) => Some(SignedEdge::insert(*e)),
            StreamItem::Deletion(e) => Some(SignedEdge::delete(*e)),
            StreamItem::ColorList(..) => None,
        }
    }

    /// The `(x, L_x)` pair, if this token is one.
    #[inline]
    pub fn as_color_list(&self) -> Option<(VertexId, &[Color])> {
        match self {
            StreamItem::Edge(_) | StreamItem::Deletion(_) => None,
            StreamItem::ColorList(x, l) => Some((*x, l)),
        }
    }
}

impl From<Edge> for StreamItem {
    #[inline]
    fn from(e: Edge) -> Self {
        StreamItem::Edge(e)
    }
}

impl From<SignedEdge> for StreamItem {
    #[inline]
    fn from(t: SignedEdge) -> Self {
        match t.sign {
            Sign::Insert => StreamItem::Edge(t.edge),
            Sign::Delete => StreamItem::Deletion(t.edge),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = StreamItem::Edge(Edge::new(1, 2));
        assert_eq!(e.as_edge(), Some(Edge::new(1, 2)));
        assert!(e.as_color_list().is_none());

        let l = StreamItem::ColorList(3, vec![1, 4, 9]);
        assert!(l.as_edge().is_none());
        assert!(l.as_signed().is_none());
        let (x, colors) = l.as_color_list().unwrap();
        assert_eq!(x, 3);
        assert_eq!(colors, &[1, 4, 9]);
    }

    #[test]
    fn from_edge() {
        let item: StreamItem = Edge::new(5, 2).into();
        assert_eq!(item, StreamItem::Edge(Edge::new(2, 5)));
    }

    #[test]
    fn deletions_are_not_insertions() {
        let d = StreamItem::Deletion(Edge::new(0, 4));
        assert_eq!(d.as_edge(), None, "as_edge sees insertions only");
        assert_eq!(d.as_signed(), Some(SignedEdge::delete(Edge::new(0, 4))));
        assert!(d.as_color_list().is_none());
    }

    #[test]
    fn signed_round_trips_through_items() {
        for t in [SignedEdge::insert(Edge::new(1, 2)), SignedEdge::delete(Edge::new(3, 4))] {
            let item: StreamItem = t.into();
            assert_eq!(item.as_signed(), Some(t));
        }
    }

    #[test]
    fn sign_units_and_display() {
        assert_eq!(Sign::Insert.unit(), 1);
        assert_eq!(Sign::Delete.unit(), -1);
        assert_eq!(SignedEdge::insert(Edge::new(0, 1)).to_string(), "+(0, 1)");
        assert_eq!(SignedEdge::delete(Edge::new(0, 1)).to_string(), "-(0, 1)");
    }
}
