//! The batched streaming engine.
//!
//! The adversarially robust setting (paper §4, and
//! Chakrabarti–Ghosh–Stoeckl 2021) is a game over *stream prefixes*: an
//! algorithm must be able to answer [`StreamingColorer::query`] after any
//! prefix, and experiments measure it at many prefixes. [`StreamEngine`]
//! makes the prefix the unit of ingestion: it owns
//!
//! * **chunking** — edges are fed through
//!   [`StreamingColorer::process_batch`] in [`EngineConfig::chunk_size`]
//!   slices, letting colorers amortize hashing and candidate-census work
//!   (chunking never changes results: batched and per-edge ingestion are
//!   observationally identical, a law the workspace property-tests);
//! * **pass counting** — [`StreamEngine::run_source`] wraps sources in a
//!   [`PassCounter`] so multi-pass consumers report realized passes;
//! * **space metering** — reports carry the colorer's self-reported peak
//!   ([`StreamingColorer::peak_space_bits`]) at every observation point;
//! * **checkpointed mid-stream queries** — a [`QuerySchedule`] names the
//!   prefixes at which the engine snapshots [`Checkpoint`]s; chunk
//!   boundaries are split as needed so a checkpoint lands exactly on its
//!   prefix.
//!
//! Interactive consumers (the adversarial game, where the next edge
//! depends on the last output) drive an [`EngineSession`] instead, which
//! exposes the same chunk-and-checkpoint machinery one edge at a time.

use crate::colorer::StreamingColorer;
use crate::source::{PassCounter, StreamSource};
use crate::support::DynamicSupport;
use crate::token::{Sign, SignedEdge};
use sc_graph::{Coloring, Edge};
use std::time::{Duration, Instant};

/// How an engine run ingests and observes a stream.
///
/// Only single-pass [`StreamingColorer`] runs are driven by this config;
/// multi-pass and offline algorithms own their pass structure, so
/// scenario layers ignore it for those (and produce no checkpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Edges per [`StreamingColorer::process_batch`] call. `1` degrades
    /// to per-edge ingestion; the default (256) amortizes per-chunk work
    /// without distorting checkpoint granularity.
    pub chunk_size: usize,
    /// Which stream prefixes to snapshot mid-stream.
    pub schedule: QuerySchedule,
    /// Whether queries go through the epoch-keyed incremental path
    /// ([`StreamingColorer::query_incremental`], the default) or always
    /// rebuild from scratch ([`StreamingColorer::query`]). The two are
    /// observationally identical by the colorer contract; the switch
    /// exists so benchmarks and CI can measure one against the other.
    pub incremental: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { chunk_size: 256, schedule: QuerySchedule::FinalOnly, incremental: true }
    }
}

impl EngineConfig {
    /// Per-edge ingestion, final query only (the classic harness loop).
    pub fn per_edge() -> Self {
        Self { chunk_size: 1, ..Self::default() }
    }

    /// Batched ingestion with the given chunk size, final query only.
    pub fn batched(chunk_size: usize) -> Self {
        Self { chunk_size: chunk_size.max(1), ..Self::default() }
    }

    /// Sets the checkpoint schedule.
    pub fn with_schedule(mut self, schedule: QuerySchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Forces every query through the from-scratch path (the incremental
    /// path's comparison baseline).
    pub fn scratch_queries(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Encodes the configuration as a compact, self-delimiting string
    /// (`"chunk=256;schedule=every:10;incremental=true"`) for embedding
    /// in flat-JSON wire objects (`sc_engine::shard` spec files). The
    /// exact inverse of [`EngineConfig::wire_decode`].
    pub fn wire_encode(&self) -> String {
        format!(
            "chunk={};schedule={};incremental={}",
            self.chunk_size,
            self.schedule.wire_encode(),
            self.incremental
        )
    }

    /// Decodes a [`EngineConfig::wire_encode`] string.
    ///
    /// # Errors
    /// Returns a human-readable message naming the malformed part.
    pub fn wire_decode(text: &str) -> Result<Self, String> {
        let mut chunk_size = None;
        let mut schedule = None;
        let mut incremental = None;
        for part in text.split(';') {
            let (key, value) =
                part.split_once('=').ok_or(format!("engine config: {part:?} is not key=value"))?;
            match key {
                "chunk" => {
                    chunk_size = Some(
                        value.parse().map_err(|e| format!("engine config chunk {value:?}: {e}"))?,
                    )
                }
                "schedule" => schedule = Some(QuerySchedule::wire_decode(value)?),
                "incremental" => {
                    incremental = Some(
                        value
                            .parse()
                            .map_err(|e| format!("engine config incremental {value:?}: {e}"))?,
                    )
                }
                other => return Err(format!("engine config: unknown key {other:?}")),
            }
        }
        Ok(Self {
            chunk_size: chunk_size.ok_or("engine config: missing chunk")?,
            schedule: schedule.ok_or("engine config: missing schedule")?,
            incremental: incremental.ok_or("engine config: missing incremental")?,
        })
    }
}

/// Which prefixes of the stream get a mid-stream [`Checkpoint`].
///
/// Deterministic behavior for irregular requests (tested in this
/// module):
///
/// * **Out-of-order prefixes** — `AtPrefixes` lists may come in any
///   order; checkpoints always fire in ascending prefix order.
/// * **Duplicated prefixes** — each requested prefix checkpoints at most
///   once; duplicates collapse.
/// * **Past end-of-stream** — prefixes longer than the stream (and an
///   `EveryEdges` period with a partial final window) are silently
///   ignored; the final query in [`EngineReport::final_coloring`] covers
///   the true stream end.
/// * **Prefix 0 / period 0** — a requested prefix of `0` never fires (the
///   empty prefix is observable via [`EngineSession::observe`] before any
///   push); `EveryEdges(0)` is treated as `EveryEdges(1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySchedule {
    /// No mid-stream queries; only the final coloring is produced.
    FinalOnly,
    /// Checkpoint after every `k` edges (`k ≥ 1`).
    EveryEdges(usize),
    /// Checkpoint after exactly these prefix lengths (any order;
    /// duplicate and out-of-range entries are ignored).
    AtPrefixes(Vec<usize>),
}

impl QuerySchedule {
    /// Encodes the schedule as a compact string: `"final"`, `"every:K"`,
    /// or `"at:5,17,25"` (`"at:"` for an empty list). The exact inverse
    /// of [`QuerySchedule::wire_decode`].
    pub fn wire_encode(&self) -> String {
        match self {
            QuerySchedule::FinalOnly => "final".to_string(),
            QuerySchedule::EveryEdges(k) => format!("every:{k}"),
            QuerySchedule::AtPrefixes(ps) => {
                let list: Vec<String> = ps.iter().map(usize::to_string).collect();
                format!("at:{}", list.join(","))
            }
        }
    }

    /// Decodes a [`QuerySchedule::wire_encode`] string.
    ///
    /// # Errors
    /// Returns a human-readable message naming the malformed part.
    pub fn wire_decode(text: &str) -> Result<Self, String> {
        if text == "final" {
            return Ok(QuerySchedule::FinalOnly);
        }
        if let Some(k) = text.strip_prefix("every:") {
            return k
                .parse()
                .map(QuerySchedule::EveryEdges)
                .map_err(|e| format!("schedule period {k:?}: {e}"));
        }
        if let Some(list) = text.strip_prefix("at:") {
            if list.is_empty() {
                return Ok(QuerySchedule::AtPrefixes(Vec::new()));
            }
            let ps: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
            return ps
                .map(QuerySchedule::AtPrefixes)
                .map_err(|e| format!("schedule prefixes {list:?}: {e}"));
        }
        Err(format!("unknown schedule {text:?} (want final | every:K | at:p1,p2,…)"))
    }

    /// The next scheduled prefix strictly greater than `done`, if any.
    fn next_after(&self, done: usize) -> Option<usize> {
        match self {
            QuerySchedule::FinalOnly => None,
            QuerySchedule::EveryEdges(k) => {
                let k = (*k).max(1);
                Some((done / k + 1) * k)
            }
            QuerySchedule::AtPrefixes(ps) => {
                // Min over all remaining prefixes, so unsorted lists
                // still checkpoint at every requested point.
                ps.iter().copied().filter(|&p| p > done).min()
            }
        }
    }
}

/// A mid-stream observation: the coloring and accounting after a prefix.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Number of tokens ingested when the query ran (for turnstile
    /// streams, deletions count as tokens too).
    pub prefix_len: usize,
    /// The colorer's answer for the graph-so-far.
    pub coloring: Coloring,
    /// Self-reported peak space at this point, in bits.
    pub space_bits: u64,
    /// Distinct colors in this answer.
    pub colors: usize,
}

/// The outcome of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Total tokens ingested (edges; plus deletions on signed runs).
    pub edges: usize,
    /// Colorer feed calls made (chunks, after checkpoint and sign-run
    /// splitting).
    pub chunks: usize,
    /// Passes started on the source (1 for a slice run).
    pub passes: u64,
    /// The final coloring.
    pub final_coloring: Coloring,
    /// Final self-reported peak space in bits.
    pub peak_space_bits: u64,
    /// Mid-stream checkpoints, in prefix order (excludes the final query).
    pub checkpoints: Vec<Checkpoint>,
    /// Wall-clock ingest + query time.
    pub elapsed: Duration,
}

/// Drives a [`StreamingColorer`] over a stream per an [`EngineConfig`].
#[derive(Debug, Clone, Default)]
pub struct StreamEngine {
    config: EngineConfig,
}

impl StreamEngine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Feeds `edges` through `colorer` in chunks, checkpointing per the
    /// schedule, and finishes with a final query.
    pub fn run<C: StreamingColorer + ?Sized>(
        &self,
        colorer: &mut C,
        edges: &[Edge],
    ) -> EngineReport {
        let start = Instant::now();
        let mut session = EngineSession::new(colorer, self.config.clone());
        session.push_slice(edges);
        session.finish(start)
    }

    /// Feeds a **signed** (turnstile) token stream through `colorer`,
    /// with the same chunking and checkpointing as [`StreamEngine::run`].
    ///
    /// # Errors
    /// Rejects the stream at the first malformed token, naming the
    /// offender: a deletion aimed at an insert-only colorer names the
    /// colorer and the edge; a deletion of a never-inserted edge names
    /// the edge (see [`DynamicSupport`]). Checkpoint `prefix_len`s count
    /// *tokens* (insertions and deletions alike).
    pub fn run_signed<C: StreamingColorer + ?Sized>(
        &self,
        colorer: &mut C,
        tokens: &[SignedEdge],
    ) -> Result<EngineReport, String> {
        let start = Instant::now();
        let mut session = EngineSession::new(colorer, self.config.clone());
        session.push_signed_slice(tokens)?;
        Ok(session.finish(start))
    }

    /// Like [`StreamEngine::run`] but reading one pass from a
    /// [`StreamSource`], counting it, and skipping non-edge tokens.
    /// Signed edge tokens are routed through the turnstile path.
    ///
    /// # Panics
    /// On a malformed turnstile stream (a deletion aimed at an
    /// insert-only colorer, or of a never-inserted edge): sources are
    /// trusted producers, so a bad token is a harness bug, not a
    /// recoverable condition.
    pub fn run_source<C, S>(&self, colorer: &mut C, source: &S) -> EngineReport
    where
        C: StreamingColorer + ?Sized,
        S: StreamSource + ?Sized,
    {
        let start = Instant::now();
        let counted = PassCounter::new(source);
        let mut session = EngineSession::new(colorer, self.config.clone());
        // The session's own pending buffer does the chunk assembly.
        for item in counted.pass() {
            let Some(t) = item.as_signed() else { continue };
            session
                .push_signed(t)
                .unwrap_or_else(|e| panic!("run_source: malformed turnstile stream: {e}"));
        }
        let mut report = session.finish(start);
        report.passes = counted.passes();
        report
    }
}

/// The chunk/schedule/checkpoint machinery shared by both session
/// flavors. It never owns the colorer — every method that touches one
/// takes it as an argument — which is exactly what lets the borrow-bound
/// [`EngineSession`] and the owned [`Session`] be thin wrappers over one
/// implementation instead of two drifting copies.
#[derive(Debug, Clone)]
struct SessionState {
    config: EngineConfig,
    /// Tokens accepted but not yet fed to the colorer. Insert-only
    /// pushes stage plain-insert tokens, so the two push vocabularies
    /// share one buffer and one chunking discipline.
    pending: Vec<SignedEdge>,
    /// Tokens fed to the colorer so far.
    ingested: usize,
    chunks: usize,
    checkpoints: Vec<Checkpoint>,
    /// The live-edge multiset referee, maintained only for colorers
    /// that [`StreamingColorer::supports_deletions`]. Validates every
    /// signed batch *before* staging (deleting a never-inserted edge is
    /// rejected atomically, naming the edge) and travels with
    /// snapshots. Harness bookkeeping: never charged to the colorer's
    /// space meter.
    support: Option<DynamicSupport>,
}

impl SessionState {
    fn new(config: EngineConfig, track_support: bool) -> Self {
        let cap = config.chunk_size.max(1);
        Self {
            config,
            pending: Vec::with_capacity(cap),
            ingested: 0,
            chunks: 0,
            checkpoints: Vec::new(),
            support: track_support.then(DynamicSupport::new),
        }
    }

    fn len(&self) -> usize {
        self.ingested + self.pending.len()
    }

    /// Accepts a slice of edge insertions. Complete chunks are fed
    /// through immediately; a sub-chunk tail stays staged for later
    /// pushes.
    fn push_slice<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C, edges: &[Edge]) {
        if let Some(support) = &mut self.support {
            for &e in edges {
                support.apply(SignedEdge::insert(e)).expect("insertions never underflow");
            }
        }
        self.pending.extend(edges.iter().copied().map(SignedEdge::insert));
        self.settle(colorer);
    }

    /// Accepts a slice of signed tokens, validating it **atomically**
    /// before staging anything: on error the session is unchanged.
    ///
    /// # Errors
    /// A deletion aimed at an insert-only colorer names the colorer and
    /// the edge; a deletion of a never-inserted edge names the edge
    /// (via [`DynamicSupport::apply_all`]).
    fn push_signed_slice<C: StreamingColorer + ?Sized>(
        &mut self,
        colorer: &mut C,
        tokens: &[SignedEdge],
    ) -> Result<(), String> {
        match &mut self.support {
            Some(support) => support.apply_all(tokens)?,
            None => {
                if let Some(t) = tokens.iter().find(|t| !t.is_insert()) {
                    return Err(format!(
                        "{}: insert-only colorer cannot delete edge {} \
                         (turnstile streams need a dynamic colorer)",
                        colorer.name(),
                        t.edge
                    ));
                }
            }
        }
        self.pending.extend_from_slice(tokens);
        self.settle(colorer);
        Ok(())
    }

    /// Post-staging bookkeeping shared by both push vocabularies: run
    /// covered checkpoints, then feed complete chunks through.
    fn settle<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C) {
        self.drain_schedule(colorer);
        let chunk = self.config.chunk_size.max(1);
        let complete = (self.pending.len() / chunk) * chunk;
        self.flush_first(colorer, complete);
    }

    /// Runs every checkpoint whose prefix is covered by accepted tokens.
    fn drain_schedule<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C) {
        while let Some(next) = self.config.schedule.next_after(self.ingested) {
            if next > self.len() {
                break;
            }
            let take = next - self.ingested;
            self.flush_first(colorer, take);
            self.record_checkpoint(colorer);
        }
    }

    /// Feeds the first `take` pending tokens to the colorer, in
    /// chunk-size batches. Within each chunk, maximal same-sign runs are
    /// fed together: insertion runs go through the classic
    /// [`StreamingColorer::process_batch`] (so insert-only streams keep
    /// their exact call pattern and every existing fast path), deletion
    /// runs through [`StreamingColorer::process_signed_batch`].
    fn flush_first<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C, take: usize) {
        if take == 0 {
            return;
        }
        let chunk = self.config.chunk_size.max(1);
        let mut scratch: Vec<Edge> = Vec::new();
        let mut fed = 0;
        while fed < take {
            let k = chunk.min(take - fed);
            let slice = &self.pending[fed..fed + k];
            let mut i = 0;
            while i < k {
                let sign = slice[i].sign;
                let mut j = i + 1;
                while j < k && slice[j].sign == sign {
                    j += 1;
                }
                match sign {
                    Sign::Insert => {
                        scratch.clear();
                        scratch.extend(slice[i..j].iter().map(|t| t.edge));
                        colorer.process_batch(&scratch);
                    }
                    Sign::Delete => {
                        // Every staged deletion was pre-validated against
                        // the support, so a rejection here is a colorer
                        // contract violation, not a stream error.
                        if let Err(e) = colorer.process_signed_batch(&slice[i..j]) {
                            panic!("engine: pre-validated deletion batch rejected: {e}");
                        }
                    }
                }
                self.chunks += 1;
                i = j;
            }
            fed += k;
        }
        self.pending.drain(..take);
        self.ingested += take;
    }

    fn flush<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C) {
        self.flush_first(colorer, self.pending.len());
    }

    /// Queries the ingested prefix as-is (no flush: scheduled
    /// checkpoints run mid-slice, with later edges still staged).
    /// Routed through the incremental path unless the config opts out.
    fn snapshot<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C) -> Checkpoint {
        let coloring =
            if self.config.incremental { colorer.query_incremental() } else { colorer.query() };
        let colors = coloring.num_distinct_colors();
        Checkpoint {
            prefix_len: self.ingested,
            coloring,
            space_bits: colorer.peak_space_bits(),
            colors,
        }
    }

    fn record_checkpoint<C: StreamingColorer + ?Sized>(&mut self, colorer: &mut C) {
        let cp = self.snapshot(colorer);
        self.checkpoints.push(cp);
    }

    fn finish<C: StreamingColorer + ?Sized>(
        mut self,
        colorer: &mut C,
        started_at: Instant,
    ) -> EngineReport {
        self.flush(colorer);
        let final_coloring =
            if self.config.incremental { colorer.query_incremental() } else { colorer.query() };
        EngineReport {
            edges: self.ingested,
            chunks: self.chunks,
            passes: 1,
            peak_space_bits: colorer.peak_space_bits(),
            final_coloring,
            checkpoints: self.checkpoints,
            elapsed: started_at.elapsed(),
        }
    }
}

/// Incremental engine state for *borrowing* interactive consumers (the
/// adversarial game pushes one edge per round and checkpoints after
/// each). A thin wrapper over the same machinery as the owned
/// [`Session`]; prefer `Session` for anything that stores sessions
/// (services, registries) — the borrow here pins the colorer's lifetime
/// to the caller's stack frame.
pub struct EngineSession<'a, C: StreamingColorer + ?Sized> {
    colorer: &'a mut C,
    state: SessionState,
}

impl<'a, C: StreamingColorer + ?Sized> EngineSession<'a, C> {
    /// Opens a session over `colorer`. Sessions over colorers that
    /// [`StreamingColorer::supports_deletions`] additionally maintain a
    /// [`DynamicSupport`] referee for the signed push vocabulary.
    pub fn new(colorer: &'a mut C, config: EngineConfig) -> Self {
        let track = colorer.supports_deletions();
        Self { colorer, state: SessionState::new(config, track) }
    }

    /// Tokens accepted so far (including any still pending).
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether no tokens have been accepted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live-edge multiset, for deletion-supporting colorers.
    pub fn support(&self) -> Option<&DynamicSupport> {
        self.state.support.as_ref()
    }

    /// Accepts one edge, flushing/checkpointing per the configuration.
    pub fn push(&mut self, e: Edge) {
        self.push_slice(std::slice::from_ref(&e));
    }

    /// Accepts a slice of edges. Complete chunks are fed through
    /// immediately; a sub-chunk tail stays staged for later pushes.
    pub fn push_slice(&mut self, edges: &[Edge]) {
        self.state.push_slice(self.colorer, edges);
    }

    /// Accepts one signed token (see [`EngineSession::push_signed_slice`]).
    ///
    /// # Errors
    /// As [`EngineSession::push_signed_slice`]; the session is unchanged
    /// on error.
    pub fn push_signed(&mut self, t: SignedEdge) -> Result<(), String> {
        self.push_signed_slice(std::slice::from_ref(&t))
    }

    /// Accepts a slice of signed tokens, validated **atomically** before
    /// staging: either every token is accepted or none is.
    ///
    /// # Errors
    /// A deletion aimed at an insert-only colorer names the colorer and
    /// the edge; a deletion of a never-inserted edge names the edge.
    pub fn push_signed_slice(&mut self, tokens: &[SignedEdge]) -> Result<(), String> {
        self.state.push_signed_slice(self.colorer, tokens)
    }

    /// Feeds all pending tokens to the colorer.
    pub fn flush(&mut self) {
        self.state.flush(self.colorer);
    }

    /// Flushes, queries, and records + returns a checkpoint for the
    /// current prefix.
    pub fn checkpoint(&mut self) -> &Checkpoint {
        self.flush();
        self.state.record_checkpoint(self.colorer);
        self.state.checkpoints.last().expect("checkpoint just recorded")
    }

    /// Flushes and queries the current prefix *without* recording — the
    /// adversarial game observes after every round and keeping each
    /// round's coloring would cost `O(rounds · n)` memory.
    pub fn observe(&mut self) -> Checkpoint {
        self.flush();
        self.state.snapshot(self.colorer)
    }

    /// Flushes, runs the final query, and assembles the report.
    /// `started_at` anchors the elapsed measurement (the owned
    /// [`Session`] folds this in at construction instead).
    pub fn finish(self, started_at: Instant) -> EngineReport {
        self.state.finish(self.colorer, started_at)
    }
}

/// A point-in-time capture of an owned [`Session`], taken **without**
/// flushing: the pending sub-chunk tail is carried verbatim, so a
/// restored session is mid-stream-exact — the next push sees the same
/// chunk boundaries, the same schedule position, and a colorer in the
/// same state as the uninterrupted original.
///
/// The colorer itself travels as its [`StreamingColorer::encode_state`]
/// blob; the restoring side rebuilds the colorer from its spec (which
/// is *not* captured here — the service layer owns that vocabulary)
/// and replays the blob into it.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The engine configuration in force.
    pub config: EngineConfig,
    /// Tokens accepted but not yet fed to the colorer.
    pub pending: Vec<SignedEdge>,
    /// Tokens fed to the colorer so far.
    pub ingested: usize,
    /// Colorer feed calls (`process_batch` / signed batch) made so far.
    pub chunks: usize,
    /// Checkpoints recorded so far, prefix order.
    pub checkpoints: Vec<Checkpoint>,
    /// The live-edge multiset referee, present exactly when the colorer
    /// [`StreamingColorer::supports_deletions`].
    pub support: Option<DynamicSupport>,
    /// The colorer's [`StreamingColorer::encode_state`] blob.
    pub colorer_state: String,
}

/// An owned interactive session: the colorer moves *in* at open and the
/// report moves *out* at finish, so sessions can be stored, passed
/// across threads, and multiplexed — a service can host thousands of
/// them concurrently, where the borrow-bound [`EngineSession`] could
/// host none beyond its caller's stack frame.
///
/// Timing is folded in: the construction instant anchors
/// [`EngineReport::elapsed`], so there is no `finish(started_at)`
/// argument to thread through (or to get wrong).
///
/// ```
/// use sc_stream::{EngineConfig, Session};
/// # use sc_graph::{Coloring, Edge, Graph};
/// # struct Toy(Vec<Edge>);
/// # impl sc_stream::StreamingColorer for Toy {
/// #     fn process(&mut self, e: Edge) { self.0.push(e); }
/// #     fn query(&mut self) -> Coloring {
/// #         let g = Graph::from_edges(4, self.0.iter().copied());
/// #         let mut c = Coloring::empty(4);
/// #         sc_graph::greedy_complete(&g, &mut c);
/// #         c
/// #     }
/// #     fn peak_space_bits(&self) -> u64 { 1 }
/// #     fn name(&self) -> &'static str { "toy" }
/// # }
/// let mut session = Session::new(Box::new(Toy(vec![])), EngineConfig::per_edge());
/// session.push(Edge::new(0, 1));
/// let observed = session.observe();
/// assert_eq!(observed.prefix_len, 1);
/// let report = session.finish();
/// assert_eq!(report.edges, 1);
/// ```
pub struct Session {
    colorer: crate::colorer::BoxedColorer,
    state: SessionState,
    started: Instant,
}

impl Session {
    /// Opens a session owning `colorer`, anchoring the elapsed clock now.
    /// Sessions over colorers that
    /// [`StreamingColorer::supports_deletions`] additionally maintain a
    /// [`DynamicSupport`] referee for the signed push vocabulary.
    pub fn new(colorer: crate::colorer::BoxedColorer, config: EngineConfig) -> Self {
        let track = colorer.supports_deletions();
        Self { colorer, state: SessionState::new(config, track), started: Instant::now() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EngineConfig {
        &self.state.config
    }

    /// The colorer's self-reported name.
    pub fn algo(&self) -> &'static str {
        self.colorer.name()
    }

    /// Tokens accepted so far (including any still pending).
    pub fn len(&self) -> usize {
        self.state.len()
    }

    /// Whether no tokens have been accepted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tokens accepted but not yet fed to the colorer (a sub-chunk tail).
    pub fn pending(&self) -> usize {
        self.state.pending.len()
    }

    /// The live-edge multiset, for deletion-supporting colorers.
    pub fn support(&self) -> Option<&DynamicSupport> {
        self.state.support.as_ref()
    }

    /// Colorer feed calls (`process_batch` / signed batch) made so far.
    pub fn chunks(&self) -> usize {
        self.state.chunks
    }

    /// Checkpoints recorded so far (scheduled or explicit), prefix order.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.state.checkpoints
    }

    /// The colorer's self-reported peak space in bits, as of now.
    pub fn peak_space_bits(&self) -> u64 {
        self.colorer.peak_space_bits()
    }

    /// Outcome counters of the colorer's incremental query path, if any.
    pub fn query_cache_stats(&self) -> Option<crate::CacheStats> {
        self.colorer.query_cache_stats()
    }

    /// Wall-clock time since the session opened.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Accepts one edge, flushing/checkpointing per the configuration.
    pub fn push(&mut self, e: Edge) {
        self.push_slice(std::slice::from_ref(&e));
    }

    /// Accepts a slice of edges. Complete chunks are fed through
    /// immediately; a sub-chunk tail stays staged for later pushes.
    pub fn push_slice(&mut self, edges: &[Edge]) {
        self.state.push_slice(&mut self.colorer, edges);
    }

    /// Accepts one signed token (see [`Session::push_signed_slice`]).
    ///
    /// # Errors
    /// As [`Session::push_signed_slice`]; the session is unchanged on
    /// error.
    pub fn push_signed(&mut self, t: SignedEdge) -> Result<(), String> {
        self.push_signed_slice(std::slice::from_ref(&t))
    }

    /// Accepts a slice of signed tokens, validated **atomically** before
    /// staging: either every token is accepted or none is.
    ///
    /// # Errors
    /// A deletion aimed at an insert-only colorer names the colorer and
    /// the edge; a deletion of a never-inserted edge names the edge.
    pub fn push_signed_slice(&mut self, tokens: &[SignedEdge]) -> Result<(), String> {
        self.state.push_signed_slice(&mut self.colorer, tokens)
    }

    /// Feeds all pending tokens to the colorer.
    pub fn flush(&mut self) {
        self.state.flush(&mut self.colorer);
    }

    /// Flushes, queries, and records + returns a checkpoint for the
    /// current prefix.
    pub fn checkpoint(&mut self) -> &Checkpoint {
        self.flush();
        self.state.record_checkpoint(&mut self.colorer);
        self.state.checkpoints.last().expect("checkpoint just recorded")
    }

    /// Flushes and queries the current prefix *without* recording.
    pub fn observe(&mut self) -> Checkpoint {
        self.flush();
        self.state.snapshot(&mut self.colorer)
    }

    /// Flushes, runs the final query, and assembles the report; elapsed
    /// time is measured from construction (no instant to pass, none to
    /// get wrong).
    pub fn finish(mut self) -> EngineReport {
        self.state.finish(&mut self.colorer, self.started)
    }

    /// Captures the session mid-stream, **without** flushing the
    /// pending tail (see [`SessionSnapshot`]). Non-destructive: the
    /// session continues unchanged.
    ///
    /// # Errors
    /// Propagates the colorer's [`StreamingColorer::encode_state`]
    /// failure (e.g. a toy colorer without a codec).
    pub fn snapshot(&self) -> Result<SessionSnapshot, String> {
        Ok(SessionSnapshot {
            config: self.state.config.clone(),
            pending: self.state.pending.clone(),
            ingested: self.state.ingested,
            chunks: self.state.chunks,
            checkpoints: self.state.checkpoints.clone(),
            support: self.state.support.clone(),
            colorer_state: self.colorer.encode_state()?,
        })
    }

    /// Reopens a session from a snapshot: `colorer` must be freshly
    /// built from the same spec (same `n`, `∆`, seed) as the captured
    /// one; its state blob is replayed into it and the engine machinery
    /// resumes at the exact captured position. The elapsed clock
    /// restarts (wall time is outside the determinism law).
    ///
    /// # Errors
    /// Propagates [`StreamingColorer::decode_state`] failures naming
    /// the offending field.
    pub fn restore(
        mut colorer: crate::colorer::BoxedColorer,
        snapshot: SessionSnapshot,
    ) -> Result<Self, String> {
        let support = match (colorer.supports_deletions(), snapshot.support) {
            (true, Some(s)) => Some(s),
            (true, None) => {
                return Err(format!(
                    "{}: snapshot is missing the dynamic support a \
                     deletion-supporting colorer requires",
                    colorer.name()
                ))
            }
            (false, Some(_)) => {
                return Err(format!(
                    "{}: snapshot carries a dynamic support but the colorer is insert-only",
                    colorer.name()
                ))
            }
            (false, None) => None,
        };
        colorer.decode_state(&snapshot.colorer_state)?;
        Ok(Self {
            colorer,
            state: SessionState {
                config: snapshot.config,
                pending: snapshot.pending,
                ingested: snapshot.ingested,
                chunks: snapshot.chunks,
                checkpoints: snapshot.checkpoints,
                support,
            },
            started: Instant::now(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colorer::run_oblivious;
    use crate::space;
    use sc_graph::{generators, Graph};

    /// Store-everything colorer for exercising engine plumbing.
    struct StoreAll {
        n: usize,
        edges: Vec<Edge>,
        batches: Vec<usize>,
    }

    impl StoreAll {
        fn new(n: usize) -> Self {
            Self { n, edges: vec![], batches: vec![] }
        }
    }

    impl StreamingColorer for StoreAll {
        fn process(&mut self, e: Edge) {
            self.edges.push(e);
            self.batches.push(1);
        }
        fn process_batch(&mut self, edges: &[Edge]) {
            self.edges.extend_from_slice(edges);
            self.batches.push(edges.len());
        }
        fn query(&mut self) -> Coloring {
            let g = Graph::from_edges(self.n, self.edges.iter().copied());
            let mut c = Coloring::empty(self.n);
            sc_graph::greedy_complete(&g, &mut c);
            c
        }
        fn peak_space_bits(&self) -> u64 {
            self.edges.len() as u64 * space::edge_bits(self.n)
        }
        fn name(&self) -> &'static str {
            "store-all"
        }
    }

    fn edges_of(n: usize, seed: u64) -> (Graph, Vec<Edge>) {
        let g = generators::gnp_with_max_degree(n, 6, 0.4, seed);
        let e = generators::shuffled_edges(&g, seed);
        (g, e)
    }

    #[test]
    fn engine_run_matches_run_oblivious() {
        let (g, edges) = edges_of(40, 1);
        let mut a = StoreAll::new(40);
        let expect = run_oblivious(&mut a, edges.iter().copied());
        let mut b = StoreAll::new(40);
        let report = StreamEngine::new(EngineConfig::batched(16)).run(&mut b, &edges);
        assert_eq!(report.final_coloring, expect);
        assert_eq!(report.edges, g.m());
        assert!(report.final_coloring.is_proper_total(&g));
        assert_eq!(report.peak_space_bits, a.peak_space_bits());
    }

    #[test]
    fn chunk_sizes_partition_the_stream() {
        let (_, edges) = edges_of(50, 2);
        for chunk in [1usize, 3, 7, 64, 1000] {
            let mut c = StoreAll::new(50);
            let report = StreamEngine::new(EngineConfig::batched(chunk)).run(&mut c, &edges);
            assert_eq!(report.edges, edges.len());
            assert!(c.batches.iter().all(|&b| b <= chunk));
            assert_eq!(c.batches.iter().sum::<usize>(), edges.len());
            assert_eq!(report.chunks, c.batches.len());
        }
    }

    #[test]
    fn checkpoints_land_on_exact_prefixes() {
        let (_, edges) = edges_of(60, 3);
        assert!(edges.len() > 25, "need a long enough stream");
        let cfg = EngineConfig::batched(8)
            .with_schedule(QuerySchedule::AtPrefixes(vec![5, 17, 25, 10_000]));
        let mut c = StoreAll::new(60);
        let report = StreamEngine::new(cfg).run(&mut c, &edges);
        let prefixes: Vec<usize> = report.checkpoints.iter().map(|c| c.prefix_len).collect();
        assert_eq!(prefixes, vec![5, 17, 25]);
        // Each checkpoint is proper for its prefix.
        for cp in &report.checkpoints {
            let prefix = Graph::from_edges(60, edges[..cp.prefix_len].iter().copied());
            assert!(cp.coloring.is_proper_total(&prefix), "prefix {}", cp.prefix_len);
            assert!(cp.space_bits > 0);
        }
    }

    #[test]
    fn unsorted_prefix_schedules_hit_every_point() {
        let (_, edges) = edges_of(60, 6);
        assert!(edges.len() > 25, "need a long enough stream");
        let cfg =
            EngineConfig::batched(8).with_schedule(QuerySchedule::AtPrefixes(vec![25, 5, 17]));
        let mut c = StoreAll::new(60);
        let report = StreamEngine::new(cfg).run(&mut c, &edges);
        let prefixes: Vec<usize> = report.checkpoints.iter().map(|c| c.prefix_len).collect();
        assert_eq!(prefixes, vec![5, 17, 25]);
    }

    #[test]
    fn duplicated_prefixes_checkpoint_once() {
        let (_, edges) = edges_of(60, 7);
        assert!(edges.len() > 17, "need a long enough stream");
        let cfg = EngineConfig::batched(8)
            .with_schedule(QuerySchedule::AtPrefixes(vec![5, 5, 17, 5, 17]));
        let mut c = StoreAll::new(60);
        let report = StreamEngine::new(cfg).run(&mut c, &edges);
        let prefixes: Vec<usize> = report.checkpoints.iter().map(|c| c.prefix_len).collect();
        assert_eq!(prefixes, vec![5, 17], "duplicates must collapse");
    }

    #[test]
    fn past_end_and_zero_prefixes_are_ignored() {
        let (_, edges) = edges_of(40, 8);
        let m = edges.len();
        let cfg = EngineConfig::batched(8).with_schedule(QuerySchedule::AtPrefixes(vec![
            0,
            m + 1,
            10 * m,
            3,
        ]));
        let mut c = StoreAll::new(40);
        let report = StreamEngine::new(cfg).run(&mut c, &edges);
        let prefixes: Vec<usize> = report.checkpoints.iter().map(|c| c.prefix_len).collect();
        assert_eq!(prefixes, vec![3], "prefix 0 and past-end prefixes never fire");
        assert_eq!(report.edges, m, "the final query still covers the whole stream");
    }

    #[test]
    fn every_edges_zero_behaves_as_one() {
        let (_, edges) = edges_of(30, 9);
        let cfg = EngineConfig::batched(4).with_schedule(QuerySchedule::EveryEdges(0));
        let mut c = StoreAll::new(30);
        let report = StreamEngine::new(cfg).run(&mut c, &edges);
        let prefixes: Vec<usize> = report.checkpoints.iter().map(|c| c.prefix_len).collect();
        assert_eq!(prefixes, (1..=edges.len()).collect::<Vec<_>>());
    }

    #[test]
    fn interactive_pushes_replay_a_schedule_identically() {
        // The same schedule must fire at the same prefixes whether edges
        // arrive as one slice or one at a time.
        let (_, edges) = edges_of(50, 10);
        let cfg =
            EngineConfig::batched(8).with_schedule(QuerySchedule::AtPrefixes(vec![25, 4, 4, 9]));
        let mut a = StoreAll::new(50);
        let slice_report = StreamEngine::new(cfg.clone()).run(&mut a, &edges);
        let mut b = StoreAll::new(50);
        let mut session = EngineSession::new(&mut b, cfg);
        for &e in &edges {
            session.push(e);
        }
        let push_report = session.finish(Instant::now());
        let slice_prefixes: Vec<usize> =
            slice_report.checkpoints.iter().map(|c| c.prefix_len).collect();
        let push_prefixes: Vec<usize> =
            push_report.checkpoints.iter().map(|c| c.prefix_len).collect();
        assert_eq!(slice_prefixes, push_prefixes);
        assert_eq!(slice_prefixes, vec![4, 9, 25]);
        for (x, y) in slice_report.checkpoints.iter().zip(&push_report.checkpoints) {
            assert_eq!(x.coloring, y.coloring);
        }
    }

    #[test]
    fn every_edges_schedule_is_periodic() {
        let (_, edges) = edges_of(40, 4);
        let cfg = EngineConfig::batched(10).with_schedule(QuerySchedule::EveryEdges(6));
        let mut c = StoreAll::new(40);
        let report = StreamEngine::new(cfg).run(&mut c, &edges);
        for (i, cp) in report.checkpoints.iter().enumerate() {
            assert_eq!(cp.prefix_len, 6 * (i + 1));
        }
        assert_eq!(report.checkpoints.len(), edges.len() / 6);
    }

    #[test]
    fn run_source_counts_the_pass_and_skips_lists() {
        let g = generators::path(8);
        let lists = vec![vec![1u64]; 8];
        let s = crate::source::StoredStream::from_graph_with_lists(&g, &lists);
        let mut c = StoreAll::new(8);
        let report = StreamEngine::default().run_source(&mut c, &s);
        assert_eq!(report.passes, 1);
        assert_eq!(report.edges, g.m());
        assert!(report.final_coloring.is_proper_total(&g));
    }

    #[test]
    fn session_interactive_checkpoints() {
        let (_, edges) = edges_of(30, 5);
        let mut c = StoreAll::new(30);
        let mut session = EngineSession::new(&mut c, EngineConfig::per_edge());
        for (i, &e) in edges.iter().enumerate().take(10) {
            session.push(e);
            let cp = session.checkpoint();
            assert_eq!(cp.prefix_len, i + 1);
        }
        assert_eq!(session.len(), 10);
        let report = session.finish(Instant::now());
        assert_eq!(report.edges, 10);
        assert_eq!(report.checkpoints.len(), 10);
    }

    #[test]
    fn owned_session_replays_borrowed_session_identically() {
        // The owned Session and the borrow-bound EngineSession are thin
        // wrappers over one core; every observable — checkpoint prefixes,
        // colorings, chunk counts, space — must agree for any push
        // pattern.
        let (_, edges) = edges_of(50, 11);
        let cfg = EngineConfig::batched(8).with_schedule(QuerySchedule::AtPrefixes(vec![25, 4, 9]));
        let mut borrowed = StoreAll::new(50);
        let mut session = EngineSession::new(&mut borrowed, cfg.clone());
        let mut owned = Session::new(Box::new(StoreAll::new(50)), cfg);
        assert!(owned.is_empty());
        assert_eq!(owned.algo(), "store-all");
        for chunk in edges.chunks(5) {
            session.push_slice(chunk);
            owned.push_slice(chunk);
            assert_eq!(session.len(), owned.len());
        }
        let mid_borrowed = session.observe();
        let mid_owned = owned.observe();
        assert_eq!(mid_borrowed.coloring, mid_owned.coloring);
        assert_eq!(mid_borrowed.space_bits, owned.peak_space_bits());
        assert_eq!(owned.pending(), 0, "observe flushes");
        let a = session.finish(Instant::now());
        let b = owned.finish();
        assert_eq!(a.final_coloring, b.final_coloring);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.chunks, b.chunks);
        assert_eq!(a.peak_space_bits, b.peak_space_bits);
        assert_eq!(a.checkpoints.len(), b.checkpoints.len());
        for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
            assert_eq!((x.prefix_len, &x.coloring), (y.prefix_len, &y.coloring));
        }
    }

    #[test]
    fn owned_session_checkpoints_and_times_itself() {
        let (_, edges) = edges_of(30, 12);
        let mut owned = Session::new(Box::new(StoreAll::new(30)), EngineConfig::per_edge());
        for (i, &e) in edges.iter().enumerate().take(6) {
            owned.push(e);
            let cp = owned.checkpoint();
            assert_eq!(cp.prefix_len, i + 1);
        }
        assert_eq!(owned.checkpoints().len(), 6);
        assert!(owned.elapsed() <= owned.elapsed().max(owned.elapsed()));
        let report = owned.finish();
        assert_eq!(report.edges, 6);
        assert_eq!(report.checkpoints.len(), 6);
        // Timing is folded in: the report's clock started at `new`.
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn engine_config_wire_round_trips() {
        let configs = [
            EngineConfig::default(),
            EngineConfig::per_edge(),
            EngineConfig::batched(7).scratch_queries(),
            EngineConfig::batched(1000).with_schedule(QuerySchedule::EveryEdges(10)),
            EngineConfig::default().with_schedule(QuerySchedule::AtPrefixes(vec![5, 17, 25])),
            EngineConfig::default().with_schedule(QuerySchedule::AtPrefixes(Vec::new())),
        ];
        for cfg in configs {
            let text = cfg.wire_encode();
            let back = EngineConfig::wire_decode(&text).unwrap();
            assert_eq!(back, cfg, "wire text {text:?}");
            assert_eq!(back.wire_encode(), text, "re-encoding must be stable");
        }
    }

    #[test]
    fn engine_config_wire_rejects_malformed_text() {
        for bad in [
            "",
            "chunk=4",
            "chunk=4;schedule=final",
            "chunk=x;schedule=final;incremental=true",
            "chunk=4;schedule=sometimes;incremental=true",
            "chunk=4;schedule=final;incremental=maybe",
            "chunk=4;schedule=final;incremental=true;bogus=1",
        ] {
            assert!(EngineConfig::wire_decode(bad).is_err(), "{bad:?} must not decode");
        }
        assert!(QuerySchedule::wire_decode("every:").is_err());
        assert!(QuerySchedule::wire_decode("at:1,x").is_err());
    }

    #[test]
    fn empty_stream_report() {
        let mut c = StoreAll::new(5);
        let report = StreamEngine::default().run(&mut c, &[]);
        assert_eq!(report.edges, 0);
        assert_eq!(report.chunks, 0);
        assert!(report.checkpoints.is_empty());
        assert!(report.final_coloring.is_total());
    }

    /// A toy deletion-supporting colorer: stores the live multiset
    /// verbatim (the dynamic analogue of [`StoreAll`]).
    struct DynStore {
        n: usize,
        live: DynamicSupport,
    }

    impl DynStore {
        fn new(n: usize) -> Self {
            Self { n, live: DynamicSupport::new() }
        }
    }

    impl StreamingColorer for DynStore {
        fn process(&mut self, e: Edge) {
            self.live.apply(SignedEdge::insert(e)).expect("insertions never underflow");
        }
        fn supports_deletions(&self) -> bool {
            true
        }
        fn process_signed(&mut self, t: SignedEdge) -> Result<(), String> {
            self.live.apply(t)
        }
        fn query(&mut self) -> Coloring {
            let g = Graph::from_edges(self.n, self.live.live_edges());
            let mut c = Coloring::empty(self.n);
            sc_graph::greedy_complete(&g, &mut c);
            c
        }
        fn peak_space_bits(&self) -> u64 {
            1
        }
        fn encode_state(&self) -> Result<String, String> {
            let mut w = crate::state::StateWriter::new();
            w.field("algo", self.name()).field("live", self.live.encode());
            Ok(w.finish())
        }
        fn decode_state(&mut self, state: &str) -> Result<(), String> {
            let mut r = crate::state::StateReader::new(state);
            let algo = r.expect("algo")?;
            if algo != self.name() {
                return Err(format!("dyn-toy: state is for {algo:?}"));
            }
            self.live = DynamicSupport::decode(r.expect("live")?, self.n)?;
            r.done()
        }
        fn name(&self) -> &'static str {
            "dyn-toy"
        }
    }

    /// A small churny token stream over `n` vertices: inserts a gnp
    /// graph's edges and deletes every third one again mid-stream.
    fn churn_tokens(n: usize, seed: u64) -> (Graph, Vec<SignedEdge>) {
        let g = generators::gnp_with_max_degree(n, 6, 0.4, seed);
        let edges = generators::shuffled_edges(&g, seed);
        let mut tokens = Vec::new();
        let mut deleted = Vec::new();
        for (i, &e) in edges.iter().enumerate() {
            tokens.push(SignedEdge::insert(e));
            if i % 3 == 2 {
                tokens.push(SignedEdge::delete(e));
                deleted.push(e);
            }
        }
        let live = Graph::from_edges(n, edges.iter().copied().filter(|e| !deleted.contains(e)));
        (live, tokens)
    }

    #[test]
    fn signed_runs_are_chunking_invariant_and_color_the_live_graph() {
        let (live, tokens) = churn_tokens(40, 21);
        let mut baseline = DynStore::new(40);
        for &t in &tokens {
            baseline.process_signed(t).unwrap();
        }
        let expect = baseline.query();
        assert!(expect.is_proper_total(&live));
        for chunk in [1usize, 3, 8, 64, 1000] {
            let mut c = DynStore::new(40);
            let report = StreamEngine::new(EngineConfig::batched(chunk))
                .run_signed(&mut c, &tokens)
                .unwrap();
            assert_eq!(report.final_coloring, expect, "chunk={chunk}");
            assert_eq!(report.edges, tokens.len(), "prefixes count tokens");
            assert!(report.final_coloring.is_proper_total(&live));
        }
    }

    #[test]
    fn signed_push_rejects_underflow_atomically() {
        let mut c = DynStore::new(10);
        let mut session = EngineSession::new(&mut c, EngineConfig::batched(4));
        session.push_signed(SignedEdge::insert(Edge::new(0, 1))).unwrap();
        let before_len = session.len();
        let err = session
            .push_signed_slice(&[
                SignedEdge::insert(Edge::new(1, 2)),
                SignedEdge::delete(Edge::new(5, 6)),
            ])
            .unwrap_err();
        assert!(err.contains("(5, 6)") && err.contains("never inserted"), "{err}");
        assert_eq!(session.len(), before_len, "failed batch must not stage anything");
        assert_eq!(session.support().unwrap().distinct(), 1);
        // A legal delete (after its insert) goes through.
        session
            .push_signed_slice(&[
                SignedEdge::insert(Edge::new(1, 2)),
                SignedEdge::delete(Edge::new(0, 1)),
            ])
            .unwrap();
        assert_eq!(session.support().unwrap().live_edges().collect::<Vec<_>>(), vec![
            Edge::new(1, 2)
        ]);
    }

    #[test]
    fn signed_push_names_insert_only_offenders() {
        let mut c = StoreAll::new(10);
        let mut session = EngineSession::new(&mut c, EngineConfig::per_edge());
        assert!(session.support().is_none(), "insert-only sessions carry no support");
        session.push_signed(SignedEdge::insert(Edge::new(0, 1))).unwrap();
        let err = session.push_signed(SignedEdge::delete(Edge::new(0, 1))).unwrap_err();
        assert!(
            err.contains("store-all") && err.contains("(0, 1)") && err.contains("insert-only"),
            "error must name the colorer and the edge: {err}"
        );
        assert_eq!(session.len(), 1, "rejected delete must not be staged");
    }

    #[test]
    fn signed_snapshot_restores_mid_stream_exactly() {
        let (_, tokens) = churn_tokens(30, 22);
        let cfg = EngineConfig::batched(7).with_schedule(QuerySchedule::EveryEdges(5));
        // Uninterrupted reference.
        let mut reference = Session::new(Box::new(DynStore::new(30)), cfg.clone());
        reference.push_signed_slice(&tokens).unwrap();
        let expect = reference.finish();

        // Snapshot at an awkward cut (mid-chunk), restore, resume.
        let cut = tokens.len() / 2 + 1;
        let mut first = Session::new(Box::new(DynStore::new(30)), cfg);
        first.push_signed_slice(&tokens[..cut]).unwrap();
        let snap = first.snapshot().unwrap();
        assert!(snap.support.is_some(), "dynamic sessions snapshot their support");
        let mut resumed = Session::restore(Box::new(DynStore::new(30)), snap).unwrap();
        resumed.push_signed_slice(&tokens[cut..]).unwrap();
        let got = resumed.finish();

        assert_eq!(got.final_coloring, expect.final_coloring);
        assert_eq!(got.edges, expect.edges);
        assert_eq!(got.chunks, expect.chunks);
        let a: Vec<usize> = expect.checkpoints.iter().map(|c| c.prefix_len).collect();
        let b: Vec<usize> = got.checkpoints[..].iter().map(|c| c.prefix_len).collect();
        assert_eq!(a[a.len() - b.len()..], b[..], "resumed session replays the schedule tail");
    }

    #[test]
    fn restore_rejects_support_mismatches() {
        let mut dynamic = Session::new(Box::new(DynStore::new(8)), EngineConfig::default());
        dynamic.push_signed(SignedEdge::insert(Edge::new(0, 1))).unwrap();
        let mut snap = dynamic.snapshot().unwrap();
        snap.support = None;
        let err = match Session::restore(Box::new(DynStore::new(8)), snap) {
            Ok(_) => panic!("support-less snapshot must not restore a dynamic colorer"),
            Err(e) => e,
        };
        assert!(err.contains("missing the dynamic support"), "{err}");
    }

    #[test]
    fn run_source_routes_deletion_tokens() {
        use crate::source::StreamSource;
        struct TinyChurn;
        impl StreamSource for TinyChurn {
            fn pass(&self) -> Box<dyn Iterator<Item = crate::StreamItem> + '_> {
                Box::new(
                    [
                        crate::StreamItem::Edge(Edge::new(0, 1)),
                        crate::StreamItem::Edge(Edge::new(1, 2)),
                        crate::StreamItem::Deletion(Edge::new(0, 1)),
                    ]
                    .into_iter(),
                )
            }
            fn len(&self) -> usize {
                3
            }
        }
        let mut c = DynStore::new(3);
        let report = StreamEngine::default().run_source(&mut c, &TinyChurn);
        assert_eq!(report.edges, 3, "all three tokens count");
        let live = Graph::from_edges(3, [Edge::new(1, 2)]);
        assert!(report.final_coloring.is_proper_total(&live));
        assert_eq!(c.live.live_edges().collect::<Vec<_>>(), vec![Edge::new(1, 2)]);
    }
}
