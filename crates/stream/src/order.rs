//! Stream arrival-order policies.
//!
//! Theorems 1–4 all promise correctness for edges "arriving in an
//! adversarial order", so the experiment harness must exercise *many*
//! orders, not just the generator's. [`StreamOrder`] enumerates the
//! orders the experiments sweep:
//!
//! * the natural generator order,
//! * a seeded uniform shuffle,
//! * hubs-first / hubs-last (sorted by endpoint degree — the classic
//!   worst cases for greedy-flavored summaries),
//! * vertex-contiguous ("all of `v`'s edges together", the arrival
//!   pattern of vertex-arrival streams re-serialized as edges),
//! * buffer-boundary adversarial: a permutation that maximizes buffer
//!   churn for the robust algorithms' `n`-edge epochs by interleaving
//!   distant endpoints.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sc_graph::{Edge, Graph};

/// An edge arrival-order policy. All policies are deterministic given
/// their parameters, so experiments are replayable.
///
/// # Examples
/// ```
/// use sc_graph::generators;
/// use sc_stream::StreamOrder;
///
/// let g = generators::star(5);
/// let edges = StreamOrder::Shuffled(7).arrange(&g);
/// assert_eq!(edges.len(), g.m());
/// // Same seed, same order — replayable experiments.
/// assert_eq!(edges, StreamOrder::Shuffled(7).arrange(&g));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Exactly the order `Graph::edges()` yields (ascending endpoint).
    AsGenerated,
    /// Seeded uniform shuffle.
    Shuffled(u64),
    /// Edges sorted by decreasing max endpoint degree: high-degree
    /// ("hub") edges arrive first, front-loading the dense structure.
    HubsFirst,
    /// Hub edges arrive last: algorithms commit to summaries before the
    /// dense structure appears.
    HubsLast,
    /// All edges incident to vertex 0 first, then vertex 1's remaining
    /// edges, and so on (vertex-arrival order).
    VertexContiguous,
    /// Round-robin across vertex-contiguous runs: consecutive edges share
    /// no endpoint whenever possible, maximizing working-set churn.
    Interleaved(u64),
}

impl StreamOrder {
    /// Materializes the edges of `g` in this order.
    pub fn arrange(self, g: &Graph) -> Vec<Edge> {
        let mut edges: Vec<Edge> = g.edges().collect();
        match self {
            StreamOrder::AsGenerated => edges,
            StreamOrder::Shuffled(seed) => {
                edges.shuffle(&mut StdRng::seed_from_u64(seed));
                edges
            }
            StreamOrder::HubsFirst => {
                edges.sort_by_key(|e| std::cmp::Reverse(g.degree(e.u()).max(g.degree(e.v()))));
                edges
            }
            StreamOrder::HubsLast => {
                edges.sort_by_key(|e| g.degree(e.u()).max(g.degree(e.v())));
                edges
            }
            StreamOrder::VertexContiguous => {
                edges.sort_by_key(|e| (e.u(), e.v()));
                edges
            }
            StreamOrder::Interleaved(seed) => interleave(g, seed),
        }
    }

    /// A short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            StreamOrder::AsGenerated => "generated",
            StreamOrder::Shuffled(_) => "shuffled",
            StreamOrder::HubsFirst => "hubs-first",
            StreamOrder::HubsLast => "hubs-last",
            StreamOrder::VertexContiguous => "vertex-contiguous",
            StreamOrder::Interleaved(_) => "interleaved",
        }
    }

    /// Encodes the policy (with its seed, where one exists) as a compact
    /// string — `"shuffled:7"`, `"hubs-first"`, … — for embedding in
    /// flat-JSON wire objects. The exact inverse of
    /// [`StreamOrder::wire_decode`].
    pub fn wire_encode(self) -> String {
        match self {
            StreamOrder::AsGenerated => "generated".to_string(),
            StreamOrder::Shuffled(seed) => format!("shuffled:{seed}"),
            StreamOrder::HubsFirst => "hubs-first".to_string(),
            StreamOrder::HubsLast => "hubs-last".to_string(),
            StreamOrder::VertexContiguous => "vertex-contiguous".to_string(),
            StreamOrder::Interleaved(seed) => format!("interleaved:{seed}"),
        }
    }

    /// Decodes a [`StreamOrder::wire_encode`] string.
    ///
    /// # Errors
    /// Returns a human-readable message naming the malformed part.
    pub fn wire_decode(text: &str) -> Result<Self, String> {
        let seed_of = |tail: &str| -> Result<u64, String> {
            tail.parse().map_err(|e| format!("order seed {tail:?}: {e}"))
        };
        match text {
            "generated" => Ok(StreamOrder::AsGenerated),
            "hubs-first" => Ok(StreamOrder::HubsFirst),
            "hubs-last" => Ok(StreamOrder::HubsLast),
            "vertex-contiguous" => Ok(StreamOrder::VertexContiguous),
            other => {
                if let Some(tail) = other.strip_prefix("shuffled:") {
                    Ok(StreamOrder::Shuffled(seed_of(tail)?))
                } else if let Some(tail) = other.strip_prefix("interleaved:") {
                    Ok(StreamOrder::Interleaved(seed_of(tail)?))
                } else {
                    Err(format!("unknown stream order {other:?}"))
                }
            }
        }
    }

    /// The standard sweep the experiments run: one of each policy.
    pub fn sweep(seed: u64) -> Vec<StreamOrder> {
        vec![
            StreamOrder::AsGenerated,
            StreamOrder::Shuffled(seed),
            StreamOrder::HubsFirst,
            StreamOrder::HubsLast,
            StreamOrder::VertexContiguous,
            StreamOrder::Interleaved(seed),
        ]
    }
}

/// Deals vertex-contiguous runs into rounds: take one edge per still-alive
/// vertex bucket per round, in shuffled bucket order.
fn interleave(g: &Graph, seed: u64) -> Vec<Edge> {
    let mut buckets: Vec<Vec<Edge>> = vec![Vec::new(); g.n()];
    for e in g.edges() {
        buckets[e.u() as usize].push(e);
    }
    let mut bucket_order: Vec<usize> = (0..g.n()).collect();
    bucket_order.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut out = Vec::with_capacity(g.m());
    let mut cursors = vec![0usize; g.n()];
    let mut alive = true;
    while alive {
        alive = false;
        for &b in &bucket_order {
            if cursors[b] < buckets[b].len() {
                out.push(buckets[b][cursors[b]]);
                cursors[b] += 1;
                alive = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;

    fn is_permutation(g: &Graph, got: &[Edge]) -> bool {
        let mut a: Vec<Edge> = g.edges().collect();
        let mut b = got.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    #[test]
    fn every_policy_is_a_permutation() {
        let g = generators::gnp_with_max_degree(50, 8, 0.3, 3);
        for policy in StreamOrder::sweep(7) {
            let arranged = policy.arrange(&g);
            assert!(is_permutation(&g, &arranged), "{} lost edges", policy.label());
        }
    }

    #[test]
    fn hubs_first_puts_max_degree_edge_first() {
        let g = generators::star(10); // all edges touch the hub
        let first = StreamOrder::HubsFirst.arrange(&g)[0];
        assert!(first.touches(0));
        // On a star+pendant graph the pendant edge must come last.
        let mut g2 = generators::star(10);
        g2.add_edge(Edge::new(8, 9));
        let order = StreamOrder::HubsFirst.arrange(&g2);
        assert_eq!(order.last().copied(), Some(Edge::new(8, 9)));
        let rev = StreamOrder::HubsLast.arrange(&g2);
        assert_eq!(rev.first().copied(), Some(Edge::new(8, 9)));
    }

    #[test]
    fn shuffle_is_seed_deterministic_and_seed_sensitive() {
        let g = generators::complete(8);
        assert_eq!(StreamOrder::Shuffled(1).arrange(&g), StreamOrder::Shuffled(1).arrange(&g));
        assert_ne!(StreamOrder::Shuffled(1).arrange(&g), StreamOrder::Shuffled(2).arrange(&g));
    }

    #[test]
    fn vertex_contiguous_groups_by_lower_endpoint() {
        let g = generators::gnp_with_max_degree(30, 6, 0.4, 5);
        let order = StreamOrder::VertexContiguous.arrange(&g);
        let us: Vec<u32> = order.iter().map(|e| e.u()).collect();
        let mut sorted = us.clone();
        sorted.sort_unstable();
        assert_eq!(us, sorted);
    }

    #[test]
    fn interleaved_spreads_consecutive_endpoints() {
        let g = generators::complete(12);
        let order = StreamOrder::Interleaved(3).arrange(&g);
        assert!(is_permutation(&g, &order));
        // Most consecutive pairs should not share a lower endpoint.
        let sharing = order.windows(2).filter(|w| w[0].u() == w[1].u()).count();
        assert!(sharing * 3 < order.len(), "{sharing} of {} pairs share", order.len());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            StreamOrder::sweep(0).into_iter().map(StreamOrder::label).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn wire_encoding_round_trips_every_policy() {
        for order in StreamOrder::sweep(u64::MAX) {
            let text = order.wire_encode();
            assert_eq!(StreamOrder::wire_decode(&text).unwrap(), order, "{text:?}");
        }
        assert!(StreamOrder::wire_decode("sorted").is_err());
        assert!(StreamOrder::wire_decode("shuffled:abc").is_err());
    }

    #[test]
    fn empty_graph_yields_empty_streams() {
        let g = Graph::empty(5);
        for policy in StreamOrder::sweep(1) {
            assert!(policy.arrange(&g).is_empty());
        }
    }
}
