//! Bit-level space accounting.
//!
//! Semi-streaming bounds are stated in **bits** (`O(n log² n)` for
//! Algorithm 1, `Õ(n)` for Algorithms 2–3). Rust's actual heap usage is an
//! implementation artifact (pointers, capacity slack), so algorithms
//! *self-report* their information-theoretic state sizes through a
//! [`SpaceMeter`]: counters, stored edges, hash accumulators, colorings,
//! all charged at their model cost. Experiments F2/F4 read the resulting
//! peak.
//!
//! The meter is deliberately simple: `charge`/`release` plus a running
//! peak. Helper constructors encode the model costs of the recurring
//! object kinds so call sites stay self-documenting.

/// Tracks current and peak self-reported space in bits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpaceMeter {
    current: u64,
    peak: u64,
}

impl SpaceMeter {
    /// A meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bits` to the current footprint.
    #[inline]
    pub fn charge(&mut self, bits: u64) {
        self.current += bits;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Releases `bits` (saturating: a release larger than the current
    /// footprint clamps to zero rather than panicking, so accounting bugs
    /// degrade to conservative peaks instead of crashes).
    #[inline]
    pub fn release(&mut self, bits: u64) {
        self.current = self.current.saturating_sub(bits);
    }

    /// Current footprint in bits.
    #[inline]
    pub fn current_bits(&self) -> u64 {
        self.current
    }

    /// Peak footprint in bits.
    #[inline]
    pub fn peak_bits(&self) -> u64 {
        self.peak
    }

    /// Rebuilds a meter from snapshotted `current`/`peak` readings
    /// (session restore), validating the `peak ≥ current` invariant
    /// every live meter maintains by construction.
    pub fn restored(current: u64, peak: u64) -> Result<Self, String> {
        if peak < current {
            return Err(format!("space meter: peak {peak} < current {current}"));
        }
        Ok(Self { current, peak })
    }

    /// Merges another meter's peak as if it ran concurrently on top of our
    /// current footprint (used when a sub-phase keeps its own meter).
    pub fn absorb_peak(&mut self, sub: &SpaceMeter) {
        let combined = self.current + sub.peak_bits();
        if combined > self.peak {
            self.peak = combined;
        }
    }
}

/// Model cost of storing one edge of an `n`-vertex graph: `2⌈log₂ n⌉` bits.
#[inline]
pub fn edge_bits(n: usize) -> u64 {
    2 * ceil_log2_usize(n)
}

/// Model cost of one counter holding values up to `max`: `⌈log₂(max+1)⌉` bits.
#[inline]
pub fn counter_bits(max: u64) -> u64 {
    u64::from(64 - max.leading_zeros()).max(1)
}

/// Model cost of one vertex id: `⌈log₂ n⌉` bits.
#[inline]
pub fn vertex_bits(n: usize) -> u64 {
    ceil_log2_usize(n)
}

/// Model cost of one color from a palette of size `k`: `⌈log₂ k⌉` bits.
#[inline]
pub fn color_bits(palette: u64) -> u64 {
    counter_bits(palette.saturating_sub(1))
}

#[inline]
fn ceil_log2_usize(n: usize) -> u64 {
    if n <= 1 {
        1
    } else {
        u64::from(64 - (n as u64 - 1).leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release_track_peak() {
        let mut m = SpaceMeter::new();
        m.charge(100);
        m.charge(50);
        assert_eq!(m.current_bits(), 150);
        assert_eq!(m.peak_bits(), 150);
        m.release(120);
        assert_eq!(m.current_bits(), 30);
        assert_eq!(m.peak_bits(), 150);
        m.charge(200);
        assert_eq!(m.peak_bits(), 230);
    }

    #[test]
    fn release_saturates() {
        let mut m = SpaceMeter::new();
        m.charge(10);
        m.release(1000);
        assert_eq!(m.current_bits(), 0);
        assert_eq!(m.peak_bits(), 10);
    }

    #[test]
    fn absorb_peak_composes() {
        let mut outer = SpaceMeter::new();
        outer.charge(100);
        let mut inner = SpaceMeter::new();
        inner.charge(500);
        inner.release(500);
        outer.absorb_peak(&inner);
        assert_eq!(outer.peak_bits(), 600);
        assert_eq!(outer.current_bits(), 100);
    }

    #[test]
    fn model_costs() {
        assert_eq!(edge_bits(1024), 20);
        assert_eq!(edge_bits(1025), 22);
        assert_eq!(vertex_bits(2), 1);
        assert_eq!(vertex_bits(1_000_000), 20);
        assert_eq!(counter_bits(0), 1);
        assert_eq!(counter_bits(1), 1);
        assert_eq!(counter_bits(255), 8);
        assert_eq!(counter_bits(256), 9);
        assert_eq!(color_bits(1), 1);
        assert_eq!(color_bits(257), 9);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(edge_bits(0), 2);
        assert_eq!(edge_bits(1), 2);
        assert_eq!(vertex_bits(0), 1);
    }
}
