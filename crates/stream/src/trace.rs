//! Stream-access tracing — verifying that algorithms honor the streaming
//! contract.
//!
//! A semi-streaming algorithm may only read its input in whole sequential
//! passes. [`TracingSource`] wraps any [`StreamSource`] and records, per
//! pass, how many tokens were actually pulled; [`TraceReport::all_passes_complete`]
//! then certifies that no pass was abandoned midway (an abandoned pass in
//! our harness would mean an algorithm extracted positional information —
//! something the model forbids charging as "one pass").

use crate::source::StreamSource;
use crate::token::StreamItem;
use std::cell::RefCell;

/// Wraps a source and records consumption per pass.
pub struct TracingSource<'a, S: StreamSource + ?Sized> {
    inner: &'a S,
    consumed: RefCell<Vec<usize>>,
}

impl<'a, S: StreamSource + ?Sized> TracingSource<'a, S> {
    /// Wraps `inner` with an empty trace.
    pub fn new(inner: &'a S) -> Self {
        Self { inner, consumed: RefCell::new(Vec::new()) }
    }

    /// The trace so far.
    pub fn report(&self) -> TraceReport {
        TraceReport { per_pass: self.consumed.borrow().clone(), stream_len: self.inner.len() }
    }
}

/// Consumption trace of a [`TracingSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Tokens consumed in each pass, in pass order.
    pub per_pass: Vec<usize>,
    /// The stream's length.
    pub stream_len: usize,
}

impl TraceReport {
    /// Number of passes started.
    pub fn passes(&self) -> usize {
        self.per_pass.len()
    }

    /// Whether every pass read the entire stream.
    pub fn all_passes_complete(&self) -> bool {
        self.per_pass.iter().all(|&c| c == self.stream_len)
    }

    /// Total tokens read across all passes.
    pub fn total_tokens(&self) -> usize {
        self.per_pass.iter().sum()
    }
}

struct CountingIter<'a> {
    inner: Box<dyn Iterator<Item = StreamItem> + 'a>,
    counter: &'a RefCell<Vec<usize>>,
    index: usize,
}

impl Iterator for CountingIter<'_> {
    type Item = StreamItem;

    fn next(&mut self) -> Option<StreamItem> {
        let item = self.inner.next();
        if item.is_some() {
            self.counter.borrow_mut()[self.index] += 1;
        }
        item
    }
}

impl<S: StreamSource + ?Sized> StreamSource for TracingSource<'_, S> {
    fn pass(&self) -> Box<dyn Iterator<Item = StreamItem> + '_> {
        let index = {
            let mut consumed = self.consumed.borrow_mut();
            consumed.push(0);
            consumed.len() - 1
        };
        Box::new(CountingIter { inner: self.inner.pass(), counter: &self.consumed, index })
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::StoredStream;
    use sc_graph::generators;

    #[test]
    fn full_passes_are_recorded() {
        let g = generators::cycle(8);
        let s = StoredStream::from_graph(&g);
        let t = TracingSource::new(&s);
        let _: Vec<_> = t.pass().collect();
        let _: Vec<_> = t.pass().collect();
        let r = t.report();
        assert_eq!(r.passes(), 2);
        assert_eq!(r.per_pass, vec![8, 8]);
        assert!(r.all_passes_complete());
        assert_eq!(r.total_tokens(), 16);
    }

    #[test]
    fn abandoned_pass_is_detected() {
        let g = generators::complete(5);
        let s = StoredStream::from_graph(&g);
        let t = TracingSource::new(&s);
        let _first_three: Vec<_> = t.pass().take(3).collect();
        let r = t.report();
        assert_eq!(r.per_pass, vec![3]);
        assert!(!r.all_passes_complete());
    }

    #[test]
    fn empty_stream_traces() {
        let s = StoredStream::new(vec![]);
        let t = TracingSource::new(&s);
        let _: Vec<_> = t.pass().collect();
        let r = t.report();
        assert!(r.all_passes_complete());
        assert_eq!(r.total_tokens(), 0);
    }
}
