//! Multi-pass stream sources and pass accounting.
//!
//! A semi-streaming algorithm's *only* access to its input is via sequential
//! passes; [`StreamSource`] encodes that contract, and [`PassCounter`]
//! instruments it so experiments can report the realized pass count against
//! the paper's `O(log ∆ · log log ∆)` bound.

use crate::token::StreamItem;
use sc_graph::{Edge, Graph};
use std::cell::Cell;

/// A source that can be read any number of times, one sequential pass at a
/// time.
pub trait StreamSource {
    /// Starts a fresh pass over the stream.
    fn pass(&self) -> Box<dyn Iterator<Item = StreamItem> + '_>;

    /// The number of tokens per pass.
    fn len(&self) -> usize;

    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory stream with a fixed token order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredStream {
    items: Vec<StreamItem>,
}

impl StoredStream {
    /// Builds a stream from explicit tokens.
    pub fn new(items: Vec<StreamItem>) -> Self {
        Self { items }
    }

    /// Builds a pure edge stream from an edge list.
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        Self { items: edges.into_iter().map(StreamItem::Edge).collect() }
    }

    /// Builds an edge stream from a graph in its canonical edge order.
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_edges(g.edges())
    }

    /// Builds a list-coloring stream: interleaves each vertex's color list
    /// among the edges (lists first by default — callers can shuffle via
    /// [`StoredStream::new`] if they need adversarial interleavings).
    pub fn from_graph_with_lists(g: &Graph, lists: &[Vec<u64>]) -> Self {
        let mut items: Vec<StreamItem> = lists
            .iter()
            .enumerate()
            .map(|(x, l)| StreamItem::ColorList(x as u32, l.clone()))
            .collect();
        items.extend(g.edges().map(StreamItem::Edge));
        Self { items }
    }

    /// Direct access to the tokens (test/diagnostic use).
    pub fn items(&self) -> &[StreamItem] {
        &self.items
    }
}

impl StreamSource for StoredStream {
    fn pass(&self) -> Box<dyn Iterator<Item = StreamItem> + '_> {
        Box::new(self.items.iter().cloned())
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Wraps a [`StreamSource`] and counts how many passes were started.
pub struct PassCounter<'a, S: StreamSource + ?Sized> {
    inner: &'a S,
    passes: Cell<u64>,
}

impl<'a, S: StreamSource + ?Sized> PassCounter<'a, S> {
    /// Wraps `inner`, with the counter at zero.
    pub fn new(inner: &'a S) -> Self {
        Self { inner, passes: Cell::new(0) }
    }

    /// Number of passes started so far.
    pub fn passes(&self) -> u64 {
        self.passes.get()
    }
}

impl<S: StreamSource + ?Sized> StreamSource for PassCounter<'_, S> {
    fn pass(&self) -> Box<dyn Iterator<Item = StreamItem> + '_> {
        self.passes.set(self.passes.get() + 1);
        self.inner.pass()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;

    #[test]
    fn stored_stream_replays_identically() {
        let g = generators::cycle(5);
        let s = StoredStream::from_graph(&g);
        let p1: Vec<_> = s.pass().collect();
        let p2: Vec<_> = s.pass().collect();
        assert_eq!(p1, p2);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_stream() {
        let s = StoredStream::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.pass().count(), 0);
    }

    #[test]
    fn pass_counter_counts() {
        let g = generators::complete(4);
        let s = StoredStream::from_graph(&g);
        let pc = PassCounter::new(&s);
        assert_eq!(pc.passes(), 0);
        let _ = pc.pass().count();
        let _ = pc.pass().count();
        assert_eq!(pc.passes(), 2);
        assert_eq!(pc.len(), 6);
    }

    #[test]
    fn list_stream_contains_lists_and_edges() {
        let g = generators::path(3);
        let lists = vec![vec![1u64], vec![2, 3], vec![4]];
        let s = StoredStream::from_graph_with_lists(&g, &lists);
        assert_eq!(s.len(), 3 + 2);
        let n_lists = s.pass().filter(|t| t.as_color_list().is_some()).count();
        let n_edges = s.pass().filter(|t| t.as_edge().is_some()).count();
        assert_eq!(n_lists, 3);
        assert_eq!(n_edges, 2);
    }

    #[test]
    fn pass_counter_through_trait_object() {
        let g = generators::star(4);
        let s = StoredStream::from_graph(&g);
        let src: &dyn StreamSource = &s;
        let pc = PassCounter::new(src);
        let edges: Vec<_> = pc.pass().filter_map(|t| t.as_edge()).collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(pc.passes(), 1);
    }
}
