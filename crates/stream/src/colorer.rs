//! The single-pass streaming-colorer interface.
//!
//! The adversarially robust setting (paper §4) is "inherently a single-pass
//! setting": the algorithm consumes edge insertions one at a time and must
//! be able to report a proper coloring of the graph-so-far *after any
//! prefix*. [`StreamingColorer`] captures exactly that contract; the
//! adversarial game driver in `sc-adversary` and the static-stream
//! experiment harness both speak it.

use crate::query_cache::CacheStats;
use crate::token::{Sign, SignedEdge};
use sc_graph::Coloring;
use sc_graph::Edge;

/// A one-pass algorithm that maintains a colorable summary of an edge
/// stream and can produce a proper coloring on demand.
pub trait StreamingColorer {
    /// Processes the next edge insertion.
    fn process(&mut self, e: Edge);

    /// Processes a chunk of consecutive edge insertions.
    ///
    /// Must be observationally identical to calling [`process`] on each
    /// edge in order — same colorings from every later [`query`], same
    /// space report — for every chunking of the stream. Implementors
    /// override this to amortize per-edge work (hashing, candidate
    /// censuses) across the chunk; the default is the sequential loop.
    ///
    /// [`process`]: StreamingColorer::process
    /// [`query`]: StreamingColorer::query
    fn process_batch(&mut self, edges: &[Edge]) {
        for &e in edges {
            self.process(e);
        }
    }

    /// Whether this colorer accepts edge **deletions** (the dynamic /
    /// turnstile model). The default is `false`: every insert-only
    /// colorer in the workspace keeps its exact contract, and the engine
    /// rejects deletion tokens aimed at it *before* they reach
    /// [`process_signed`] (the error names the colorer and the edge).
    ///
    /// [`process_signed`]: StreamingColorer::process_signed
    fn supports_deletions(&self) -> bool {
        false
    }

    /// Processes one signed token. For insertions the default delegates
    /// to [`process`]; for deletions it errors, naming this colorer and
    /// the offending edge — dynamic colorers override both this and
    /// [`supports_deletions`].
    ///
    /// # Errors
    /// The default errors on every deletion. Implementations that
    /// support deletions should only error on stream violations the
    /// engine could not pre-validate.
    ///
    /// [`process`]: StreamingColorer::process
    fn process_signed(&mut self, t: SignedEdge) -> Result<(), String> {
        match t.sign {
            Sign::Insert => {
                self.process(t.edge);
                Ok(())
            }
            Sign::Delete => Err(format!(
                "{}: insert-only colorer cannot delete edge {}",
                self.name(),
                t.edge
            )),
        }
    }

    /// Processes a chunk of signed tokens; must be observationally
    /// identical to calling [`process_signed`] on each token in order,
    /// for every chunking (the signed extension of the
    /// [`process_batch`] law). The default loops; dynamic colorers
    /// override it to amortize per-token work.
    ///
    /// # Errors
    /// Propagates the first failing token's error; tokens before it have
    /// been applied (the *engine* pre-validates whole batches so this is
    /// unreachable on well-formed sessions).
    ///
    /// [`process_signed`]: StreamingColorer::process_signed
    /// [`process_batch`]: StreamingColorer::process_batch
    fn process_signed_batch(&mut self, tokens: &[SignedEdge]) -> Result<(), String> {
        for &t in tokens {
            self.process_signed(t)?;
        }
        Ok(())
    }

    /// Returns a coloring of all edges processed so far.
    ///
    /// For robust algorithms this must be proper with probability `≥ 1 − δ`
    /// against *adaptive* streams; for non-robust baselines only against
    /// oblivious ones.
    fn query(&mut self) -> Coloring;

    /// Like [`query`], but allowed to reuse artifacts of the previous
    /// query (via an epoch-keyed [`QueryCache`](crate::QueryCache)).
    ///
    /// **Law:** must be observationally identical to [`query`] at every
    /// prefix, under arbitrary interleavings of `process`/`process_batch`
    /// calls and queries of either kind — same colorings, same space
    /// report. Implementors fall back to a from-scratch rebuild whenever
    /// invalidation since the last query is too large to patch. The
    /// default *is* the from-scratch path.
    ///
    /// [`query`]: StreamingColorer::query
    fn query_incremental(&mut self) -> Coloring {
        self.query()
    }

    /// Outcome counters of the incremental query path, or `None` for
    /// colorers without one (their [`query_incremental`] just delegates
    /// to [`query`]).
    ///
    /// [`query`]: StreamingColorer::query
    /// [`query_incremental`]: StreamingColorer::query_incremental
    fn query_cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Self-reported peak space in bits (model accounting; see
    /// [`crate::space`]).
    fn peak_space_bits(&self) -> u64;

    /// Serializes the colorer's mutable algorithm state as a canonical
    /// [`crate::state`] string — the persistence half of the snapshot
    /// subsystem. Constructor parameters are *not* included (the
    /// restoring side rebuilds the colorer from its spec first, then
    /// replays this state into it via [`decode_state`]).
    ///
    /// **Law:** `decode_state ∘ encode_state ≡ id` observationally — a
    /// freshly built colorer that decodes this state must produce
    /// byte-identical colorings and space reports to the original at
    /// every subsequent prefix — and the bytes are canonical
    /// (re-encoding a restored colorer reproduces them exactly).
    ///
    /// The default errors: toy/test colorers without persistence
    /// support fail loudly instead of silently dropping state.
    ///
    /// [`decode_state`]: StreamingColorer::decode_state
    fn encode_state(&self) -> Result<String, String> {
        Err(format!("{}: no state codec", self.name()))
    }

    /// Replays an [`encode_state`] blob into this freshly built
    /// colorer. Errors name the offending field; on error the colorer
    /// must not be used (it may hold partial state).
    ///
    /// [`encode_state`]: StreamingColorer::encode_state
    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        let _ = state;
        Err(format!("{}: no state codec", self.name()))
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// An owned, thread-movable, type-erased colorer — the universal currency
/// of the session and service layers.
///
/// [`StreamingColorer`] is object-safe by design (the adversary game, the
/// engine, and `ColorerSpec::build` all traffic in trait objects), and
/// the blanket `impl StreamingColorer for Box<C>` below means a
/// `BoxedColorer` can be handed to any generic consumer of the trait —
/// the batch-equivalence and incremental-equivalence property suites run
/// on boxed colorers unchanged.
pub type BoxedColorer = Box<dyn StreamingColorer + Send>;

/// Boxes forward the whole contract to their contents, so type erasure
/// never changes observable behavior (same colorings, same space).
impl<C: StreamingColorer + ?Sized> StreamingColorer for Box<C> {
    fn process(&mut self, e: Edge) {
        (**self).process(e)
    }
    fn process_batch(&mut self, edges: &[Edge]) {
        (**self).process_batch(edges)
    }
    fn supports_deletions(&self) -> bool {
        (**self).supports_deletions()
    }
    fn process_signed(&mut self, t: SignedEdge) -> Result<(), String> {
        (**self).process_signed(t)
    }
    fn process_signed_batch(&mut self, tokens: &[SignedEdge]) -> Result<(), String> {
        (**self).process_signed_batch(tokens)
    }
    fn query(&mut self) -> Coloring {
        (**self).query()
    }
    fn query_incremental(&mut self) -> Coloring {
        (**self).query_incremental()
    }
    fn query_cache_stats(&self) -> Option<CacheStats> {
        (**self).query_cache_stats()
    }
    fn peak_space_bits(&self) -> u64 {
        (**self).peak_space_bits()
    }
    fn encode_state(&self) -> Result<String, String> {
        (**self).encode_state()
    }
    fn decode_state(&mut self, state: &str) -> Result<(), String> {
        (**self).decode_state(state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Feeds a whole (oblivious) stream through a colorer, then queries once.
///
/// Returns the final coloring. The common harness path for static-stream
/// experiments.
pub fn run_oblivious<C: StreamingColorer + ?Sized>(
    colorer: &mut C,
    edges: impl IntoIterator<Item = Edge>,
) -> Coloring {
    for e in edges {
        colorer.process(e);
    }
    colorer.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{generators, Graph};

    /// A toy store-everything colorer for exercising the trait machinery.
    struct StoreAll {
        n: usize,
        edges: Vec<Edge>,
    }

    impl StreamingColorer for StoreAll {
        fn process(&mut self, e: Edge) {
            self.edges.push(e);
        }
        fn query(&mut self) -> Coloring {
            let g = Graph::from_edges(self.n, self.edges.iter().copied());
            let mut c = Coloring::empty(self.n);
            sc_graph::greedy_complete(&g, &mut c);
            c
        }
        fn peak_space_bits(&self) -> u64 {
            self.edges.len() as u64 * crate::space::edge_bits(self.n)
        }
        fn name(&self) -> &'static str {
            "store-all"
        }
    }

    /// Compile-time proof that the trait stays object-safe: both the
    /// plain and the `Send`-bounded trait objects must be constructible.
    #[test]
    fn trait_is_object_safe_and_boxes_forward() {
        let mut boxed: BoxedColorer = Box::new(StoreAll { n: 6, edges: vec![] });
        let _plain: &mut dyn StreamingColorer = &mut *boxed;
        let g = generators::cycle(6);
        // The box is itself a StreamingColorer: generic consumers accept it.
        let coloring = run_oblivious(&mut boxed, g.edges());
        assert!(coloring.is_proper_total(&g));
        assert_eq!(boxed.name(), "store-all");
        assert!(boxed.peak_space_bits() > 0);
        assert!(boxed.query_cache_stats().is_none());
    }

    #[test]
    fn default_signed_path_accepts_inserts_and_names_delete_offenders() {
        let mut boxed: BoxedColorer = Box::new(StoreAll { n: 6, edges: vec![] });
        assert!(!boxed.supports_deletions(), "insert-only by default");
        boxed.process_signed(SignedEdge::insert(Edge::new(0, 1))).unwrap();
        boxed
            .process_signed_batch(&[
                SignedEdge::insert(Edge::new(1, 2)),
                SignedEdge::insert(Edge::new(2, 3)),
            ])
            .unwrap();
        let err = boxed.process_signed(SignedEdge::delete(Edge::new(0, 1))).unwrap_err();
        assert!(
            err.contains("store-all") && err.contains("(0, 1)") && err.contains("insert-only"),
            "error must name the colorer and the edge: {err}"
        );
    }

    #[test]
    fn run_oblivious_produces_proper_coloring() {
        let g = generators::gnp_with_max_degree(30, 6, 0.3, 1);
        let mut c = StoreAll { n: 30, edges: vec![] };
        let coloring = run_oblivious(&mut c, g.edges());
        assert!(coloring.is_proper_total(&g));
        assert!(coloring.palette_span() <= g.max_degree() as u64 + 1);
        assert_eq!(c.peak_space_bits(), g.m() as u64 * crate::space::edge_bits(30));
        assert_eq!(c.name(), "store-all");
    }

    #[test]
    fn query_mid_stream_is_allowed() {
        let g = generators::cycle(6);
        let edges: Vec<Edge> = g.edges().collect();
        let mut c = StoreAll { n: 6, edges: vec![] };
        c.process(edges[0]);
        c.process(edges[1]);
        let partial = c.query();
        assert!(partial.is_total());
        // Only the processed prefix must be properly colored.
        let prefix = Graph::from_edges(6, edges[..2].iter().copied());
        assert!(partial.is_proper_total(&prefix));
    }
}
