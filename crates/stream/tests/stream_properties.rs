//! Property-based tests for the streaming substrate: pass/space accounting
//! laws under arbitrary usage patterns.

use proptest::prelude::*;
use sc_graph::generators;
use sc_stream::{PassCounter, SpaceMeter, StoredStream, StreamSource, TracingSource};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pass_counter_counts_every_pass(n in 3usize..30, passes in 0usize..10) {
        let g = generators::cycle(n);
        let s = StoredStream::from_graph(&g);
        let pc = PassCounter::new(&s);
        for _ in 0..passes {
            prop_assert_eq!(pc.pass().count(), n);
        }
        prop_assert_eq!(pc.passes(), passes as u64);
    }

    #[test]
    fn space_meter_peak_is_max_prefix(charges in prop::collection::vec(0u64..10_000, 1..50)) {
        let mut m = SpaceMeter::new();
        let mut current = 0u64;
        let mut peak = 0u64;
        for (i, &c) in charges.iter().enumerate() {
            if i % 3 == 2 {
                m.release(c);
                current = current.saturating_sub(c);
            } else {
                m.charge(c);
                current += c;
                peak = peak.max(current);
            }
            prop_assert_eq!(m.current_bits(), current);
            prop_assert_eq!(m.peak_bits(), peak);
        }
    }

    #[test]
    fn tracing_source_counts_partial_reads(n in 4usize..40, take in 0usize..50) {
        let g = generators::path(n);
        let s = StoredStream::from_graph(&g);
        let t = TracingSource::new(&s);
        let read: Vec<_> = t.pass().take(take).collect();
        let r = t.report();
        prop_assert_eq!(r.per_pass[0], read.len());
        prop_assert_eq!(r.all_passes_complete(), read.len() == s.len());
    }
}

// ---- arrival-order policy laws ----

use sc_graph::generators as gens;
use sc_stream::StreamOrder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_order_is_a_permutation(
        n in 10usize..60,
        d in 2usize..8,
        gseed in any::<u64>(),
        oseed in any::<u64>(),
    ) {
        let g = gens::gnp_with_max_degree(n, d, 0.4, gseed);
        let mut orig: Vec<_> = g.edges().collect();
        orig.sort_unstable();
        for order in StreamOrder::sweep(oseed) {
            let mut arranged = order.arrange(&g);
            arranged.sort_unstable();
            prop_assert_eq!(&arranged, &orig, "{} is not a permutation", order.label());
        }
    }

    #[test]
    fn hub_orders_are_reverses_in_rank(
        n in 10usize..50,
        d in 2usize..8,
        seed in any::<u64>(),
    ) {
        // hubs-first and hubs-last sort by the same key in opposite
        // directions: the multiset of key-sequences must be reversed.
        let g = gens::gnp_with_max_degree(n, d, 0.4, seed);
        let key = |e: &sc_graph::Edge| g.degree(e.u()).max(g.degree(e.v()));
        let first: Vec<usize> = StreamOrder::HubsFirst.arrange(&g).iter().map(key).collect();
        let mut last: Vec<usize> = StreamOrder::HubsLast.arrange(&g).iter().map(key).collect();
        last.reverse();
        prop_assert_eq!(first, last);
    }
}
