//! The declarative experiment unit.

use crate::source::SourceSpec;
use crate::spec::ColorerSpec;
use sc_stream::{EngineConfig, QuerySchedule, StreamOrder};

/// One experiment: a graph source, an arrival order, an algorithm, an
/// engine configuration and a seed.
///
/// Scenarios are plain data (`Clone + Send + Sync`), so parameter grids
/// are built by mapping over vectors and handed to
/// [`Runner::run_all`](crate::Runner::run_all) for parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display label carried into the outcome (defaults to the spec's).
    pub label: String,
    /// The input graph.
    pub source: SourceSpec,
    /// Edge arrival order.
    pub order: StreamOrder,
    /// The algorithm under test.
    pub colorer: ColorerSpec,
    /// Chunking and checkpoint schedule. Applies to single-pass
    /// streaming specs only; multi-pass and offline specs own their
    /// pass structure and produce no mid-stream checkpoints.
    pub engine: EngineConfig,
    /// Algorithm seed (independent of the source's generator seed).
    pub seed: u64,
}

impl Scenario {
    /// A scenario with defaults: generated order, batched engine, final
    /// query only, seed 7.
    pub fn new(source: SourceSpec, colorer: ColorerSpec) -> Self {
        Self {
            label: colorer.label().to_string(),
            source,
            order: StreamOrder::AsGenerated,
            colorer,
            engine: EngineConfig::default(),
            seed: 7,
        }
    }

    /// Sets the display label.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets the arrival order.
    pub fn with_order(mut self, order: StreamOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the algorithm seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Adds a mid-stream checkpoint schedule.
    pub fn with_schedule(mut self, schedule: QuerySchedule) -> Self {
        self.engine.schedule = schedule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let s = Scenario::new(SourceSpec::exact_degree(50, 5, 1), ColorerSpec::Auto)
            .labeled("demo")
            .with_order(StreamOrder::Shuffled(3))
            .with_seed(9)
            .with_engine(EngineConfig::batched(32))
            .with_schedule(QuerySchedule::EveryEdges(10));
        assert_eq!(s.label, "demo");
        assert_eq!(s.order, StreamOrder::Shuffled(3));
        assert_eq!(s.seed, 9);
        assert_eq!(s.engine.chunk_size, 32);
        assert_eq!(s.engine.schedule, QuerySchedule::EveryEdges(10));
    }
}
