//! Declarative graph sources.

use sc_graph::{generators, Edge, Graph};
use sc_hash::SplitMix64;
use sc_stream::SignedEdge;
use std::sync::Arc;

/// Where a scenario's graph comes from.
///
/// The first two variants are **insert-only**: the stream is some
/// arrangement of a fixed graph's edges. The [`SourceSpec::Churn`] and
/// [`SourceSpec::SlidingWindow`] variants are **dynamic (turnstile)**:
/// they emit a signed token stream ([`SourceSpec::signed_tokens`])
/// carrying deletions, and [`SourceSpec::materialize`] returns the
/// *live* graph after the whole stream — the graph every final output
/// is judged against.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceSpec {
    /// An already-materialized graph (e.g. read from a file), shared
    /// cheaply across scenarios.
    Stored(Arc<Graph>),
    /// A reproducible generator family; materialized per run.
    Family {
        /// The family to draw from.
        family: GraphFamily,
        /// Number of vertices.
        n: usize,
        /// Degree bound / target (family-dependent).
        delta: usize,
        /// Density parameter for the random families.
        p: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Turnstile churn over a `G(n, p)` base graph: edges arrive in
    /// generator order, roughly every third insertion is followed by
    /// the deletion of a random live edge, and `rounds` extra
    /// delete/re-insert oscillations hammer the final live set. The
    /// live graph is the base graph minus the churn casualties; edge
    /// multiplicity never exceeds one.
    Churn {
        /// Number of vertices.
        n: usize,
        /// Degree bound of the base graph.
        delta: usize,
        /// Density of the base `G(n, p)`.
        p: f64,
        /// Generator seed (base graph and churn schedule).
        seed: u64,
        /// Extra delete/re-insert oscillations after the base stream.
        rounds: usize,
    },
    /// Sliding-window turnstile over a `G(n, p)` base graph: edges
    /// arrive in generator order and once more than `window` are live,
    /// every insertion is paired with the deletion of the **oldest**
    /// live edge. The live graph is the last `window` edges (or the
    /// whole base graph when it is smaller).
    SlidingWindow {
        /// Number of vertices.
        n: usize,
        /// Degree bound of the base graph.
        delta: usize,
        /// Density of the base `G(n, p)`.
        p: f64,
        /// Generator seed.
        seed: u64,
        /// Maximum number of live edges.
        window: usize,
    },
}

/// The generator families scenarios can name (mirrors
/// `sc_graph::generators`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// `G(n, p)` with degrees capped at `delta`.
    Gnp,
    /// Random graph with *exactly* max degree `delta`.
    ExactDegree,
    /// Preferential attachment with degree cap `delta`.
    PreferentialAttachment,
    /// The `n`-cycle (requires `n ≥ 3`).
    Cycle,
    /// The `n`-path.
    Path,
    /// The complete graph `K_n`.
    Complete,
    /// The `n`-vertex star.
    Star,
    /// Disjoint union of `k` cliques of the given size.
    CliqueUnion {
        /// Number of cliques.
        k: usize,
        /// Vertices per clique.
        size: usize,
    },
    /// Random bipartite with side sizes `a`, `b`.
    Bipartite {
        /// Left side size.
        a: usize,
        /// Right side size.
        b: usize,
    },
    /// The Petersen graph.
    Petersen,
    /// Circulant graph with jumps `1..=delta/2`.
    Circulant,
}

impl SourceSpec {
    /// A stored-graph source.
    pub fn stored(g: Graph) -> Self {
        SourceSpec::Stored(Arc::new(g))
    }

    /// Shorthand: `G(n, p)` capped at `delta`.
    pub fn gnp(n: usize, delta: usize, p: f64, seed: u64) -> Self {
        SourceSpec::Family { family: GraphFamily::Gnp, n, delta, p, seed }
    }

    /// Shorthand: exactly max degree `delta`.
    pub fn exact_degree(n: usize, delta: usize, seed: u64) -> Self {
        SourceSpec::Family { family: GraphFamily::ExactDegree, n, delta, p: 0.3, seed }
    }

    /// Shorthand: churn with the default density.
    pub fn churn(n: usize, delta: usize, seed: u64, rounds: usize) -> Self {
        SourceSpec::Churn { n, delta, p: 0.4, seed, rounds }
    }

    /// Shorthand: sliding window with the default density.
    pub fn sliding_window(n: usize, delta: usize, seed: u64, window: usize) -> Self {
        SourceSpec::SlidingWindow { n, delta, p: 0.4, seed, window }
    }

    /// Whether this source's stream carries deletions. Dynamic sources
    /// need a deletion-supporting colorer
    /// ([`StreamingColorer::supports_deletions`](sc_stream::StreamingColorer::supports_deletions))
    /// and ignore the scenario's
    /// [`StreamOrder`](sc_stream::StreamOrder) — the signed token
    /// sequence *is* the stream, and permuting it would reorder an edge
    /// past its own deletion.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, SourceSpec::Churn { .. } | SourceSpec::SlidingWindow { .. })
    }

    /// Builds (or shares) the graph: the whole graph for insert-only
    /// sources, the **live** graph (post-stream) for dynamic ones.
    pub fn materialize(&self) -> Arc<Graph> {
        match self {
            SourceSpec::Stored(g) => Arc::clone(g),
            SourceSpec::Family { family, n, delta, p, seed } => {
                Arc::new(family.generate(*n, *delta, *p, *seed))
            }
            SourceSpec::Churn { n, .. } | SourceSpec::SlidingWindow { n, .. } => {
                let (tokens, _) = self.signed_stream();
                Arc::new(live_graph(*n, &tokens))
            }
        }
    }

    /// The signed token stream of a dynamic source.
    ///
    /// Insert-only sources return their [`SourceSpec::materialize`]
    /// edges as bare insertions (generator order), so every source has
    /// a token form; dynamic sources are where the signs get
    /// interesting.
    pub fn signed_tokens(&self) -> Vec<SignedEdge> {
        match self {
            SourceSpec::Stored(_) | SourceSpec::Family { .. } => {
                self.materialize().edges().map(SignedEdge::insert).collect()
            }
            _ => self.signed_stream().0,
        }
    }

    /// The degree bound colorers should be built with: for dynamic
    /// sources the max degree of the graph of **every edge ever
    /// inserted** (an upper bound on the live degree at every prefix),
    /// for insert-only sources the materialized graph's max degree.
    pub fn stream_delta(&self) -> usize {
        match self {
            SourceSpec::Stored(_) | SourceSpec::Family { .. } => self.materialize().max_degree(),
            _ => self.signed_stream().1,
        }
    }

    /// Generates the token stream and the union-graph max degree.
    fn signed_stream(&self) -> (Vec<SignedEdge>, usize) {
        match *self {
            SourceSpec::Churn { n, delta, p, seed, rounds } => {
                let base = generators::gnp_with_max_degree(n, delta, p, seed);
                let mut rng = SplitMix64::new(seed ^ 0xC0_u64);
                let mut live: Vec<Edge> = Vec::new();
                let mut tokens = Vec::new();
                for e in base.edges() {
                    tokens.push(SignedEdge::insert(e));
                    live.push(e);
                    // Roughly every third insertion, delete a random
                    // live edge (possibly the one just inserted).
                    if rng.below(3) == 0 && !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let victim = live.swap_remove(i);
                        tokens.push(SignedEdge::delete(victim));
                    }
                }
                // Oscillation tail: delete + re-insert leaves the live
                // set unchanged but forces the colorer through real
                // turnstile transitions.
                for _ in 0..rounds {
                    if live.is_empty() {
                        break;
                    }
                    let e = live[rng.below(live.len() as u64) as usize];
                    tokens.push(SignedEdge::delete(e));
                    tokens.push(SignedEdge::insert(e));
                }
                (tokens, base.max_degree())
            }
            SourceSpec::SlidingWindow { n, delta, p, seed, window } => {
                let base = generators::gnp_with_max_degree(n, delta, p, seed);
                let window = window.max(1);
                let mut held: std::collections::VecDeque<Edge> = std::collections::VecDeque::new();
                let mut tokens = Vec::new();
                for e in base.edges() {
                    tokens.push(SignedEdge::insert(e));
                    held.push_back(e);
                    if held.len() > window {
                        let oldest = held.pop_front().expect("window overflow implies an edge");
                        tokens.push(SignedEdge::delete(oldest));
                    }
                }
                (tokens, base.max_degree())
            }
            SourceSpec::Stored(_) | SourceSpec::Family { .. } => {
                unreachable!("insert-only sources take the materialize() path")
            }
        }
    }
}

/// Replays `tokens` over a multiplicity map and returns the live graph
/// (canonical sorted-edge construction).
fn live_graph(n: usize, tokens: &[SignedEdge]) -> Graph {
    let mut live: std::collections::BTreeSet<Edge> = std::collections::BTreeSet::new();
    for t in tokens {
        if t.is_insert() {
            assert!(live.insert(t.edge), "dynamic source inserted duplicate edge {}", t.edge);
        } else {
            assert!(live.remove(&t.edge), "dynamic source deleted absent edge {}", t.edge);
        }
    }
    Graph::from_edges(n, live)
}

impl GraphFamily {
    /// Generates a graph of this family (callers validate parameters;
    /// precondition violations panic, as in `sc_graph::generators`).
    pub fn generate(self, n: usize, delta: usize, p: f64, seed: u64) -> Graph {
        match self {
            GraphFamily::Gnp => generators::gnp_with_max_degree(n, delta, p, seed),
            GraphFamily::ExactDegree => generators::random_with_exact_max_degree(n, delta, seed),
            GraphFamily::PreferentialAttachment => {
                generators::preferential_attachment(n, 2, delta, seed)
            }
            GraphFamily::Cycle => generators::cycle(n),
            GraphFamily::Path => generators::path(n),
            GraphFamily::Complete => generators::complete(n),
            GraphFamily::Star => generators::star(n),
            GraphFamily::CliqueUnion { k, size } => generators::clique_union(k, size),
            GraphFamily::Bipartite { a, b } => generators::random_bipartite(a, b, p, delta, seed),
            GraphFamily::Petersen => generators::petersen(),
            GraphFamily::Circulant => generators::circulant(n, (delta / 2).max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_source_shares_one_graph() {
        let spec = SourceSpec::stored(generators::complete(5));
        let a = spec.materialize();
        let b = spec.materialize();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.m(), 10);
    }

    #[test]
    fn family_sources_are_reproducible() {
        let spec = SourceSpec::gnp(60, 6, 0.4, 9);
        let a = spec.materialize();
        let b = spec.materialize();
        assert_eq!(*a, *b);
        assert!(a.max_degree() <= 6);
    }

    #[test]
    fn churn_streams_are_reproducible_and_single_multiplicity() {
        let spec = SourceSpec::churn(40, 6, 11, 8);
        assert!(spec.is_dynamic());
        let a = spec.signed_tokens();
        let b = spec.signed_tokens();
        assert_eq!(a, b, "token stream must be seed-deterministic");
        assert!(a.iter().any(|t| !t.is_insert()), "churn must actually delete");
        // Replaying must never go below zero or above one per edge —
        // live_graph asserts exactly that.
        let live = spec.materialize();
        assert_eq!(live.n(), 40);
        assert!(live.max_degree() <= spec.stream_delta());
        let inserts = a.iter().filter(|t| t.is_insert()).count();
        let deletes = a.len() - inserts;
        assert_eq!(live.m(), inserts - deletes);
    }

    #[test]
    fn sliding_window_caps_live_edges() {
        let spec = SourceSpec::sliding_window(40, 6, 3, 10);
        assert!(spec.is_dynamic());
        let tokens = spec.signed_tokens();
        let mut live = 0usize;
        let mut peak = 0usize;
        for t in &tokens {
            if t.is_insert() {
                live += 1;
            } else {
                live -= 1;
            }
            peak = peak.max(live);
        }
        assert!(peak <= 11, "window of 10 allows one transient overshoot, saw {peak}");
        assert_eq!(spec.materialize().m(), live);
        assert!(spec.materialize().m() <= 10);
    }

    #[test]
    fn insert_only_sources_token_form_is_bare_insertions() {
        let spec = SourceSpec::exact_degree(30, 4, 2);
        assert!(!spec.is_dynamic());
        let tokens = spec.signed_tokens();
        assert!(tokens.iter().all(|t| t.is_insert()));
        assert_eq!(tokens.len(), spec.materialize().m());
        assert_eq!(spec.stream_delta(), spec.materialize().max_degree());
    }

    #[test]
    fn every_family_generates() {
        for family in [
            GraphFamily::Gnp,
            GraphFamily::ExactDegree,
            GraphFamily::PreferentialAttachment,
            GraphFamily::Cycle,
            GraphFamily::Path,
            GraphFamily::Complete,
            GraphFamily::Star,
            GraphFamily::CliqueUnion { k: 3, size: 4 },
            GraphFamily::Bipartite { a: 10, b: 12 },
            GraphFamily::Petersen,
            GraphFamily::Circulant,
        ] {
            let g = family.generate(24, 4, 0.3, 1);
            assert!(g.n() > 0, "{family:?} generated an empty graph");
        }
    }
}
