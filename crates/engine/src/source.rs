//! Declarative graph sources.

use sc_graph::{generators, Graph};
use std::sync::Arc;

/// Where a scenario's graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceSpec {
    /// An already-materialized graph (e.g. read from a file), shared
    /// cheaply across scenarios.
    Stored(Arc<Graph>),
    /// A reproducible generator family; materialized per run.
    Family {
        /// The family to draw from.
        family: GraphFamily,
        /// Number of vertices.
        n: usize,
        /// Degree bound / target (family-dependent).
        delta: usize,
        /// Density parameter for the random families.
        p: f64,
        /// Generator seed.
        seed: u64,
    },
}

/// The generator families scenarios can name (mirrors
/// `sc_graph::generators`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// `G(n, p)` with degrees capped at `delta`.
    Gnp,
    /// Random graph with *exactly* max degree `delta`.
    ExactDegree,
    /// Preferential attachment with degree cap `delta`.
    PreferentialAttachment,
    /// The `n`-cycle (requires `n ≥ 3`).
    Cycle,
    /// The `n`-path.
    Path,
    /// The complete graph `K_n`.
    Complete,
    /// The `n`-vertex star.
    Star,
    /// Disjoint union of `k` cliques of the given size.
    CliqueUnion {
        /// Number of cliques.
        k: usize,
        /// Vertices per clique.
        size: usize,
    },
    /// Random bipartite with side sizes `a`, `b`.
    Bipartite {
        /// Left side size.
        a: usize,
        /// Right side size.
        b: usize,
    },
    /// The Petersen graph.
    Petersen,
    /// Circulant graph with jumps `1..=delta/2`.
    Circulant,
}

impl SourceSpec {
    /// A stored-graph source.
    pub fn stored(g: Graph) -> Self {
        SourceSpec::Stored(Arc::new(g))
    }

    /// Shorthand: `G(n, p)` capped at `delta`.
    pub fn gnp(n: usize, delta: usize, p: f64, seed: u64) -> Self {
        SourceSpec::Family { family: GraphFamily::Gnp, n, delta, p, seed }
    }

    /// Shorthand: exactly max degree `delta`.
    pub fn exact_degree(n: usize, delta: usize, seed: u64) -> Self {
        SourceSpec::Family { family: GraphFamily::ExactDegree, n, delta, p: 0.3, seed }
    }

    /// Builds (or shares) the graph.
    pub fn materialize(&self) -> Arc<Graph> {
        match self {
            SourceSpec::Stored(g) => Arc::clone(g),
            SourceSpec::Family { family, n, delta, p, seed } => {
                Arc::new(family.generate(*n, *delta, *p, *seed))
            }
        }
    }
}

impl GraphFamily {
    /// Generates a graph of this family (callers validate parameters;
    /// precondition violations panic, as in `sc_graph::generators`).
    pub fn generate(self, n: usize, delta: usize, p: f64, seed: u64) -> Graph {
        match self {
            GraphFamily::Gnp => generators::gnp_with_max_degree(n, delta, p, seed),
            GraphFamily::ExactDegree => generators::random_with_exact_max_degree(n, delta, seed),
            GraphFamily::PreferentialAttachment => {
                generators::preferential_attachment(n, 2, delta, seed)
            }
            GraphFamily::Cycle => generators::cycle(n),
            GraphFamily::Path => generators::path(n),
            GraphFamily::Complete => generators::complete(n),
            GraphFamily::Star => generators::star(n),
            GraphFamily::CliqueUnion { k, size } => generators::clique_union(k, size),
            GraphFamily::Bipartite { a, b } => generators::random_bipartite(a, b, p, delta, seed),
            GraphFamily::Petersen => generators::petersen(),
            GraphFamily::Circulant => generators::circulant(n, (delta / 2).max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_source_shares_one_graph() {
        let spec = SourceSpec::stored(generators::complete(5));
        let a = spec.materialize();
        let b = spec.materialize();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.m(), 10);
    }

    #[test]
    fn family_sources_are_reproducible() {
        let spec = SourceSpec::gnp(60, 6, 0.4, 9);
        let a = spec.materialize();
        let b = spec.materialize();
        assert_eq!(*a, *b);
        assert!(a.max_degree() <= 6);
    }

    #[test]
    fn every_family_generates() {
        for family in [
            GraphFamily::Gnp,
            GraphFamily::ExactDegree,
            GraphFamily::PreferentialAttachment,
            GraphFamily::Cycle,
            GraphFamily::Path,
            GraphFamily::Complete,
            GraphFamily::Star,
            GraphFamily::CliqueUnion { k: 3, size: 4 },
            GraphFamily::Bipartite { a: 10, b: 12 },
            GraphFamily::Petersen,
            GraphFamily::Circulant,
        ] {
            let g = family.generate(24, 4, 0.3, 1);
            assert!(g.n() > 0, "{family:?} generated an empty graph");
        }
    }
}
