//! # `sc-engine` — the declarative experiment layer
//!
//! Every harness in this workspace used to hand-roll the same loop:
//! generate a graph, arrange its edges, feed a colorer, query, validate,
//! report. This crate replaces those loops with one vocabulary:
//!
//! * [`SourceSpec`] / [`GraphFamily`] — *what graph* (a stored graph or a
//!   reproducible generator family);
//! * [`ColorerSpec`] — *which algorithm* (every streaming colorer,
//!   multi-pass algorithm and offline comparator the workspace exposes);
//! * [`Scenario`] — *one experiment*: source + arrival order + algorithm
//!   + engine configuration (chunk size, checkpoint schedule) + seed;
//! * [`Runner`] — *execution*: runs a scenario through the batched
//!   [`StreamEngine`](sc_stream::StreamEngine), and runs independent
//!   scenarios (repetition sweeps, parameter grids, adversary trials)
//!   in parallel across threads — each colorer stays single-threaded, so
//!   the streaming model's space accounting is untouched;
//! * [`AttackScenario`] / [`AdversarySpec`] — adaptive-adversary games as
//!   declarative scenarios, with parallel multi-trial sweeps;
//! * [`verify`] — the BBMU21 coloring-verification runner;
//! * [`wire`] / [`flatjson`] — the serde-free wire format that
//!   round-trips scenarios to flat JSON, making grids *distributable*;
//! * [`shard`] — grids and trial sweeps fanned out across OS processes:
//!   spec files, the worker protocol, and the merging [`Coordinator`].
//!
//! **Ownership contract** (see ROADMAP.md, "which layer owns what"):
//! this crate owns the **only** parallelism in the workspace
//! ([`Runner`] fans whole scenarios across scoped threads; colorers
//! stay single-threaded), the **one** algorithm dispatch table
//! ([`ColorerSpec::build`] — runner, referee, CLI, benches, service
//! all call it), and the canonical byte-stable codecs ([`flatjson`],
//! [`wire`]) plus the deterministic [`shard::partition`] that every
//! distribution layer above (process sharding, `sc-service`,
//! `sc-cluster`) reuses rather than reinvents — which is why their
//! merge laws can all be `diff`.
//!
//! ```
//! use sc_engine::{ColorerSpec, Runner, Scenario, SourceSpec};
//!
//! let scenario = Scenario::new(
//!     SourceSpec::exact_degree(200, 12, 42),
//!     ColorerSpec::Robust { beta: None },
//! );
//! let outcome = Runner::default().run(&scenario);
//! assert!(outcome.proper);
//! ```

pub mod attack;
pub mod flatjson;
pub mod parallel;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod source;
pub mod spec;
pub mod verify;
pub mod wire;

pub use attack::{AdversarySpec, AttackScenario};
pub use parallel::par_map;
pub use runner::{RunOutcome, Runner};
pub use scenario::Scenario;
pub use shard::{Coordinator, RunSummary, ShardJob, ShardOutcome};
pub use source::{GraphFamily, SourceSpec};
pub use spec::ColorerSpec;
pub use verify::{run_verify, VerifyMode, VerifyReport};
