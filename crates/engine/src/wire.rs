//! Wire-format encoding of the declarative experiment layer.
//!
//! [`Scenario`] and [`AttackScenario`] are plain data, which is what
//! makes grids shardable across OS processes: this module round-trips
//! them (and everything they contain — [`SourceSpec`], [`ColorerSpec`],
//! [`sc_stream::EngineConfig`], [`sc_stream::StreamOrder`]) through the
//! [`flatjson`](crate::flatjson) wire format, one flat object per
//! scenario. The [`shard`](crate::shard) coordinator writes a spec file
//! with [`encode_grid`]; each `shard_worker` process reads it back with
//! [`decode_grid`] and runs its slice.
//!
//! Laws (property-tested in `tests/wire_roundtrip.rs`):
//!
//! * **Round-trip** — `from_wire(to_wire(x)) == x` for every scenario the
//!   workspace can express, including irregular floats (`-0.0`,
//!   subnormals, `1e308`) and empty grids. The one caveat is stored
//!   graphs: adjacency-list *order* is not on the wire, so a decoded
//!   graph is the canonical representative with the same edge sequence.
//!   `decode(encode(·))` is idempotent, and the shard layer always
//!   compares runs of the *decoded* job (see
//!   [`shard::ShardJob::canonicalize`](crate::shard::ShardJob::canonicalize)).
//! * **Canonical text** — equal values encode to byte-identical text
//!   (sorted keys, deterministic number formatting), which is what lets
//!   CI `diff` merged shard outputs against single-process runs.

use crate::attack::{AdversarySpec, AttackScenario};
use crate::flatjson::{encode_array, parse_array, FlatObject, Scalar};
use crate::scenario::Scenario;
use crate::source::{GraphFamily, SourceSpec};
use crate::spec::ColorerSpec;
use sc_graph::{Edge, Graph};
use sc_stream::{EngineConfig, StreamOrder};
use std::sync::Arc;
use streamcolor::{DerandStrategy, DetConfig};

// ---------------------------------------------------------------------
// Field accessors (shared by the decoders and the sc-service protocol;
// errors distinguish an absent field from a present-but-mistyped one,
// naming the field either way).
// ---------------------------------------------------------------------

/// Reads a required string field.
///
/// # Errors
/// Names the field, distinguishing absent from wrongly typed.
pub fn str_field<'a>(obj: &'a FlatObject, key: &str) -> Result<&'a str, String> {
    match obj.get(key) {
        None => Err(format!("missing string field {key:?}")),
        Some(v) => v.as_str().ok_or(format!("field {key:?} must be a string")),
    }
}

/// Reads a required non-negative integer field.
///
/// # Errors
/// Names the field, distinguishing absent from wrongly typed (floats
/// like `100.0` are *not* integers on this wire — [`Scalar::Uint`] is).
pub fn u64_field(obj: &FlatObject, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        None => Err(format!("missing integer field {key:?}")),
        Some(v) => v.as_u64().ok_or(format!("field {key:?} must be a non-negative integer")),
    }
}

/// Reads a required non-negative integer field as a `usize`.
///
/// # Errors
/// Like [`u64_field`], plus overflow on 32-bit targets.
pub fn usize_field(obj: &FlatObject, key: &str) -> Result<usize, String> {
    u64_field(obj, key)?.try_into().map_err(|_| format!("field {key:?} overflows usize"))
}

pub(crate) fn f64_field(obj: &FlatObject, key: &str) -> Result<f64, String> {
    match obj.get(key) {
        None => Err(format!("missing numeric field {key:?}")),
        Some(v) => v.as_f64().ok_or(format!("field {key:?} must be a number")),
    }
}

pub(crate) fn bool_field(obj: &FlatObject, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None => Err(format!("missing boolean field {key:?}")),
        Some(v) => v.as_bool().ok_or(format!("field {key:?} must be a boolean")),
    }
}

pub(crate) fn opt_u64(obj: &FlatObject, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or(format!("field {key:?} must be an integer")),
    }
}

fn opt_usize(obj: &FlatObject, key: &str) -> Result<Option<usize>, String> {
    opt_u64(obj, key)?
        .map(|x| x.try_into().map_err(|_| format!("field {key:?} overflows usize")))
        .transpose()
}

/// Errors on any key of `obj` that the canonical re-encoding of the
/// decoded value does not contain.
///
/// Decoders read fields by name, so a misspelled or foreign key in a
/// hand-written spec file would otherwise be *silently ignored* — the
/// classic config-rot failure where `"buckts": 12` quietly runs the
/// default. Comparing against the canonical encoding of what was
/// actually decoded needs no per-variant key tables and can never drift
/// from the encoder.
pub(crate) fn reject_unknown_keys(
    obj: &FlatObject,
    canonical: &FlatObject,
    what: &str,
) -> Result<(), String> {
    for key in obj.keys() {
        if !canonical.contains_key(key) {
            return Err(format!("{what}: unknown key {key:?}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Edge lists (stored graphs, replay adversaries).
// ---------------------------------------------------------------------

/// Encodes an edge sequence as `"0-1 0-2 …"` (empty string for none).
/// Public because the `sc-service` line protocol ships `push_batch`
/// payloads in exactly this form.
pub fn encode_edges(edges: impl IntoIterator<Item = Edge>) -> String {
    let list: Vec<String> = edges.into_iter().map(|e| format!("{}-{}", e.u(), e.v())).collect();
    list.join(" ")
}

/// Decodes an [`encode_edges`] string; endpoints must be distinct and
/// `< n` when a bound is given.
///
/// # Errors
/// Returns a message naming the malformed token.
pub fn decode_edges(text: &str, n: Option<usize>) -> Result<Vec<Edge>, String> {
    let mut out = Vec::new();
    for tok in text.split_whitespace() {
        let (a, b) = tok.split_once('-').ok_or(format!("edge {tok:?} is not u-v"))?;
        let a: u32 = a.parse().map_err(|e| format!("edge {tok:?}: {e}"))?;
        let b: u32 = b.parse().map_err(|e| format!("edge {tok:?}: {e}"))?;
        if a == b {
            return Err(format!("edge {tok:?} is a self-loop"));
        }
        if let Some(n) = n {
            if a.max(b) as usize >= n {
                return Err(format!("edge {tok:?} out of range for n = {n}"));
            }
        }
        out.push(Edge::new(a, b));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// ColorerSpec <-> fields ("colorer" + per-algorithm parameters).
// ---------------------------------------------------------------------

/// Writes the `"colorer"` discriminant and per-algorithm parameter
/// fields of `spec` into `obj` — the same flat fields a [`Scenario`]
/// object carries, reused verbatim by the `sc-service` `open` command.
pub fn colorer_to_wire(spec: &ColorerSpec, obj: &mut FlatObject) {
    let id = |obj: &mut FlatObject, name: &str| {
        obj.insert("colorer".into(), Scalar::Str(name.into()));
    };
    match spec {
        ColorerSpec::Robust { beta } => {
            id(obj, "robust");
            if let Some(b) = beta {
                obj.insert("beta".into(), Scalar::Num(*b));
            }
        }
        ColorerSpec::Auto => id(obj, "auto"),
        ColorerSpec::RandEfficient => id(obj, "rand-efficient"),
        ColorerSpec::Cgs22 => id(obj, "cgs22"),
        ColorerSpec::Bg18 { buckets } => {
            id(obj, "bg18");
            if let Some(b) = buckets {
                obj.insert("buckets".into(), Scalar::Uint(*b));
            }
        }
        ColorerSpec::Bcg20 { epsilon } => {
            id(obj, "bcg20");
            obj.insert("epsilon".into(), Scalar::Num(*epsilon));
        }
        ColorerSpec::PaletteSparsification { lists } => {
            id(obj, "ps");
            if let Some(k) = lists {
                obj.insert("lists".into(), Scalar::Uint(*k as u64));
            }
        }
        ColorerSpec::StoreAll => id(obj, "store-all"),
        ColorerSpec::DynamicSr { sparsity } => {
            id(obj, "dynamic-sr");
            if let Some(s) = sparsity {
                obj.insert("sparsity".into(), Scalar::Uint(*s as u64));
            }
        }
        ColorerSpec::Trivial => id(obj, "trivial"),
        ColorerSpec::Det(config) => {
            id(obj, "det");
            match config.derand {
                DerandStrategy::FullFamily => {
                    obj.insert("derand".into(), Scalar::Str("full".into()));
                }
                DerandStrategy::Grid { l } => {
                    obj.insert("derand".into(), Scalar::Str("grid".into()));
                    obj.insert("grid_l".into(), Scalar::Uint(l as u64));
                }
            }
            obj.insert("max_epochs".into(), Scalar::Uint(config.max_epochs as u64));
            obj.insert("track_potential".into(), Scalar::Bool(config.track_potential));
        }
        ColorerSpec::BatchGreedy => id(obj, "batch-greedy"),
        ColorerSpec::OfflineGreedy => id(obj, "offline-greedy"),
        ColorerSpec::Brooks => id(obj, "brooks"),
    }
}

/// Reads a [`colorer_to_wire`] field set back out of `obj`.
///
/// # Errors
/// Returns a message naming the missing or malformed field.
pub fn colorer_from_wire(obj: &FlatObject) -> Result<ColorerSpec, String> {
    Ok(match str_field(obj, "colorer")? {
        "robust" => {
            let beta = match obj.get("beta") {
                None => None,
                Some(v) => {
                    Some(v.as_f64().ok_or_else(|| "field \"beta\" must be a number".to_string())?)
                }
            };
            ColorerSpec::Robust { beta }
        }
        "auto" => ColorerSpec::Auto,
        "rand-efficient" => ColorerSpec::RandEfficient,
        "cgs22" => ColorerSpec::Cgs22,
        "bg18" => ColorerSpec::Bg18 { buckets: opt_u64(obj, "buckets")? },
        "bcg20" => ColorerSpec::Bcg20 { epsilon: f64_field(obj, "epsilon")? },
        "ps" => ColorerSpec::PaletteSparsification { lists: opt_usize(obj, "lists")? },
        "store-all" => ColorerSpec::StoreAll,
        "dynamic-sr" => ColorerSpec::DynamicSr { sparsity: opt_usize(obj, "sparsity")? },
        "trivial" => ColorerSpec::Trivial,
        "det" => {
            let derand = match str_field(obj, "derand")? {
                "full" => DerandStrategy::FullFamily,
                "grid" => DerandStrategy::Grid { l: usize_field(obj, "grid_l")? },
                other => return Err(format!("unknown derand strategy {other:?}")),
            };
            ColorerSpec::Det(DetConfig {
                derand,
                max_epochs: usize_field(obj, "max_epochs")?,
                track_potential: bool_field(obj, "track_potential")?,
            })
        }
        "batch-greedy" => ColorerSpec::BatchGreedy,
        "offline-greedy" => ColorerSpec::OfflineGreedy,
        "brooks" => ColorerSpec::Brooks,
        other => return Err(format!("unknown colorer {other:?}")),
    })
}

// ---------------------------------------------------------------------
// SourceSpec <-> fields.
// ---------------------------------------------------------------------

fn family_id(family: GraphFamily) -> &'static str {
    match family {
        GraphFamily::Gnp => "gnp",
        GraphFamily::ExactDegree => "exact",
        GraphFamily::PreferentialAttachment => "pa",
        GraphFamily::Cycle => "cycle",
        GraphFamily::Path => "path",
        GraphFamily::Complete => "complete",
        GraphFamily::Star => "star",
        GraphFamily::CliqueUnion { .. } => "clique-union",
        GraphFamily::Bipartite { .. } => "bipartite",
        GraphFamily::Petersen => "petersen",
        GraphFamily::Circulant => "circulant",
    }
}

fn source_to_wire(source: &SourceSpec, obj: &mut FlatObject) {
    match source {
        SourceSpec::Stored(g) => {
            obj.insert("source".into(), Scalar::Str("stored".into()));
            obj.insert("n".into(), Scalar::Uint(g.n() as u64));
            obj.insert("edges".into(), Scalar::Str(encode_edges(g.edges())));
        }
        SourceSpec::Family { family, n, delta, p, seed } => {
            obj.insert("source".into(), Scalar::Str("family".into()));
            obj.insert("family".into(), Scalar::Str(family_id(*family).into()));
            obj.insert("n".into(), Scalar::Uint(*n as u64));
            obj.insert("delta".into(), Scalar::Uint(*delta as u64));
            obj.insert("p".into(), Scalar::Num(*p));
            obj.insert("source_seed".into(), Scalar::Uint(*seed));
            match family {
                GraphFamily::CliqueUnion { k, size } => {
                    obj.insert("cu_k".into(), Scalar::Uint(*k as u64));
                    obj.insert("cu_size".into(), Scalar::Uint(*size as u64));
                }
                GraphFamily::Bipartite { a, b } => {
                    obj.insert("bip_a".into(), Scalar::Uint(*a as u64));
                    obj.insert("bip_b".into(), Scalar::Uint(*b as u64));
                }
                _ => {}
            }
        }
        SourceSpec::Churn { n, delta, p, seed, rounds } => {
            obj.insert("source".into(), Scalar::Str("churn".into()));
            obj.insert("n".into(), Scalar::Uint(*n as u64));
            obj.insert("delta".into(), Scalar::Uint(*delta as u64));
            obj.insert("p".into(), Scalar::Num(*p));
            obj.insert("source_seed".into(), Scalar::Uint(*seed));
            obj.insert("churn_rounds".into(), Scalar::Uint(*rounds as u64));
        }
        SourceSpec::SlidingWindow { n, delta, p, seed, window } => {
            obj.insert("source".into(), Scalar::Str("window".into()));
            obj.insert("n".into(), Scalar::Uint(*n as u64));
            obj.insert("delta".into(), Scalar::Uint(*delta as u64));
            obj.insert("p".into(), Scalar::Num(*p));
            obj.insert("source_seed".into(), Scalar::Uint(*seed));
            obj.insert("window".into(), Scalar::Uint(*window as u64));
        }
    }
}

fn source_from_wire(obj: &FlatObject) -> Result<SourceSpec, String> {
    match str_field(obj, "source")? {
        "stored" => {
            let n = usize_field(obj, "n")?;
            let edges = decode_edges(str_field(obj, "edges")?, Some(n))?;
            Ok(SourceSpec::Stored(Arc::new(Graph::from_edges(n, edges))))
        }
        "family" => {
            let family = match str_field(obj, "family")? {
                "gnp" => GraphFamily::Gnp,
                "exact" => GraphFamily::ExactDegree,
                "pa" => GraphFamily::PreferentialAttachment,
                "cycle" => GraphFamily::Cycle,
                "path" => GraphFamily::Path,
                "complete" => GraphFamily::Complete,
                "star" => GraphFamily::Star,
                "clique-union" => GraphFamily::CliqueUnion {
                    k: usize_field(obj, "cu_k")?,
                    size: usize_field(obj, "cu_size")?,
                },
                "bipartite" => GraphFamily::Bipartite {
                    a: usize_field(obj, "bip_a")?,
                    b: usize_field(obj, "bip_b")?,
                },
                "petersen" => GraphFamily::Petersen,
                "circulant" => GraphFamily::Circulant,
                other => return Err(format!("unknown graph family {other:?}")),
            };
            Ok(SourceSpec::Family {
                family,
                n: usize_field(obj, "n")?,
                delta: usize_field(obj, "delta")?,
                p: f64_field(obj, "p")?,
                seed: u64_field(obj, "source_seed")?,
            })
        }
        "churn" => Ok(SourceSpec::Churn {
            n: usize_field(obj, "n")?,
            delta: usize_field(obj, "delta")?,
            p: f64_field(obj, "p")?,
            seed: u64_field(obj, "source_seed")?,
            rounds: usize_field(obj, "churn_rounds")?,
        }),
        "window" => Ok(SourceSpec::SlidingWindow {
            n: usize_field(obj, "n")?,
            delta: usize_field(obj, "delta")?,
            p: f64_field(obj, "p")?,
            seed: u64_field(obj, "source_seed")?,
            window: usize_field(obj, "window")?,
        }),
        other => Err(format!("unknown source kind {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Scenario.
// ---------------------------------------------------------------------

/// Encodes one scenario as a flat wire object (`"kind": "scenario"`).
pub fn scenario_to_wire(s: &Scenario) -> FlatObject {
    let mut obj = FlatObject::new();
    obj.insert("kind".into(), Scalar::Str("scenario".into()));
    obj.insert("label".into(), Scalar::Str(s.label.clone()));
    source_to_wire(&s.source, &mut obj);
    obj.insert("order".into(), Scalar::Str(s.order.wire_encode()));
    colorer_to_wire(&s.colorer, &mut obj);
    obj.insert("engine".into(), Scalar::Str(s.engine.wire_encode()));
    obj.insert("seed".into(), Scalar::Uint(s.seed));
    obj
}

/// Decodes a [`scenario_to_wire`] object.
///
/// # Errors
/// Returns a message naming the missing or malformed field.
pub fn scenario_from_wire(obj: &FlatObject) -> Result<Scenario, String> {
    match str_field(obj, "kind")? {
        "scenario" => {}
        other => return Err(format!("expected a scenario object, got kind {other:?}")),
    }
    let scenario = Scenario {
        label: str_field(obj, "label")?.to_string(),
        source: source_from_wire(obj)?,
        order: StreamOrder::wire_decode(str_field(obj, "order")?)?,
        colorer: colorer_from_wire(obj)?,
        engine: EngineConfig::wire_decode(str_field(obj, "engine")?)?,
        seed: u64_field(obj, "seed")?,
    };
    reject_unknown_keys(obj, &scenario_to_wire(&scenario), "scenario")?;
    Ok(scenario)
}

/// Encodes a whole scenario grid as canonical flat JSON (empty grids
/// encode to `"[]\n"`).
pub fn encode_grid(scenarios: &[Scenario]) -> String {
    let objs: Vec<FlatObject> = scenarios.iter().map(scenario_to_wire).collect();
    encode_array(&objs)
}

/// Decodes an [`encode_grid`] file.
///
/// # Errors
/// Returns a message locating the first malformed object.
pub fn decode_grid(text: &str) -> Result<Vec<Scenario>, String> {
    parse_array(text)?
        .iter()
        .enumerate()
        .map(|(i, obj)| scenario_from_wire(obj).map_err(|e| format!("scenario {i}: {e}")))
        .collect()
}

// ---------------------------------------------------------------------
// AttackScenario.
// ---------------------------------------------------------------------

fn adversary_to_wire(spec: &AdversarySpec, obj: &mut FlatObject) {
    let id = |obj: &mut FlatObject, name: &str| {
        obj.insert("adversary".into(), Scalar::Str(name.into()));
    };
    match spec {
        AdversarySpec::Monochromatic => id(obj, "mono"),
        AdversarySpec::Random => id(obj, "random"),
        AdversarySpec::CliqueBuilder => id(obj, "clique"),
        AdversarySpec::BufferBoundary { buffer } => {
            id(obj, "buffer");
            if let Some(b) = buffer {
                obj.insert("buffer".into(), Scalar::Uint(*b as u64));
            }
        }
        AdversarySpec::LevelBoundary => id(obj, "level"),
        AdversarySpec::Oscillation => id(obj, "oscillation"),
        AdversarySpec::Replay(edges) => {
            id(obj, "replay");
            obj.insert("replay_edges".into(), Scalar::Str(encode_edges(edges.iter().copied())));
        }
    }
}

fn adversary_from_wire(obj: &FlatObject) -> Result<AdversarySpec, String> {
    Ok(match str_field(obj, "adversary")? {
        "mono" => AdversarySpec::Monochromatic,
        "random" => AdversarySpec::Random,
        "clique" => AdversarySpec::CliqueBuilder,
        "buffer" => AdversarySpec::BufferBoundary { buffer: opt_usize(obj, "buffer")? },
        "level" => AdversarySpec::LevelBoundary,
        "oscillation" => AdversarySpec::Oscillation,
        "replay" => {
            AdversarySpec::Replay(Arc::new(decode_edges(str_field(obj, "replay_edges")?, None)?))
        }
        other => return Err(format!("unknown adversary {other:?}")),
    })
}

/// Encodes one attack scenario as a flat wire object (`"kind": "attack"`).
pub fn attack_to_wire(s: &AttackScenario) -> FlatObject {
    let mut obj = FlatObject::new();
    obj.insert("kind".into(), Scalar::Str("attack".into()));
    obj.insert("label".into(), Scalar::Str(s.label.clone()));
    colorer_to_wire(&s.victim, &mut obj);
    adversary_to_wire(&s.adversary, &mut obj);
    obj.insert("n".into(), Scalar::Uint(s.n as u64));
    obj.insert("delta".into(), Scalar::Uint(s.delta as u64));
    obj.insert("rounds".into(), Scalar::Uint(s.rounds as u64));
    obj.insert("victim_seed".into(), Scalar::Uint(s.victim_seed));
    obj.insert("adversary_seed".into(), Scalar::Uint(s.adversary_seed));
    obj
}

/// Decodes an [`attack_to_wire`] object.
///
/// # Errors
/// Returns a message naming the missing or malformed field.
pub fn attack_from_wire(obj: &FlatObject) -> Result<AttackScenario, String> {
    match str_field(obj, "kind")? {
        "attack" => {}
        other => return Err(format!("expected an attack object, got kind {other:?}")),
    }
    let attack = AttackScenario {
        label: str_field(obj, "label")?.to_string(),
        victim: colorer_from_wire(obj)?,
        adversary: adversary_from_wire(obj)?,
        n: usize_field(obj, "n")?,
        delta: usize_field(obj, "delta")?,
        rounds: usize_field(obj, "rounds")?,
        victim_seed: u64_field(obj, "victim_seed")?,
        adversary_seed: u64_field(obj, "adversary_seed")?,
    };
    reject_unknown_keys(obj, &attack_to_wire(&attack), "attack")?;
    Ok(attack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_stream::QuerySchedule;

    fn all_colorers() -> Vec<ColorerSpec> {
        vec![
            ColorerSpec::Robust { beta: None },
            ColorerSpec::Robust { beta: Some(0.5) },
            ColorerSpec::Auto,
            ColorerSpec::RandEfficient,
            ColorerSpec::Cgs22,
            ColorerSpec::Bg18 { buckets: None },
            ColorerSpec::Bg18 { buckets: Some(12) },
            ColorerSpec::Bcg20 { epsilon: 0.25 },
            ColorerSpec::PaletteSparsification { lists: None },
            ColorerSpec::PaletteSparsification { lists: Some(6) },
            ColorerSpec::StoreAll,
            ColorerSpec::Trivial,
            ColorerSpec::Det(DetConfig::default()),
            ColorerSpec::Det(DetConfig::theory()),
            ColorerSpec::Det(DetConfig { track_potential: true, ..DetConfig::with_grid(8) }),
            ColorerSpec::BatchGreedy,
            ColorerSpec::OfflineGreedy,
            ColorerSpec::Brooks,
        ]
    }

    #[test]
    fn every_colorer_spec_round_trips() {
        for colorer in all_colorers() {
            let s = Scenario::new(SourceSpec::exact_degree(40, 4, 1), colorer.clone());
            let back = scenario_from_wire(&scenario_to_wire(&s)).unwrap();
            assert_eq!(back, s, "{colorer:?}");
        }
    }

    #[test]
    fn every_family_round_trips() {
        let families = [
            GraphFamily::Gnp,
            GraphFamily::ExactDegree,
            GraphFamily::PreferentialAttachment,
            GraphFamily::Cycle,
            GraphFamily::Path,
            GraphFamily::Complete,
            GraphFamily::Star,
            GraphFamily::CliqueUnion { k: 3, size: 4 },
            GraphFamily::Bipartite { a: 10, b: 12 },
            GraphFamily::Petersen,
            GraphFamily::Circulant,
        ];
        for family in families {
            let s = Scenario::new(
                SourceSpec::Family { family, n: 24, delta: 4, p: 0.3, seed: 9 },
                ColorerSpec::StoreAll,
            );
            let back = scenario_from_wire(&scenario_to_wire(&s)).unwrap();
            assert_eq!(back, s, "{family:?}");
        }
    }

    #[test]
    fn stored_sources_round_trip_canonically() {
        let g = sc_graph::generators::gnp_with_max_degree(30, 5, 0.4, 3);
        let s = Scenario::new(SourceSpec::stored(g.clone()), ColorerSpec::Trivial)
            .labeled("robust ∆^2.5 \"quoted\"")
            .with_order(StreamOrder::Interleaved(3))
            .with_engine(EngineConfig::batched(32).scratch_queries())
            .with_schedule(QuerySchedule::AtPrefixes(vec![5, 17]));
        let once = scenario_from_wire(&scenario_to_wire(&s)).unwrap();
        // Same edge sequence and metadata…
        match (&once.source, &s.source) {
            (SourceSpec::Stored(a), SourceSpec::Stored(b)) => {
                assert_eq!(a.n(), b.n());
                assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
            }
            other => panic!("stored source decoded as {other:?}"),
        }
        assert_eq!((&once.label, once.order, &once.engine), (&s.label, s.order, &s.engine));
        // …and decode∘encode is idempotent (canonical representative).
        let twice = scenario_from_wire(&scenario_to_wire(&once)).unwrap();
        assert_eq!(twice, once);
        assert_eq!(encode_grid(std::slice::from_ref(&twice)), encode_grid(&[once]));
    }

    #[test]
    fn attacks_round_trip() {
        let adversaries = vec![
            AdversarySpec::Monochromatic,
            AdversarySpec::Random,
            AdversarySpec::CliqueBuilder,
            AdversarySpec::BufferBoundary { buffer: None },
            AdversarySpec::BufferBoundary { buffer: Some(64) },
            AdversarySpec::LevelBoundary,
            AdversarySpec::Replay(Arc::new(vec![Edge::new(0, 1), Edge::new(2, 1)])),
        ];
        for adversary in adversaries {
            let s = AttackScenario::new(
                ColorerSpec::Robust { beta: Some(0.1) },
                adversary.clone(),
                50,
                6,
            )
            .with_seed(u64::MAX);
            let back = attack_from_wire(&attack_to_wire(&s)).unwrap();
            assert_eq!(back, s, "{adversary:?}");
        }
    }

    #[test]
    fn grids_round_trip_including_empty() {
        assert_eq!(decode_grid(&encode_grid(&[])).unwrap(), Vec::new());
        let grid: Vec<Scenario> = (0..4)
            .map(|i| {
                Scenario::new(SourceSpec::gnp(30, 4, 0.3, i), ColorerSpec::Robust { beta: None })
                    .with_seed(i * 31)
            })
            .collect();
        assert_eq!(decode_grid(&encode_grid(&grid)).unwrap(), grid);
    }

    #[test]
    fn decode_errors_name_the_problem() {
        let mut obj = scenario_to_wire(&Scenario::new(
            SourceSpec::exact_degree(10, 3, 1),
            ColorerSpec::StoreAll,
        ));
        obj.remove("order");
        assert!(scenario_from_wire(&obj).unwrap_err().contains("order"));
        obj.insert("order".into(), Scalar::Str("sorted".into()));
        assert!(scenario_from_wire(&obj).unwrap_err().contains("sorted"));

        assert!(decode_edges("3-3", None).unwrap_err().contains("self-loop"));
        assert!(decode_edges("5-9", Some(6)).unwrap_err().contains("out of range"));
        assert!(decode_edges("5:9", None).unwrap_err().contains("not u-v"));

        let attack = attack_to_wire(&AttackScenario::new(
            ColorerSpec::StoreAll,
            AdversarySpec::Random,
            10,
            3,
        ));
        assert!(scenario_from_wire(&attack).unwrap_err().contains("attack"));
    }
}
