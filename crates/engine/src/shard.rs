//! Sharding scenario grids and attack-trial sweeps across OS processes.
//!
//! PR 1 made grids parallel across *threads* ([`Runner::run_all`]); this
//! module is the next scale step: the same grid, fanned out across
//! *processes* (and, because the spec travels as a file of flat JSON,
//! eventually machines). The moving parts:
//!
//! * [`ShardJob`] — the unit of distribution: a scenario grid or an
//!   attack-trial sweep, wire-encoded via [`crate::wire`] so a worker
//!   process can reconstruct it exactly;
//! * [`partition`] — the deterministic contiguous split of `0..len` into
//!   shard ranges (shard `i` of `N` always gets the same slice);
//! * the **`shard_worker` binary** (in `crates/bench`) — reads a spec
//!   file plus `--shard i --of N`, runs its slice through the ordinary
//!   [`Runner`], and writes a mergeable [`ShardOutcome`];
//! * [`Coordinator`] — writes the spec file, spawns `N` workers, waits,
//!   and merges their outputs;
//! * [`RunSummary`] — the observational summary of a [`RunOutcome`]
//!   (everything except wall-clock time, which is not deterministic and
//!   therefore not mergeable-identical).
//!
//! ```text
//! streamcolor shard --smoke --workers 4 --out merged.json
//!     │  encode_grid ──► /tmp/…/spec.json
//!     ├─► shard_worker --spec spec.json --shard 0 --of 4 --out out-0.json
//!     ├─► shard_worker --spec spec.json --shard 1 --of 4 --out out-1.json
//!     ├─► …                                  (each runs Runner on its slice)
//!     └─◄ merge: concat grid summaries / TrialSummary::merge ──► merged.json
//! ```
//!
//! **Determinism law** (tested in `crates/bench/tests/shard_determinism.rs`
//! and gated by CI's `shard-smoke` job): the merged output is
//! *byte-identical* to the single-process [`run_in_process`] result, for
//! every worker count and every `Runner` thread count. Two ingredients
//! make this hold: every scenario run is deterministic given its spec,
//! and jobs are compared only after [`ShardJob::canonicalize`] — stored
//! graphs do not carry adjacency-list order on the wire, so both the
//! coordinator and the in-process reference run the *decoded* job.

use crate::attack::AttackScenario;
use crate::flatjson::{encode_array, parse_array, FlatObject, Scalar};
use crate::parallel::par_map;
use crate::runner::{RunOutcome, Runner};
use crate::scenario::Scenario;
use crate::source::SourceSpec;
use crate::spec::ColorerSpec;
use crate::wire;
use sc_adversary::TrialSummary;
use sc_stream::{EngineConfig, QuerySchedule, StreamOrder};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

// ---------------------------------------------------------------------
// Partitioning.
// ---------------------------------------------------------------------

/// Splits `0..len` into `shards` contiguous ranges (empty ones included),
/// earlier shards taking the remainder. Deterministic: shard `i` of `N`
/// always owns the same items, so a re-run worker recomputes exactly its
/// slice.
pub fn partition(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let base = len / shards;
    let rem = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

// ---------------------------------------------------------------------
// The unit of distribution.
// ---------------------------------------------------------------------

/// What a shard spec file describes: a scenario grid, or one attack
/// scenario swept over independently seeded trials.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardJob {
    /// Independent scenarios; shard ranges slice the grid.
    Grid(Vec<Scenario>),
    /// One adaptive game re-seeded per trial (exactly
    /// [`Runner::run_attack_trials`]); shard ranges slice the trial seeds.
    Attack {
        /// The game to replay.
        scenario: AttackScenario,
        /// Total trials across all shards.
        trials: usize,
    },
}

impl ShardJob {
    /// Items shard ranges index into (scenarios or trials).
    pub fn len(&self) -> usize {
        match self {
            ShardJob::Grid(scenarios) => scenarios.len(),
            ShardJob::Attack { trials, .. } => *trials,
        }
    }

    /// Whether there is nothing to run.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encodes the job as a spec file: a header object followed by the
    /// scenario (or attack) objects. Canonical, and exactly invertible
    /// by [`ShardJob::decode`].
    pub fn encode(&self) -> String {
        let mut objs = Vec::new();
        let mut header = FlatObject::new();
        header.insert("kind".into(), Scalar::Str("shard-job".into()));
        match self {
            ShardJob::Grid(scenarios) => {
                header.insert("payload".into(), Scalar::Str("grid".into()));
                objs.push(header);
                objs.extend(scenarios.iter().map(wire::scenario_to_wire));
            }
            ShardJob::Attack { scenario, trials } => {
                header.insert("payload".into(), Scalar::Str("attack".into()));
                header.insert("trials".into(), Scalar::Uint(*trials as u64));
                objs.push(header);
                objs.push(wire::attack_to_wire(scenario));
            }
        }
        encode_array(&objs)
    }

    /// Decodes a spec file.
    ///
    /// # Errors
    /// Returns a message locating the malformed object.
    pub fn decode(text: &str) -> Result<Self, String> {
        let objs = parse_array(text)?;
        let (header, rest) = objs.split_first().ok_or("spec file has no header object")?;
        match wire::str_field(header, "kind")? {
            "shard-job" => {}
            other => return Err(format!("expected a shard-job header, got kind {other:?}")),
        }
        // Header keys are checked against the canonical encoder's set, so
        // a typo like "trails" errors instead of silently running with
        // defaults (the body objects do the same check field-by-field).
        let mut canonical = FlatObject::new();
        canonical.insert("kind".into(), Scalar::Str(String::new()));
        canonical.insert("payload".into(), Scalar::Str(String::new()));
        if wire::str_field(header, "payload") == Ok("attack") {
            canonical.insert("trials".into(), Scalar::Uint(0));
        }
        wire::reject_unknown_keys(header, &canonical, "shard-job header")?;
        match wire::str_field(header, "payload")? {
            "grid" => rest
                .iter()
                .enumerate()
                .map(|(i, obj)| {
                    wire::scenario_from_wire(obj).map_err(|e| format!("scenario {i}: {e}"))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(ShardJob::Grid),
            "attack" => {
                let trials = wire::usize_field(header, "trials")?;
                match rest {
                    [obj] => {
                        Ok(ShardJob::Attack { scenario: wire::attack_from_wire(obj)?, trials })
                    }
                    _ => Err(format!("attack spec needs exactly one scenario, got {}", rest.len())),
                }
            }
            other => Err(format!("unknown payload {other:?}")),
        }
    }

    /// The wire-canonical form of this job: what every worker process
    /// actually receives. Stored graphs are rebuilt from their edge
    /// sequence (adjacency-list order is not on the wire), so comparing
    /// sharded against in-process runs is only meaningful after
    /// canonicalization — [`Coordinator::run`] and [`run_in_process`]
    /// both apply it.
    ///
    /// # Errors
    /// Propagates decode errors (impossible for jobs this crate built).
    pub fn canonicalize(&self) -> Result<Self, String> {
        Self::decode(&self.encode())
    }
}

// ---------------------------------------------------------------------
// Observational run summaries.
// ---------------------------------------------------------------------

/// FNV-1a over a byte stream — the digest used to pin checkpoint
/// colorings without shipping them whole.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything observable about a [`RunOutcome`] except wall-clock time:
/// the mergeable, wire-encodable unit of a sharded grid's output.
///
/// The final coloring travels verbatim; mid-stream checkpoints travel as
/// `prefix:colors:space_bits:coloring_digest` tuples (full per-prefix
/// colorings would dwarf the rest of the file, and the digest already
/// pins them bit-for-bit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// The scenario's label.
    pub label: String,
    /// The algorithm's self-reported name.
    pub algo: String,
    /// Vertices in the materialized graph.
    pub n: usize,
    /// Edges in the materialized graph.
    pub m: usize,
    /// Max degree of the materialized graph.
    pub delta: usize,
    /// Whether the final coloring was proper.
    pub proper: bool,
    /// Distinct colors in the final coloring.
    pub colors: usize,
    /// Passes over the input (`None` for offline comparators).
    pub passes: Option<u64>,
    /// Self-reported peak space in bits (`None` for offline comparators).
    pub space_bits: Option<u64>,
    /// The final coloring as `"0,1,-,2"` (`-` marks an uncolored vertex).
    pub coloring: String,
    /// Checkpoints as `"prefix:colors:space_bits:digest;…"`.
    pub checkpoints: String,
}

impl RunSummary {
    /// Summarizes one outcome.
    pub fn of(outcome: &RunOutcome) -> Self {
        let coloring: Vec<String> = (0..outcome.coloring.n() as u32)
            .map(|v| outcome.coloring.get(v).map_or("-".to_string(), |c| c.to_string()))
            .collect();
        let checkpoints: Vec<String> = outcome
            .checkpoints
            .iter()
            .map(|cp| {
                let digest = fnv1a((0..cp.coloring.n() as u32).flat_map(|v| {
                    // None → u64::MAX sentinel (colors are palette indices,
                    // far below it in practice; collisions would need a
                    // 2^64-color palette).
                    cp.coloring.get(v).unwrap_or(u64::MAX).to_le_bytes()
                }));
                format!("{}:{}:{}:{:016x}", cp.prefix_len, cp.colors, cp.space_bits, digest)
            })
            .collect();
        Self {
            label: outcome.label.clone(),
            algo: outcome.algo.clone(),
            n: outcome.n,
            m: outcome.m,
            delta: outcome.delta,
            proper: outcome.proper,
            colors: outcome.colors,
            passes: outcome.passes,
            space_bits: outcome.space_bits,
            coloring: coloring.join(","),
            checkpoints: checkpoints.join(";"),
        }
    }

    /// Encodes as a flat wire object (`"kind": "run-summary"`).
    pub fn to_wire(&self) -> FlatObject {
        let mut obj = FlatObject::new();
        obj.insert("kind".into(), Scalar::Str("run-summary".into()));
        obj.insert("label".into(), Scalar::Str(self.label.clone()));
        obj.insert("algo".into(), Scalar::Str(self.algo.clone()));
        obj.insert("n".into(), Scalar::Uint(self.n as u64));
        obj.insert("m".into(), Scalar::Uint(self.m as u64));
        obj.insert("delta".into(), Scalar::Uint(self.delta as u64));
        obj.insert("proper".into(), Scalar::Bool(self.proper));
        obj.insert("colors".into(), Scalar::Uint(self.colors as u64));
        if let Some(p) = self.passes {
            obj.insert("passes".into(), Scalar::Uint(p));
        }
        if let Some(s) = self.space_bits {
            obj.insert("space_bits".into(), Scalar::Uint(s));
        }
        obj.insert("coloring".into(), Scalar::Str(self.coloring.clone()));
        obj.insert("checkpoints".into(), Scalar::Str(self.checkpoints.clone()));
        obj
    }

    /// Decodes a [`RunSummary::to_wire`] object.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_wire(obj: &FlatObject) -> Result<Self, String> {
        match wire::str_field(obj, "kind")? {
            "run-summary" => {}
            other => return Err(format!("expected a run-summary object, got kind {other:?}")),
        }
        Ok(Self {
            label: wire::str_field(obj, "label")?.to_string(),
            algo: wire::str_field(obj, "algo")?.to_string(),
            n: wire::usize_field(obj, "n")?,
            m: wire::usize_field(obj, "m")?,
            delta: wire::usize_field(obj, "delta")?,
            proper: wire::bool_field(obj, "proper")?,
            colors: wire::usize_field(obj, "colors")?,
            passes: wire::opt_u64(obj, "passes")?,
            space_bits: wire::opt_u64(obj, "space_bits")?,
            coloring: wire::str_field(obj, "coloring")?.to_string(),
            checkpoints: wire::str_field(obj, "checkpoints")?.to_string(),
        })
    }
}

fn trial_summary_to_wire(s: &TrialSummary) -> FlatObject {
    let mut obj = FlatObject::new();
    obj.insert("kind".into(), Scalar::Str("trial-summary".into()));
    obj.insert("trials".into(), Scalar::Uint(s.trials as u64));
    obj.insert("broken".into(), Scalar::Uint(s.broken as u64));
    let rounds: Vec<String> = s.failure_rounds.iter().map(usize::to_string).collect();
    obj.insert("failure_rounds".into(), Scalar::Str(rounds.join(",")));
    obj.insert("max_colors".into(), Scalar::Uint(s.max_colors as u64));
    obj.insert("min_rounds".into(), Scalar::Uint(s.min_rounds as u64));
    obj.insert("max_rounds".into(), Scalar::Uint(s.max_rounds as u64));
    obj
}

fn trial_summary_from_wire(obj: &FlatObject) -> Result<TrialSummary, String> {
    match wire::str_field(obj, "kind")? {
        "trial-summary" => {}
        other => return Err(format!("expected a trial-summary object, got kind {other:?}")),
    }
    let rounds_text = wire::str_field(obj, "failure_rounds")?;
    let failure_rounds: Vec<usize> = if rounds_text.is_empty() {
        Vec::new()
    } else {
        rounds_text
            .split(',')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| format!("failure_rounds: {e}"))?
    };
    Ok(TrialSummary {
        trials: wire::usize_field(obj, "trials")?,
        broken: wire::usize_field(obj, "broken")?,
        failure_rounds,
        max_colors: wire::usize_field(obj, "max_colors")?,
        min_rounds: wire::usize_field(obj, "min_rounds")?,
        max_rounds: wire::usize_field(obj, "max_rounds")?,
    })
}

// ---------------------------------------------------------------------
// Shard outcomes: what workers emit and the coordinator merges.
// ---------------------------------------------------------------------

/// A (partial or merged) job result.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOutcome {
    /// Summaries of a [`ShardJob::Grid`] slice, in grid order.
    Grid(Vec<RunSummary>),
    /// The aggregate of a [`ShardJob::Attack`] seed slice.
    Attack(TrialSummary),
}

impl ShardOutcome {
    /// Encodes canonically — the "merged summary JSON" the CLI writes
    /// and CI diffs. Exactly invertible by [`ShardOutcome::decode`].
    pub fn encode(&self) -> String {
        let objs: Vec<FlatObject> = match self {
            ShardOutcome::Grid(summaries) => summaries.iter().map(RunSummary::to_wire).collect(),
            ShardOutcome::Attack(summary) => vec![trial_summary_to_wire(summary)],
        };
        encode_array(&objs)
    }

    /// Decodes an [`ShardOutcome::encode`] payload (an empty array is an
    /// empty grid).
    ///
    /// # Errors
    /// Returns a message locating the malformed object.
    pub fn decode(text: &str) -> Result<Self, String> {
        Self::from_objects(&parse_array(text)?)
    }

    fn from_objects(objs: &[FlatObject]) -> Result<Self, String> {
        match objs {
            [obj] if wire::str_field(obj, "kind") == Ok("trial-summary") => {
                Ok(ShardOutcome::Attack(trial_summary_from_wire(obj)?))
            }
            _ => objs
                .iter()
                .enumerate()
                .map(|(i, obj)| RunSummary::from_wire(obj).map_err(|e| format!("summary {i}: {e}")))
                .collect::<Result<Vec<_>, _>>()
                .map(ShardOutcome::Grid),
        }
    }

    /// Merges per-shard outcomes (in shard order) into the job's total.
    ///
    /// # Errors
    /// Errors if the parts mix grid and attack outcomes.
    pub fn merge(parts: impl IntoIterator<Item = ShardOutcome>) -> Result<ShardOutcome, String> {
        let mut parts = parts.into_iter();
        let Some(mut merged) = parts.next() else {
            return Ok(ShardOutcome::Grid(Vec::new()));
        };
        for part in parts {
            match (&mut merged, part) {
                (ShardOutcome::Grid(all), ShardOutcome::Grid(more)) => all.extend(more),
                (ShardOutcome::Attack(all), ShardOutcome::Attack(more)) => all.merge(&more),
                _ => return Err("cannot merge grid and attack outcomes".to_string()),
            }
        }
        Ok(merged)
    }
}

/// Runs one shard's slice of a job on `runner` — the worker binary's
/// entire computational payload, also reused by [`run_in_process`] with
/// the full range.
pub fn run_job(runner: &Runner, job: &ShardJob, range: Range<usize>) -> ShardOutcome {
    match job {
        ShardJob::Grid(scenarios) => {
            let outcomes = runner.run_all(&scenarios[range]);
            ShardOutcome::Grid(outcomes.iter().map(RunSummary::of).collect())
        }
        ShardJob::Attack { scenario, .. } => {
            let seeds: Vec<u64> = range.map(|t| t as u64).collect();
            let reports =
                par_map(runner.threads, &seeds, |_, &t| runner.run_attack(&scenario.trial(t)));
            ShardOutcome::Attack(sc_adversary::summarize(reports))
        }
    }
}

/// The single-process reference: canonicalizes the job (exactly as every
/// worker would receive it) and runs it whole on one [`Runner`]. The
/// sharded path must reproduce this byte-for-byte.
///
/// # Errors
/// Propagates canonicalization errors.
pub fn run_in_process(job: &ShardJob, threads: usize) -> Result<ShardOutcome, String> {
    let job = job.canonicalize()?;
    Ok(run_job(&Runner::with_threads(threads), &job, 0..job.len()))
}

// ---------------------------------------------------------------------
// Worker files.
// ---------------------------------------------------------------------

/// Encodes a worker's output file: a `shard-result` header (shard index
/// and count, so the coordinator can detect mixed-up files) followed by
/// the outcome objects.
pub fn encode_worker_output(shard: usize, of: usize, outcome: &ShardOutcome) -> String {
    let mut header = FlatObject::new();
    header.insert("kind".into(), Scalar::Str("shard-result".into()));
    header.insert("shard".into(), Scalar::Uint(shard as u64));
    header.insert("of".into(), Scalar::Uint(of as u64));
    let mut objs = vec![header];
    match outcome {
        ShardOutcome::Grid(summaries) => objs.extend(summaries.iter().map(RunSummary::to_wire)),
        ShardOutcome::Attack(summary) => objs.push(trial_summary_to_wire(summary)),
    }
    encode_array(&objs)
}

/// Decodes a worker output file into `(shard, of, outcome)`.
///
/// # Errors
/// Returns a message locating the malformed object.
pub fn decode_worker_output(text: &str) -> Result<(usize, usize, ShardOutcome), String> {
    let objs = parse_array(text)?;
    let (header, rest) = objs.split_first().ok_or("worker output has no header object")?;
    match wire::str_field(header, "kind")? {
        "shard-result" => {}
        other => return Err(format!("expected a shard-result header, got kind {other:?}")),
    }
    Ok((
        wire::usize_field(header, "shard")?,
        wire::usize_field(header, "of")?,
        ShardOutcome::from_objects(rest)?,
    ))
}

// ---------------------------------------------------------------------
// The coordinator.
// ---------------------------------------------------------------------

static SPEC_DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// Partitions a job, spawns worker processes, and merges their outputs.
///
/// ```no_run
/// use sc_engine::shard::{smoke_grid, Coordinator, ShardJob};
///
/// let coordinator = Coordinator::new(4, "target/release/shard_worker");
/// let merged = coordinator.run(&ShardJob::Grid(smoke_grid())).unwrap();
/// println!("{}", merged.encode());
/// ```
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// Worker processes to spawn (clamped to the job size; ≥ 1).
    pub workers: usize,
    /// Path to the `shard_worker` binary.
    pub worker_bin: PathBuf,
    /// `Runner` threads *inside* each worker (default 1: one process per
    /// core is the intended deployment; determinism holds for any value).
    pub worker_threads: usize,
}

impl Coordinator {
    /// A coordinator spawning `workers` processes of `worker_bin`.
    pub fn new(workers: usize, worker_bin: impl Into<PathBuf>) -> Self {
        Self { workers: workers.max(1), worker_bin: worker_bin.into(), worker_threads: 1 }
    }

    /// Runs the job sharded and returns the merged outcome.
    ///
    /// # Errors
    /// Errors on spec/output I/O failures, a worker exiting non-zero, or
    /// a worker writing an output that does not match its shard index.
    pub fn run(&self, job: &ShardJob) -> Result<ShardOutcome, String> {
        let job = job.canonicalize()?;
        let workers = self.workers.clamp(1, job.len().max(1));

        let dir = std::env::temp_dir().join(format!(
            "sc-shard-{}-{}",
            std::process::id(),
            SPEC_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        let result = self.run_in_dir(&job, workers, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn run_in_dir(
        &self,
        job: &ShardJob,
        workers: usize,
        dir: &std::path::Path,
    ) -> Result<ShardOutcome, String> {
        let spec_path = dir.join("spec.json");
        std::fs::write(&spec_path, job.encode())
            .map_err(|e| format!("cannot write {spec_path:?}: {e}"))?;

        let out_path = |i: usize| dir.join(format!("out-{i}.json"));
        let mut children = Vec::with_capacity(workers);
        for i in 0..workers {
            let child = Command::new(&self.worker_bin)
                .arg("--spec")
                .arg(&spec_path)
                .arg("--shard")
                .arg(i.to_string())
                .arg("--of")
                .arg(workers.to_string())
                .arg("--out")
                .arg(out_path(i))
                .arg("--threads")
                .arg(self.worker_threads.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("cannot spawn {:?}: {e}", self.worker_bin))?;
            children.push(child);
        }

        let mut parts = Vec::with_capacity(workers);
        let mut failures = Vec::new();
        for (i, mut child) in children.into_iter().enumerate() {
            let status = child.wait().map_err(|e| format!("waiting for worker {i}: {e}"))?;
            if !status.success() {
                failures.push(format!("worker {i} exited with {status}"));
                continue;
            }
            let path = out_path(i);
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
            let (shard, of, outcome) =
                decode_worker_output(&text).map_err(|e| format!("worker {i} output: {e}"))?;
            if (shard, of) != (i, workers) {
                return Err(format!(
                    "worker {i} output claims shard {shard} of {of} (expected {i} of {workers})"
                ));
            }
            parts.push(outcome);
        }
        if !failures.is_empty() {
            return Err(failures.join("; "));
        }
        ShardOutcome::merge(parts)
    }
}

// ---------------------------------------------------------------------
// The CI smoke grid.
// ---------------------------------------------------------------------

/// The fixed small grid behind `streamcolor shard --smoke` and CI's
/// `shard-smoke` job: every scenario-expressible algorithm class, two
/// graph sources, several arrival orders and checkpoint schedules, in a
/// few seconds of total work.
pub fn smoke_grid() -> Vec<Scenario> {
    let exact = SourceSpec::exact_degree(240, 8, 7);
    let gnp = SourceSpec::gnp(240, 8, 0.35, 11);
    let schedule = QuerySchedule::EveryEdges(97);
    vec![
        Scenario::new(exact.clone(), ColorerSpec::Robust { beta: None })
            .labeled("smoke robust")
            .with_order(StreamOrder::Shuffled(1))
            .with_seed(21)
            .with_schedule(schedule.clone()),
        Scenario::new(gnp.clone(), ColorerSpec::Robust { beta: Some(0.5) })
            .labeled("smoke robust β=0.5")
            .with_order(StreamOrder::HubsLast)
            .with_seed(22),
        Scenario::new(exact.clone(), ColorerSpec::RandEfficient)
            .labeled("smoke alg3")
            .with_order(StreamOrder::Interleaved(5))
            .with_seed(23),
        Scenario::new(gnp.clone(), ColorerSpec::Cgs22)
            .labeled("smoke cgs22")
            .with_order(StreamOrder::Shuffled(9))
            .with_seed(24),
        Scenario::new(exact.clone(), ColorerSpec::Bg18 { buckets: None })
            .labeled("smoke bg18")
            .with_seed(25)
            .with_engine(EngineConfig::batched(64)),
        Scenario::new(gnp.clone(), ColorerSpec::Bcg20 { epsilon: 0.5 })
            .labeled("smoke bcg20")
            .with_order(StreamOrder::VertexContiguous)
            .with_seed(26),
        Scenario::new(exact.clone(), ColorerSpec::PaletteSparsification { lists: Some(8) })
            .labeled("smoke ps")
            .with_order(StreamOrder::Shuffled(3))
            .with_seed(27),
        Scenario::new(gnp.clone(), ColorerSpec::StoreAll)
            .labeled("smoke store-all")
            .with_seed(28)
            .with_schedule(QuerySchedule::AtPrefixes(vec![50, 150])),
        Scenario::new(exact.clone(), ColorerSpec::Trivial).labeled("smoke trivial").with_seed(29),
        Scenario::new(gnp, ColorerSpec::Det(streamcolor::DetConfig::default()))
            .labeled("smoke det")
            .with_seed(30),
        Scenario::new(exact.clone(), ColorerSpec::BatchGreedy)
            .labeled("smoke batch-greedy")
            .with_seed(31),
        Scenario::new(exact, ColorerSpec::OfflineGreedy).labeled("smoke greedy").with_seed(32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_fair() {
        for (len, shards) in [(0usize, 3usize), (1, 1), (5, 2), (7, 7), (10, 3), (3, 8)] {
            let parts = partition(len, shards);
            assert_eq!(parts.len(), shards);
            let mut next = 0;
            for r in &parts {
                assert_eq!(r.start, next, "gap at {r:?} (len {len}, shards {shards})");
                next = r.end;
            }
            assert_eq!(next, len, "ranges must cover 0..{len}");
            let sizes: Vec<usize> = parts.iter().map(ExactSizeIterator::len).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unfair split {sizes:?}");
        }
        assert_eq!(partition(4, 0), partition(4, 1), "0 shards degrades to 1");
    }

    #[test]
    fn jobs_round_trip_through_spec_files() {
        let grid = ShardJob::Grid(smoke_grid());
        assert_eq!(ShardJob::decode(&grid.encode()).unwrap(), grid);
        assert_eq!(grid.len(), smoke_grid().len());

        let empty = ShardJob::Grid(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(ShardJob::decode(&empty.encode()).unwrap(), empty);

        let attack = ShardJob::Attack {
            scenario: AttackScenario::new(
                ColorerSpec::Robust { beta: None },
                crate::attack::AdversarySpec::Monochromatic,
                50,
                6,
            ),
            trials: 9,
        };
        assert_eq!(ShardJob::decode(&attack.encode()).unwrap(), attack);
        assert_eq!(attack.len(), 9);

        assert!(ShardJob::decode("[]\n").unwrap_err().contains("header"));
    }

    #[test]
    fn run_summaries_round_trip() {
        let runner = Runner::sequential();
        let scenarios = [
            Scenario::new(SourceSpec::exact_degree(40, 4, 1), ColorerSpec::StoreAll)
                .with_schedule(QuerySchedule::EveryEdges(10)),
            Scenario::new(SourceSpec::exact_degree(40, 4, 1), ColorerSpec::OfflineGreedy),
        ];
        for s in &scenarios {
            let summary = RunSummary::of(&runner.run(s));
            let back = RunSummary::from_wire(&summary.to_wire()).unwrap();
            assert_eq!(back, summary);
        }
        // Offline runs have no passes/space; streaming runs do.
        let streaming = RunSummary::of(&runner.run(&scenarios[0]));
        let offline = RunSummary::of(&runner.run(&scenarios[1]));
        assert!(streaming.passes.is_some() && streaming.space_bits.is_some());
        assert!(offline.passes.is_none() && offline.space_bits.is_none());
        assert!(!streaming.checkpoints.is_empty());
    }

    #[test]
    fn outcomes_encode_decode_and_merge() {
        let runner = Runner::sequential();
        let job = ShardJob::Grid(vec![
            Scenario::new(SourceSpec::exact_degree(30, 3, 1), ColorerSpec::Trivial),
            Scenario::new(SourceSpec::exact_degree(30, 3, 2), ColorerSpec::StoreAll),
            Scenario::new(SourceSpec::exact_degree(30, 3, 3), ColorerSpec::OfflineGreedy),
        ])
        .canonicalize()
        .unwrap();
        let whole = run_job(&runner, &job, 0..3);
        let parts: Vec<ShardOutcome> =
            partition(3, 2).into_iter().map(|r| run_job(&runner, &job, r)).collect();
        let merged = ShardOutcome::merge(parts).unwrap();
        assert_eq!(merged, whole);
        assert_eq!(merged.encode(), whole.encode());
        assert_eq!(ShardOutcome::decode(&whole.encode()).unwrap(), whole);

        // Attack outcomes too.
        let attack = ShardJob::Attack {
            scenario: AttackScenario::new(
                ColorerSpec::PaletteSparsification { lists: Some(3) },
                crate::attack::AdversarySpec::Monochromatic,
                50,
                12,
            )
            .with_rounds(50 * 12)
            .with_seed(70),
            trials: 5,
        };
        let whole = run_job(&runner, &attack, 0..5);
        let parts: Vec<ShardOutcome> =
            partition(5, 3).into_iter().map(|r| run_job(&runner, &attack, r)).collect();
        let merged = ShardOutcome::merge(parts).unwrap();
        assert_eq!(merged, whole);
        assert_eq!(ShardOutcome::decode(&whole.encode()).unwrap(), whole);

        // Mixed merges are rejected; empty merges are empty grids.
        assert!(ShardOutcome::merge([whole, ShardOutcome::Grid(Vec::new())]).is_err());
        assert_eq!(ShardOutcome::merge([]).unwrap(), ShardOutcome::Grid(Vec::new()));
    }

    #[test]
    fn worker_output_files_round_trip() {
        let runner = Runner::sequential();
        let job = ShardJob::Grid(smoke_grid()).canonicalize().unwrap();
        let outcome = run_job(&runner, &job, 2..4);
        let text = encode_worker_output(1, 3, &outcome);
        let (shard, of, back) = decode_worker_output(&text).unwrap();
        assert_eq!((shard, of), (1, 3));
        assert_eq!(back, outcome);
        assert!(decode_worker_output("[]\n").unwrap_err().contains("header"));
    }

    #[test]
    fn in_process_reference_is_thread_count_invariant() {
        let job = ShardJob::Grid(smoke_grid()[..4].to_vec());
        let seq = run_in_process(&job, 1).unwrap();
        let par = run_in_process(&job, 4).unwrap();
        assert_eq!(seq.encode(), par.encode());
    }
}
