//! The BBMU21 coloring-verification runner (vertex-arrival model).
//!
//! Owns the arrival-ingest loop the CLI used to hand-roll: given a graph
//! and an announced coloring, serialize the vertex-arrival stream and
//! count (or estimate) conflicting edges.

use sc_graph::{Coloring, Graph};
use streamcolor::verify::{stream_from_coloring, ExactConflictCounter, SampledConflictEstimator};

/// Exact counting or BBMU21 sampled estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// Count every conflict (space `O(n log C)`).
    Exact,
    /// Estimate from a `k`-vertex sample.
    Sampled {
        /// Sample size.
        k: usize,
    },
}

/// What verification reported.
#[derive(Debug, Clone)]
pub enum VerifyReport {
    /// Exact counting result.
    Exact {
        /// Conflicting edges.
        conflicts: u64,
        /// Self-reported space in bits.
        space_bits: u64,
        /// Whether the coloring is proper.
        proper: bool,
    },
    /// Sampled estimation result.
    Sampled {
        /// Realized sample size.
        sample_size: usize,
        /// Estimated conflicting edges.
        estimate: f64,
        /// Conflicts visible within the sample.
        visible_conflicts: u64,
        /// Self-reported space in bits.
        space_bits: u64,
    },
}

/// Verifies `coloring` against `g` in the vertex-arrival streaming model
/// (vertices arrive in id order, as the CLI always did).
///
/// # Panics
/// Panics if the coloring is partial — verification is defined for total
/// colorings (callers reject partial input with their own diagnostics).
pub fn run_verify(g: &Graph, coloring: &Coloring, mode: VerifyMode, seed: u64) -> VerifyReport {
    assert!(coloring.is_total(), "verification needs a total coloring");
    let c_max = coloring.palette_span().max(1);
    let order: Vec<u32> = (0..g.n() as u32).collect();
    let stream = stream_from_coloring(g, coloring, &order);
    match mode {
        VerifyMode::Exact => {
            let mut counter = ExactConflictCounter::new(g.n(), c_max);
            for a in &stream {
                counter.process(a);
            }
            VerifyReport::Exact {
                conflicts: counter.conflicts(),
                space_bits: counter.space_bits(),
                proper: counter.is_proper(),
            }
        }
        VerifyMode::Sampled { k } => {
            let mut est = SampledConflictEstimator::new(g.n(), k, c_max, seed);
            for a in &stream {
                est.process(a);
            }
            VerifyReport::Sampled {
                sample_size: est.sample_size(),
                estimate: est.estimate(),
                visible_conflicts: est.visible_conflicts(),
                space_bits: est.space_bits(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::{generators, greedy_complete};

    #[test]
    fn exact_mode_accepts_proper_and_counts_conflicts() {
        let g = generators::random_with_exact_max_degree(50, 6, 1);
        let mut c = Coloring::empty(50);
        greedy_complete(&g, &mut c);
        match run_verify(&g, &c, VerifyMode::Exact, 1) {
            VerifyReport::Exact { conflicts, proper, .. } => {
                assert_eq!(conflicts, 0);
                assert!(proper);
            }
            other => panic!("expected exact report, got {other:?}"),
        }

        // Corrupt one vertex to its neighbor's color.
        let e = g.edges().next().unwrap();
        c.unset(e.u());
        c.set(e.u(), c.get(e.v()).unwrap());
        match run_verify(&g, &c, VerifyMode::Exact, 1) {
            VerifyReport::Exact { conflicts, proper, .. } => {
                assert!(conflicts >= 1);
                assert!(!proper);
            }
            other => panic!("expected exact report, got {other:?}"),
        }
    }

    #[test]
    fn full_sample_estimates_exactly() {
        // All-same coloring of K20: every edge conflicts; sampling all 20
        // vertices makes the estimate exact (190).
        let g = generators::complete(20);
        let mut c = Coloring::empty(20);
        for v in 0..20u32 {
            c.set(v, 0);
        }
        match run_verify(&g, &c, VerifyMode::Sampled { k: 20 }, 3) {
            VerifyReport::Sampled { estimate, sample_size, .. } => {
                assert_eq!(sample_size, 20);
                assert!((estimate - 190.0).abs() < 1e-9, "estimate {estimate}");
            }
            other => panic!("expected sampled report, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "total coloring")]
    fn partial_colorings_are_rejected() {
        let g = generators::path(4);
        let c = Coloring::empty(4);
        run_verify(&g, &c, VerifyMode::Exact, 1);
    }
}
