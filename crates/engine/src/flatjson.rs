//! Flat JSON: the workspace's serde-free wire format.
//!
//! The container vendors no serde (see `crates/compat/README.md`), and
//! everything this workspace serializes — the perf-trajectory files
//! (`BENCH_engine.json`, `BENCH_query.json`, `ci/bench_baselines.json`),
//! shard spec files, and shard worker outputs — is the same tiny shape:
//! an array of flat objects whose values are strings, numbers, or
//! booleans. This module parses and emits exactly that shape (nested
//! containers are rejected loudly), which is all the `bench_gate`
//! regression gate and the [`shard`](crate::shard) wire format need.
//! Drop-in replaceable by serde_json when network exists.
//!
//! Lived in `sc-bench` until the shard layer needed it lower in the
//! stack; `sc_bench::flatjson` re-exports this module, so old import
//! paths keep working.
//!
//! Guarantees:
//!
//! * **Canonical encoding** — [`encode_array`] emits fields in sorted key
//!   order (objects are [`BTreeMap`]s) with a fixed layout, so equal
//!   values produce byte-identical text. The shard determinism law
//!   ("merged output is byte-identical to the single-process run")
//!   rests on this.
//! * **Exact round-trips** — `parse_array(&encode_array(&objs)) == objs`
//!   for every representable value: strings are escaped/unescaped
//!   symmetrically (UTF-8 preserved), `u64`s are kept integral
//!   ([`Scalar::Uint`], no `f64` precision cliff at 2⁵³ — seeds are
//!   `u64`s), and floats are printed in shortest-round-trip form.
//! * **Non-finite floats are unrepresentable** — JSON has no NaN/∞;
//!   [`encode_array`] panics on them rather than silently corrupting a
//!   spec file.
//! * **Duplicate keys are parse errors** — last-write-wins would let a
//!   corrupted spec line silently drop a field; the parser rejects the
//!   object naming the repeated key.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A scalar field of a flat object.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A JSON string (escapes: `\"`, `\\`, `\n`, `\t`, `\r`, and `\uXXXX`
    /// for the remaining control characters).
    Str(String),
    /// A JSON number with a fractional or exponent marker, kept as `f64`.
    Num(f64),
    /// A non-negative integer JSON number, kept exact (seeds are `u64`s;
    /// `f64` would corrupt values above 2⁵³).
    Uint(u64),
    /// A JSON boolean.
    Bool(bool),
}

impl Scalar {
    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value ([`Scalar::Num`] or [`Scalar::Uint`]), if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Num(x) => Some(*x),
            Scalar::Uint(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The exact integer value, if this is a [`Scalar::Uint`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::Uint(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// One flat object: field name → scalar value, order-insensitive.
pub type FlatObject = BTreeMap<String, Scalar>;

/// Parses `[ {..}, {..}, … ]` where every object is flat and every value
/// is a string, number, or boolean.
///
/// # Errors
/// Returns a human-readable description of the first syntax problem —
/// callers surface it verbatim, so messages name what was expected.
pub fn parse_array(text: &str) -> Result<Vec<FlatObject>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        return Ok(out);
    }
    loop {
        p.skip_ws();
        out.push(p.object()?);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b']') => break,
            other => return Err(format!("expected ',' or ']' after object, got {other:?}")),
        }
    }
    Ok(out)
}

/// Encodes objects as a flat JSON array: one object per line, fields in
/// sorted key order, a trailing newline. The output is canonical (equal
/// inputs ⇒ byte-identical text) and exactly invertible by
/// [`parse_array`].
///
/// # Panics
/// Panics on a non-finite [`Scalar::Num`] — JSON cannot represent it,
/// and a wire format that silently writes `null` would corrupt shard
/// spec files.
pub fn encode_array(objs: &[FlatObject]) -> String {
    if objs.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, obj) in objs.iter().enumerate() {
        out.push_str("  ");
        encode_object_into(&mut out, obj);
        out.push_str(if i + 1 < objs.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Encodes one flat object as a single canonical line (sorted keys, no
/// trailing newline) — the unit of the `sc-service` line protocol, where
/// every request and response is one such object per line. Equal objects
/// encode to byte-identical text; exactly invertible by [`parse_object`].
///
/// # Panics
/// Panics on a non-finite [`Scalar::Num`], like [`encode_array`].
pub fn encode_object(obj: &FlatObject) -> String {
    let mut out = String::new();
    encode_object_into(&mut out, obj);
    out
}

fn encode_object_into(out: &mut String, obj: &FlatObject) {
    out.push('{');
    for (j, (key, value)) in obj.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        encode_string(out, key);
        out.push(':');
        match value {
            Scalar::Str(s) => encode_string(out, s),
            Scalar::Num(x) => {
                assert!(x.is_finite(), "non-finite float {x} is not representable in JSON");
                // Debug formatting is shortest-round-trip and always
                // carries a '.' or exponent, so parsing yields `Num`
                // (not `Uint`) and the exact same bits.
                let _ = write!(out, "{x:?}");
            }
            Scalar::Uint(x) => {
                let _ = write!(out, "{x}");
            }
            Scalar::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
}

/// Parses exactly one flat object (`{…}` with optional surrounding
/// whitespace; anything after the closing brace is an error).
///
/// # Errors
/// Returns a human-readable description of the first syntax problem.
pub fn parse_object(text: &str) -> Result<FlatObject, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let obj = p.object()?;
    p.skip_ws();
    match p.peek() {
        None => Ok(obj),
        Some(b) => Err(format!("trailing {:?} after object at byte {}", b as char, p.pos)),
    }
}

fn encode_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // RFC 8259 forbids raw control characters in strings; the
            // remaining ones get the generic \u escape so external tools
            // (serde_json, jq) can read our files.
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            _ => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => {
                Err(format!("expected {:?} at byte {}, got {other:?}", want as char, self.pos))
            }
        }
    }

    /// Consumes `word` if it is next in the input.
    fn eat(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn object(&mut self) -> Result<FlatObject, String> {
        self.expect(b'{')?;
        let mut obj = FlatObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = match self.peek() {
                Some(b'"') => Scalar::Str(self.string()?),
                Some(b't' | b'f') => {
                    if self.eat("true") {
                        Scalar::Bool(true)
                    } else if self.eat("false") {
                        Scalar::Bool(false)
                    } else {
                        return Err(format!("field {key:?}: expected true/false"));
                    }
                }
                Some(b'{' | b'[') => {
                    return Err(format!("field {key:?}: nested containers are not flat JSON"))
                }
                _ => self.number()?,
            };
            // Last-write-wins would let a corrupted or hand-edited line
            // like {"seed":1,"seed":2} silently drop a field — reject it
            // naming the key instead.
            if obj.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?} in object"));
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}' in object, got {other:?}")),
            }
        }
        Ok(obj)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        let mut s: Vec<u8> = Vec::new();
        loop {
            match self.next() {
                Some(b'"') => {
                    return String::from_utf8(s)
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))
                }
                Some(b'\\') => match self.next() {
                    Some(c @ (b'"' | b'\\')) => s.push(c),
                    Some(b'n') => s.push(b'\n'),
                    Some(b't') => s.push(b'\t'),
                    Some(b'r') => s.push(b'\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("\\u escape needs 4 hex digits")?;
                            code = code * 16 + d;
                        }
                        let c = char::from_u32(code)
                            .ok_or(format!("\\u{code:04x} is not a scalar value"))?;
                        let mut buf = [0u8; 4];
                        s.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some(c) => s.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Scalar, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        // Integral tokens stay exact; anything with a fraction marker,
        // exponent, or sign (or too big for u64) becomes a float.
        if !text.contains(['.', 'e', 'E', '-', '+']) {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Scalar::Uint(x));
            }
        }
        let x =
            text.parse::<f64>().map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))?;
        // `str::parse` maps overflowing literals like 1e999 to ±inf; a
        // wire format whose encoder refuses non-finite values must not
        // smuggle them in through the parser either (re-encoding such a
        // value would panic — decode errors instead).
        if !x.is_finite() {
            return Err(format!("number {text:?} at byte {start} overflows f64"));
        }
        Ok(Scalar::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_engine_shape() {
        let text = r#"[
  {"algo":"alg2","n":3000,"delta":32,"m":46724,"per_edge_ms":120.5,"batched_ms":41.25,"chunk":256,"speedup":2.921},
  {"algo":"alg3","n":3000,"delta":32,"m":46724,"per_edge_ms":99.0,"batched_ms":52.0,"chunk":256,"speedup":1.903}
]
"#;
        let objs = parse_array(text).unwrap();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0]["algo"].as_str(), Some("alg2"));
        assert_eq!(objs[0]["speedup"].as_f64(), Some(2.921));
        assert_eq!(objs[1]["n"].as_f64(), Some(3000.0));
        assert_eq!(objs[1]["n"].as_u64(), Some(3000));
        assert!(objs[0]["algo"].as_f64().is_none());
        assert!(objs[0]["speedup"].as_str().is_none());
        assert!(objs[0]["speedup"].as_u64().is_none(), "floats never masquerade as ints");
    }

    #[test]
    fn empty_array_and_object() {
        assert_eq!(parse_array("[]").unwrap(), Vec::new());
        assert_eq!(parse_array(" [ { } ] ").unwrap(), vec![FlatObject::new()]);
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let objs = parse_array(r#"[{"x":-1.5e-3,"y":-7}]"#).unwrap();
        assert_eq!(objs[0]["x"].as_f64(), Some(-0.0015));
        assert_eq!(objs[0]["y"].as_f64(), Some(-7.0));
        assert!(objs[0]["y"].as_u64().is_none(), "negative numbers are not Uints");
    }

    #[test]
    fn booleans_parse_and_reject_typos() {
        let objs = parse_array(r#"[{"a":true,"b":false}]"#).unwrap();
        assert_eq!(objs[0]["a"].as_bool(), Some(true));
        assert_eq!(objs[0]["b"].as_bool(), Some(false));
        assert!(objs[0]["a"].as_f64().is_none());
        assert!(parse_array(r#"[{"a":tru}]"#).is_err());
    }

    #[test]
    fn u64_values_survive_exactly() {
        let objs = parse_array(&format!(r#"[{{"seed":{}}}]"#, u64::MAX)).unwrap();
        assert_eq!(objs[0]["seed"].as_u64(), Some(u64::MAX));
        // Beyond u64: falls back to f64 instead of failing.
        let objs = parse_array(r#"[{"big":18446744073709551616}]"#).unwrap();
        assert_eq!(objs[0]["big"].as_f64(), Some(1.8446744073709552e19));
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_array(r#"[{"x":{}}]"#).unwrap_err().contains("nested"));
        assert!(parse_array("{}").is_err());
        assert!(parse_array(r#"[{"x":1} {"y":2}]"#).is_err());
        assert!(parse_array(r#"[{"x":"unterminated]"#).is_err());
    }

    #[test]
    fn encode_round_trips_every_scalar_kind() {
        let mut obj = FlatObject::new();
        obj.insert("label".into(), Scalar::Str("robust ∆^2.5 \"x\" \\ tab\there".into()));
        obj.insert("seed".into(), Scalar::Uint(u64::MAX));
        obj.insert("p".into(), Scalar::Num(0.1));
        obj.insert("neg_zero".into(), Scalar::Num(-0.0));
        obj.insert("subnormal".into(), Scalar::Num(5e-324));
        obj.insert("huge".into(), Scalar::Num(1.7976931348623157e308));
        obj.insert("whole".into(), Scalar::Num(3.0));
        obj.insert("on".into(), Scalar::Bool(true));
        obj.insert("off".into(), Scalar::Bool(false));
        let objs = vec![obj, FlatObject::new()];
        let text = encode_array(&objs);
        let back = parse_array(&text).unwrap();
        assert_eq!(back, objs);
        // -0.0 == 0.0 under PartialEq; check the sign bit survived too.
        assert_eq!(back[0]["neg_zero"].as_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        // Whole-valued floats must come back as floats, not Uints.
        assert_eq!(back[0]["whole"], Scalar::Num(3.0));
    }

    #[test]
    fn control_characters_are_escaped_to_valid_json() {
        let mut obj = FlatObject::new();
        obj.insert("label".into(), Scalar::Str("a\rb\u{1}c\u{1f}d".into()));
        let objs = vec![obj];
        let text = encode_array(&objs);
        // RFC 8259: no raw control characters may appear in the output.
        assert!(
            !text.bytes().any(|b| b < 0x20 && b != b'\n'),
            "raw control byte leaked into {text:?}"
        );
        assert!(text.contains("\\r") && text.contains("\\u0001") && text.contains("\\u001f"));
        assert_eq!(parse_array(&text).unwrap(), objs);
        // Explicit \u escapes parse too (including non-control ones).
        let objs = parse_array(r#"[{"x":"\u0041\u2206"}]"#).unwrap();
        assert_eq!(objs[0]["x"].as_str(), Some("A∆"));
        assert!(parse_array(r#"[{"x":"\u12"}]"#).is_err());
    }

    #[test]
    fn encoding_is_canonical() {
        let mut a = FlatObject::new();
        a.insert("z".into(), Scalar::Uint(1));
        a.insert("a".into(), Scalar::Uint(2));
        let mut b = FlatObject::new();
        b.insert("a".into(), Scalar::Uint(2));
        b.insert("z".into(), Scalar::Uint(1));
        assert_eq!(encode_array(&[a]), encode_array(&[b]), "insertion order must not matter");
        assert_eq!(encode_array(&[]), "[]\n");
    }

    #[test]
    fn overflowing_number_literals_are_parse_errors_not_infinities() {
        // 1e999 parses to +inf under str::parse; the wire format must
        // reject it (re-encoding an inf would panic downstream).
        for bad in [r#"[{"x":1e999}]"#, r#"[{"x":-1e999}]"#, r#"[{"x":1e100000}]"#] {
            let e = parse_array(bad).unwrap_err();
            assert!(e.contains("overflows"), "{bad}: {e}");
        }
        // The largest finite values still parse.
        assert!(parse_array(r#"[{"x":1.7976931348623157e308}]"#).is_ok());
    }

    #[test]
    fn duplicate_keys_are_rejected_naming_the_key() {
        // Last-write-wins would mask a corrupted spec line; the parser
        // must refuse and say which key collided.
        for bad in [r#"[{"seed":1,"seed":2}]"#, r#"[{"a":1,"b":2,"a":3}]"#] {
            let e = parse_array(bad).unwrap_err();
            assert!(e.contains("duplicate key"), "{bad}: {e}");
        }
        let e = parse_object(r#"{"n":10,"n":11}"#).unwrap_err();
        assert!(e.contains("duplicate key \"n\""), "{e}");
        // Same key spelled differently is fine.
        assert!(parse_object(r#"{"n":10,"N":11}"#).is_ok());
    }

    #[test]
    fn single_objects_round_trip_on_one_line() {
        let mut obj = FlatObject::new();
        obj.insert("cmd".into(), Scalar::Str("open".into()));
        obj.insert("n".into(), Scalar::Uint(100));
        obj.insert("p".into(), Scalar::Num(0.5));
        obj.insert("ok".into(), Scalar::Bool(true));
        let line = encode_object(&obj);
        assert!(!line.contains('\n'), "line protocol objects must be single lines");
        assert_eq!(line, r#"{"cmd":"open","n":100,"ok":true,"p":0.5}"#);
        assert_eq!(parse_object(&line).unwrap(), obj);
        // Whitespace tolerated; trailing garbage is not.
        assert_eq!(parse_object(&format!("  {line}  ")).unwrap(), obj);
        assert!(parse_object(&format!("{line} x")).unwrap_err().contains("trailing"));
        assert!(parse_object("").is_err());
        assert!(parse_object("[]").is_err());
        assert_eq!(parse_object("{}").unwrap(), FlatObject::new());
    }

    #[test]
    #[should_panic(expected = "not representable")]
    fn non_finite_floats_are_rejected_at_encode() {
        let mut obj = FlatObject::new();
        obj.insert("x".into(), Scalar::Num(f64::NAN));
        encode_array(&[obj]);
    }
}
