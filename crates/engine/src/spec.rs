//! Declarative algorithm selection.

use sc_graph::Graph;
use sc_stream::BoxedColorer;
use streamcolor::robust::auto_robust_colorer;
use streamcolor::{
    Bcg20Colorer, Bg18Colorer, Cgs22Colorer, DetConfig, DynamicColorer, PaletteSparsification,
    RandEfficientColorer, RobustColorer, RobustParams, StoreAllColorer, TrivialColorer,
};

/// Which algorithm a [`Scenario`](crate::Scenario) runs.
///
/// Streaming variants build an owned [`BoxedColorer`] driven by the
/// batched engine; multi-pass and offline variants are executed directly
/// by the [`Runner`](crate::Runner) (they consume a whole
/// [`StreamSource`](sc_stream::StreamSource) / graph rather than an edge
/// feed).
#[derive(Debug, Clone, PartialEq)]
pub enum ColorerSpec {
    /// Algorithm 2 (Theorem 3 / Corollary 4.7). `beta = None` is the
    /// Theorem 3 point `β = 0`.
    Robust {
        /// The Corollary 4.7 space/colors tradeoff parameter.
        beta: Option<f64>,
    },
    /// The paper's complete Theorem 3 recipe: store-all fallback for
    /// small `∆`, Algorithm 2 otherwise.
    Auto,
    /// Algorithm 3 (Theorem 4).
    RandEfficient,
    /// CGS22-style sketch-switching robust baseline.
    Cgs22,
    /// BG18-style bucket coloring; `buckets = None` uses `∆`.
    Bg18 {
        /// Bucket count override.
        buckets: Option<u64>,
    },
    /// BCG20-style degeneracy palettes (needs the materialized graph to
    /// size its palette).
    Bcg20 {
        /// Palette slack `ε`.
        epsilon: f64,
    },
    /// ACK19-style palette sparsification; `lists = None` uses the
    /// `Θ(log n)` theory sizing.
    PaletteSparsification {
        /// Sampled-list size override.
        lists: Option<usize>,
    },
    /// Store every edge, color optimally at query time.
    StoreAll,
    /// The dynamic (turnstile) colorer: an `s`-sparse-recovery sketch
    /// over the edge universe, accepting deletions. `sparsity = None`
    /// budgets `n·∆/2` live edges (every simple `∆`-bounded graph fits).
    DynamicSr {
        /// Live-support budget override.
        sparsity: Option<usize>,
    },
    /// The trivial `n`-coloring.
    Trivial,
    /// Theorem 1: deterministic multi-pass `(∆+1)`-coloring.
    Det(DetConfig),
    /// The `O(∆)`-pass batch-greedy comparator.
    BatchGreedy,
    /// Offline first-fit greedy (not a streaming algorithm).
    OfflineGreedy,
    /// Offline Brooks `∆`-coloring (not a streaming algorithm).
    Brooks,
}

impl ColorerSpec {
    /// Whether this spec runs through the single-pass streaming engine.
    pub fn is_streaming(&self) -> bool {
        !matches!(
            self,
            ColorerSpec::Det(_)
                | ColorerSpec::BatchGreedy
                | ColorerSpec::OfflineGreedy
                | ColorerSpec::Brooks
        )
    }

    /// The universal factory: builds the owned, type-erased
    /// [`BoxedColorer`] for this spec — every call site (engine runner,
    /// attack referee, CLI, benches, the `sc-service` session host) goes
    /// through here, so there is exactly one algorithm-dispatch table in
    /// the workspace.
    ///
    /// # Errors
    /// Returns a message (never panics) when the spec cannot become a
    /// single-pass streaming colorer: multi-pass / offline specs
    /// ([`ColorerSpec::is_streaming`] is false), and `Bcg20` without a
    /// materialized graph (its palette is sized from the graph's exact
    /// degeneracy).
    pub fn build(
        &self,
        n: usize,
        delta: usize,
        seed: u64,
        graph: Option<&Graph>,
    ) -> Result<BoxedColorer, String> {
        let delta = delta.max(1);
        Ok(match self {
            ColorerSpec::Robust { beta } => match beta {
                Some(b) => Box::new(RobustColorer::with_params(
                    RobustParams::with_beta(n, delta, *b),
                    seed,
                )),
                None => Box::new(RobustColorer::new(n, delta, seed)),
            },
            ColorerSpec::Auto => Box::new(auto_robust_colorer(n, delta, seed)),
            ColorerSpec::RandEfficient => Box::new(RandEfficientColorer::new(n, delta, seed)),
            ColorerSpec::Cgs22 => Box::new(Cgs22Colorer::new(n, delta, seed)),
            ColorerSpec::Bg18 { buckets } => {
                Box::new(Bg18Colorer::new(n, buckets.unwrap_or(delta as u64), seed))
            }
            ColorerSpec::Bcg20 { epsilon } => {
                let g = graph.ok_or(
                    "bcg20 needs a materialized graph (its palette is sized from degeneracy)",
                )?;
                Box::new(Bcg20Colorer::for_graph(g, *epsilon, seed))
            }
            ColorerSpec::PaletteSparsification { lists } => match lists {
                Some(k) => Box::new(PaletteSparsification::new(n, delta, *k, seed)),
                None => Box::new(PaletteSparsification::with_theory_lists(n, delta, seed)),
            },
            ColorerSpec::StoreAll => Box::new(StoreAllColorer::new(n)),
            ColorerSpec::DynamicSr { sparsity } => {
                let budget = sparsity.unwrap_or_else(|| (n * delta).div_ceil(2).max(1));
                Box::new(DynamicColorer::new(n, budget, seed))
            }
            ColorerSpec::Trivial => Box::new(TrivialColorer::new(n)),
            ColorerSpec::Det(_)
            | ColorerSpec::BatchGreedy
            | ColorerSpec::OfflineGreedy
            | ColorerSpec::Brooks => {
                return Err(format!(
                    "{} is not a single-pass streaming algorithm (it owns its pass structure)",
                    self.label()
                ))
            }
        })
    }

    /// A stable display label (streaming specs report the colorer's own
    /// name once built; this one also covers the non-streaming specs).
    pub fn label(&self) -> &'static str {
        match self {
            ColorerSpec::Robust { .. } => "robust-alg2",
            ColorerSpec::Auto => "auto-robust",
            ColorerSpec::RandEfficient => "robust-alg3",
            ColorerSpec::Cgs22 => "cgs22-sketch-switch",
            ColorerSpec::Bg18 { .. } => "bg18-bucket",
            ColorerSpec::Bcg20 { .. } => "bcg20-degeneracy",
            ColorerSpec::PaletteSparsification { .. } => "palette-sparsification",
            ColorerSpec::StoreAll => "store-all",
            ColorerSpec::DynamicSr { .. } => "dynamic-sr",
            ColorerSpec::Trivial => "trivial",
            ColorerSpec::Det(_) => "deterministic (Thm 1)",
            ColorerSpec::BatchGreedy => "batch-greedy (O(∆) passes)",
            ColorerSpec::OfflineGreedy => "offline greedy",
            ColorerSpec::Brooks => "offline Brooks (∆ colors)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_graph::generators;

    #[test]
    fn streaming_specs_build_and_name_themselves() {
        let g = generators::gnp_with_max_degree(40, 5, 0.4, 1);
        for spec in [
            ColorerSpec::Robust { beta: None },
            ColorerSpec::Robust { beta: Some(0.5) },
            ColorerSpec::Auto,
            ColorerSpec::RandEfficient,
            ColorerSpec::Cgs22,
            ColorerSpec::Bg18 { buckets: None },
            ColorerSpec::Bcg20 { epsilon: 0.5 },
            ColorerSpec::PaletteSparsification { lists: Some(6) },
            ColorerSpec::StoreAll,
            ColorerSpec::DynamicSr { sparsity: None },
            ColorerSpec::DynamicSr { sparsity: Some(64) },
            ColorerSpec::Trivial,
        ] {
            assert!(spec.is_streaming());
            let colorer = spec.build(40, 5, 7, Some(&g)).unwrap();
            assert!(!colorer.name().is_empty());
        }
    }

    #[test]
    fn non_streaming_specs_error_instead_of_building() {
        for spec in [
            ColorerSpec::Det(DetConfig::default()),
            ColorerSpec::BatchGreedy,
            ColorerSpec::OfflineGreedy,
            ColorerSpec::Brooks,
        ] {
            assert!(!spec.is_streaming());
            let e = spec.build(10, 3, 1, None).err().expect("must not build");
            assert!(e.contains("not a single-pass"), "{e}");
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn bcg20_without_a_graph_errors_instead_of_panicking() {
        let e = ColorerSpec::Bcg20 { epsilon: 0.5 }
            .build(10, 3, 1, None)
            .err()
            .expect("must not build");
        assert!(e.contains("bcg20"), "{e}");
    }
}
