//! Scenario execution.

use crate::parallel::{default_threads, par_map};
use crate::scenario::Scenario;
use crate::spec::ColorerSpec;
use sc_graph::Coloring;
use sc_stream::{Checkpoint, StoredStream, StreamEngine};
use std::time::{Duration, Instant};
use streamcolor::{batch_greedy_coloring, deterministic_coloring, offline_greedy};

/// What one scenario produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scenario's label.
    pub label: String,
    /// The algorithm's self-reported name.
    pub algo: String,
    /// Vertices in the materialized graph.
    pub n: usize,
    /// Edges in the materialized graph.
    pub m: usize,
    /// Max degree of the materialized graph.
    pub delta: usize,
    /// The final coloring.
    pub coloring: Coloring,
    /// Whether the final coloring is proper for the whole graph.
    pub proper: bool,
    /// Distinct colors in the final coloring.
    pub colors: usize,
    /// Passes over the input (streaming: 1; offline comparators: none).
    pub passes: Option<u64>,
    /// Self-reported peak space in bits (model accounting; offline
    /// comparators: none).
    pub space_bits: Option<u64>,
    /// Mid-stream checkpoints (streaming runs with a schedule).
    pub checkpoints: Vec<Checkpoint>,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Executes scenarios — one at a time or grids in parallel.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Worker threads for [`Runner::run_all`] /
    /// [`Runner::run_attack_trials`](crate::attack) sweeps. Each scenario
    /// still runs its colorer single-threaded.
    pub threads: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self { threads: default_threads() }
    }
}

impl Runner {
    /// A sequential runner (also what `threads ≤ 1` degrades to).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// A runner with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1) }
    }

    /// Runs one scenario to completion.
    ///
    /// Dynamic (turnstile) sources take the signed route: the token
    /// sequence is fed as-is (the scenario's `order` is ignored —
    /// permuting a signed stream could move an edge past its own
    /// deletion), outputs are judged against the **live** graph, and
    /// the colorer is built with the union-graph degree bound.
    ///
    /// # Panics
    /// Panics, naming the offender, when a dynamic source meets a
    /// non-streaming spec or an insert-only colorer.
    pub fn run(&self, scenario: &Scenario) -> RunOutcome {
        if scenario.source.is_dynamic() {
            return self.run_dynamic(scenario);
        }
        let started = Instant::now();
        let g = scenario.source.materialize();
        let delta = g.max_degree();
        let edges = scenario.order.arrange(&g);

        let (algo, coloring, passes, space_bits, checkpoints) = if scenario.colorer.is_streaming() {
            let mut colorer = scenario
                .colorer
                .build(g.n(), delta, scenario.seed, Some(&g))
                .expect("streaming spec with a materialized graph always builds");
            let report = StreamEngine::new(scenario.engine.clone()).run(&mut colorer, &edges);
            (
                colorer.name().to_string(),
                report.final_coloring,
                Some(report.passes),
                Some(report.peak_space_bits),
                report.checkpoints,
            )
        } else {
            let label = scenario.colorer.label().to_string();
            match &scenario.colorer {
                ColorerSpec::Det(config) => {
                    let stream = StoredStream::from_edges(edges.iter().copied());
                    let r = deterministic_coloring(&stream, g.n(), delta, config);
                    (label, r.coloring, Some(r.passes), Some(r.peak_space_bits), Vec::new())
                }
                ColorerSpec::BatchGreedy => {
                    let stream = StoredStream::from_edges(edges.iter().copied());
                    let r = batch_greedy_coloring(&stream, g.n(), delta.max(1));
                    (label, r.coloring, Some(r.passes), Some(r.peak_space_bits), Vec::new())
                }
                ColorerSpec::OfflineGreedy => (label, offline_greedy(&g), None, None, Vec::new()),
                ColorerSpec::Brooks => {
                    (label, sc_graph::brooks_coloring(&g), None, None, Vec::new())
                }
                streaming => unreachable!("{streaming:?} is a streaming spec"),
            }
        };

        let proper = coloring.is_proper_total(&g);
        let colors = coloring.num_distinct_colors();
        RunOutcome {
            label: scenario.label.clone(),
            algo,
            n: g.n(),
            m: g.m(),
            delta,
            coloring,
            proper,
            colors,
            passes,
            space_bits,
            checkpoints,
            elapsed: started.elapsed(),
        }
    }

    /// Runs independent scenarios across the worker pool, preserving
    /// input order in the results.
    pub fn run_all(&self, scenarios: &[Scenario]) -> Vec<RunOutcome> {
        par_map(self.threads, scenarios, |_, s| self.run(s))
    }

    /// The signed (turnstile) route of [`Runner::run`].
    fn run_dynamic(&self, scenario: &Scenario) -> RunOutcome {
        let started = Instant::now();
        let live = scenario.source.materialize();
        let delta = scenario.source.stream_delta();
        let tokens = scenario.source.signed_tokens();
        assert!(
            scenario.colorer.is_streaming(),
            "{} cannot run a dynamic source (it owns its pass structure; turnstile streams \
             are single-pass)",
            scenario.colorer.label()
        );
        let mut colorer = scenario
            .colorer
            .build(live.n(), delta, scenario.seed, Some(&live))
            .expect("streaming spec with a materialized graph always builds");
        let report = StreamEngine::new(scenario.engine.clone())
            .run_signed(&mut colorer, &tokens)
            .unwrap_or_else(|e| panic!("dynamic scenario {:?}: {e}", scenario.label));

        let coloring = report.final_coloring;
        let proper = coloring.is_proper_total(&live);
        let colors = coloring.num_distinct_colors();
        RunOutcome {
            label: scenario.label.clone(),
            algo: colorer.name().to_string(),
            n: live.n(),
            m: live.m(),
            delta,
            coloring,
            proper,
            colors,
            passes: Some(report.passes),
            space_bits: Some(report.peak_space_bits),
            checkpoints: report.checkpoints,
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceSpec;
    use sc_graph::generators;
    use sc_stream::{EngineConfig, QuerySchedule, StreamOrder};
    use streamcolor::DetConfig;

    #[test]
    fn every_spec_runs_properly_through_the_runner() {
        let runner = Runner::sequential();
        let source = SourceSpec::exact_degree(80, 8, 3);
        for colorer in [
            ColorerSpec::Robust { beta: None },
            ColorerSpec::Robust { beta: Some(0.5) },
            ColorerSpec::Auto,
            ColorerSpec::RandEfficient,
            ColorerSpec::Cgs22,
            ColorerSpec::Bg18 { buckets: None },
            ColorerSpec::Bcg20 { epsilon: 0.5 },
            ColorerSpec::PaletteSparsification { lists: None },
            ColorerSpec::StoreAll,
            ColorerSpec::Det(DetConfig::default()),
            ColorerSpec::BatchGreedy,
            ColorerSpec::OfflineGreedy,
            ColorerSpec::Brooks,
        ] {
            let out = runner.run(&Scenario::new(source.clone(), colorer.clone()));
            assert!(out.proper, "{:?} produced an improper coloring", colorer);
            assert!(out.colors > 0);
            assert_eq!(out.n, 80);
            if colorer.is_streaming() {
                assert_eq!(out.passes, Some(1));
                assert!(out.space_bits.is_some());
            }
        }
    }

    #[test]
    fn parallel_grid_matches_sequential_grid() {
        let grid: Vec<Scenario> = (0..12)
            .map(|seed| {
                Scenario::new(SourceSpec::gnp(60, 6, 0.4, seed), ColorerSpec::Robust { beta: None })
                    .with_seed(seed ^ 0xA5)
                    .with_order(StreamOrder::Shuffled(seed))
            })
            .collect();
        let seq: Vec<_> = Runner::sequential().run_all(&grid);
        let par: Vec<_> = Runner::with_threads(4).run_all(&grid);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.coloring, b.coloring, "parallelism changed a result");
            assert_eq!(a.space_bits, b.space_bits);
            assert!(a.proper && b.proper);
        }
    }

    #[test]
    fn checkpoints_flow_into_outcomes() {
        let g = generators::gnp_with_max_degree(50, 5, 0.5, 2);
        let m = g.m();
        let s = Scenario::new(SourceSpec::stored(g), ColorerSpec::StoreAll)
            .with_engine(EngineConfig::batched(8))
            .with_schedule(QuerySchedule::EveryEdges(10));
        let out = Runner::sequential().run(&s);
        assert_eq!(out.checkpoints.len(), m / 10);
        assert!(out.proper);
    }

    #[test]
    fn dynamic_sources_run_the_signed_route() {
        let runner = Runner::sequential();
        for source in
            [SourceSpec::churn(50, 6, 7, 20), SourceSpec::sliding_window(50, 6, 7, 25)]
        {
            let live = source.materialize();
            let out = runner.run(&Scenario::new(
                source.clone(),
                ColorerSpec::DynamicSr { sparsity: None },
            ));
            assert!(out.proper, "{source:?} colored the live graph improperly");
            assert_eq!(out.m, live.m(), "outcome is judged against the live graph");
            assert_eq!(out.passes, Some(1));
            assert!(out.space_bits.is_some());
        }
    }

    #[test]
    fn dynamic_chunking_is_outcome_invariant() {
        let source = SourceSpec::churn(40, 5, 3, 12);
        let spec = ColorerSpec::DynamicSr { sparsity: None };
        let per_edge = Runner::sequential()
            .run(&Scenario::new(source.clone(), spec.clone()).with_engine(EngineConfig::per_edge()));
        let batched = Runner::sequential()
            .run(&Scenario::new(source, spec).with_engine(EngineConfig::batched(7)));
        assert_eq!(per_edge.coloring, batched.coloring, "chunking changed a dynamic run");
        assert_eq!(per_edge.space_bits, batched.space_bits);
    }

    #[test]
    #[should_panic(expected = "insert-only colorer cannot delete edge")]
    fn insert_only_colorers_reject_dynamic_sources_loudly() {
        let s = Scenario::new(SourceSpec::churn(30, 4, 1, 4), ColorerSpec::StoreAll);
        let _ = Runner::sequential().run(&s);
    }

    #[test]
    fn stored_sources_share_the_graph_across_a_grid() {
        let g = generators::random_with_exact_max_degree(100, 9, 4);
        let source = SourceSpec::stored(g);
        let grid: Vec<Scenario> = StreamOrder::sweep(11)
            .into_iter()
            .map(|order| {
                Scenario::new(source.clone(), ColorerSpec::RandEfficient).with_order(order)
            })
            .collect();
        let outs = Runner::default().run_all(&grid);
        assert_eq!(outs.len(), 6);
        assert!(outs.iter().all(|o| o.proper));
    }
}
