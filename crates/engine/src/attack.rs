//! Adaptive-adversary games as declarative scenarios.

use crate::parallel::par_map;
use crate::runner::Runner;
use crate::spec::ColorerSpec;
use sc_adversary::{
    summarize, Adversary, BufferBoundaryAttacker, CliqueBuilder, GameReport, LevelBoundaryAttacker,
    MonochromaticAttacker, ObliviousReplay, OscillationAttacker, RandomAdversary, TrialSummary,
};
use sc_graph::Edge;
use std::sync::Arc;

/// Which adversary generates the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversarySpec {
    /// The monochromatic feedback attack (the paper's motivating break).
    Monochromatic,
    /// Uniform random non-duplicate insertions (harmless control).
    Random,
    /// Deterministic greedy clique building.
    CliqueBuilder,
    /// Targets epoch-buffer boundaries; `buffer = None` assumes `n`.
    BufferBoundary {
        /// The victim's assumed buffer capacity.
        buffer: Option<usize>,
    },
    /// Targets level thresholds of Algorithm 2.
    LevelBoundary,
    /// Delete/re-insert oscillation of monochromatic edges (a turnstile
    /// attack: [`Runner::run_attack`] referees it with the signed game,
    /// so the victim must support deletions).
    Oscillation,
    /// Replays a fixed edge list (turns a game into an oblivious run).
    Replay(Arc<Vec<Edge>>),
}

impl AdversarySpec {
    /// Builds the boxed adversary.
    pub fn build(&self, n: usize, delta: usize, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversarySpec::Monochromatic => Box::new(MonochromaticAttacker::new(n, delta, seed)),
            AdversarySpec::Random => Box::new(RandomAdversary::new(n, delta, seed)),
            AdversarySpec::CliqueBuilder => Box::new(CliqueBuilder::new(n, delta)),
            AdversarySpec::BufferBoundary { buffer } => {
                Box::new(BufferBoundaryAttacker::new(n, delta, buffer.unwrap_or(n), seed))
            }
            AdversarySpec::LevelBoundary => Box::new(LevelBoundaryAttacker::new(n, delta, seed)),
            AdversarySpec::Oscillation => Box::new(OscillationAttacker::new(n, delta, seed)),
            AdversarySpec::Replay(edges) => Box::new(ObliviousReplay::new(edges.iter().copied())),
        }
    }

    /// Whether this adversary's stream carries deletions, i.e. the game
    /// must be refereed by [`sc_adversary::run_signed_game`].
    pub fn is_signed(&self) -> bool {
        matches!(self, AdversarySpec::Oscillation)
    }
}

/// One adaptive game: a victim, an adversary, and a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackScenario {
    /// Display label.
    pub label: String,
    /// The algorithm under attack (must be a streaming spec).
    pub victim: ColorerSpec,
    /// The stream generator.
    pub adversary: AdversarySpec,
    /// Vertices.
    pub n: usize,
    /// Degree budget the adversary respects.
    pub delta: usize,
    /// Maximum insertions.
    pub rounds: usize,
    /// Victim's seed.
    pub victim_seed: u64,
    /// Adversary's seed.
    pub adversary_seed: u64,
}

impl AttackScenario {
    /// A scenario with round budget `n·∆/2` and default seeds.
    pub fn new(victim: ColorerSpec, adversary: AdversarySpec, n: usize, delta: usize) -> Self {
        Self {
            label: victim.label().to_string(),
            victim,
            adversary,
            n,
            delta,
            rounds: n * delta / 2,
            victim_seed: 1,
            adversary_seed: 1 ^ 0xA77AC,
        }
    }

    /// Sets the round budget.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets both seeds (adversary gets a tweaked copy).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.victim_seed = seed;
        self.adversary_seed = seed ^ 0xA77AC;
        self
    }

    /// The same scenario re-seeded for trial `t` (independent parties).
    /// [`Runner::run_attack_trials`] runs trials `0..trials`; the shard
    /// worker runs its contiguous sub-range of the same seeds, so
    /// sharded trials are bit-identical to in-process ones.
    pub fn trial(&self, t: u64) -> AttackScenario {
        let mut s = self.clone();
        s.victim_seed = self.victim_seed.wrapping_add(t.wrapping_mul(0x9E37_79B9));
        s.adversary_seed = self.adversary_seed.wrapping_add(t.wrapping_mul(0xC2B2_AE35));
        s
    }
}

impl Runner {
    /// Referees one adaptive game.
    pub fn run_attack(&self, scenario: &AttackScenario) -> GameReport {
        let mut victim = scenario
            .victim
            .build(scenario.n, scenario.delta, scenario.victim_seed, None)
            .expect("attack victims must be streaming colorers");
        let mut adversary =
            scenario.adversary.build(scenario.n, scenario.delta, scenario.adversary_seed);
        if scenario.adversary.is_signed() {
            sc_adversary::run_signed_game(&mut victim, adversary.as_mut(), scenario.n, scenario.rounds)
        } else {
            sc_adversary::run_game(&mut victim, adversary.as_mut(), scenario.n, scenario.rounds)
        }
    }

    /// Runs `trials` independently seeded games in parallel and
    /// aggregates them (games are independent across seeds, so this is
    /// exactly [`sc_adversary::run_trials`] spread over the pool).
    pub fn run_attack_trials(&self, scenario: &AttackScenario, trials: usize) -> TrialSummary {
        let seeds: Vec<u64> = (0..trials as u64).collect();
        let reports = par_map(self.threads, &seeds, |_, &t| self.run_attack(&scenario.trial(t)));
        summarize(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_victims_survive_declarative_attacks() {
        let runner = Runner::sequential();
        for victim in [ColorerSpec::Robust { beta: None }, ColorerSpec::RandEfficient] {
            let s = AttackScenario::new(victim, AdversarySpec::Monochromatic, 50, 6)
                .with_rounds(120)
                .with_seed(3);
            let r = runner.run_attack(&s);
            assert!(r.survived(), "{}", s.label);
            assert!(r.rounds > 0);
        }
    }

    #[test]
    fn parallel_trials_match_sequential_trials() {
        let s = AttackScenario::new(
            ColorerSpec::PaletteSparsification { lists: Some(3) },
            AdversarySpec::Monochromatic,
            60,
            16,
        )
        .with_rounds(60 * 16)
        .with_seed(70);
        let seq = Runner::sequential().run_attack_trials(&s, 5);
        let par = Runner::with_threads(4).run_attack_trials(&s, 5);
        assert_eq!(seq.trials, par.trials);
        assert_eq!(seq.broken, par.broken);
        assert_eq!(seq.failure_rounds, par.failure_rounds);
        assert_eq!(seq.max_colors, par.max_colors);
        assert!(seq.broken > 0, "tiny lists must break under the attack");
    }

    #[test]
    fn every_adversary_spec_builds_and_plays() {
        let runner = Runner::sequential();
        for adversary in [
            AdversarySpec::Monochromatic,
            AdversarySpec::Random,
            AdversarySpec::CliqueBuilder,
            AdversarySpec::BufferBoundary { buffer: None },
            AdversarySpec::LevelBoundary,
        ] {
            let s = AttackScenario::new(ColorerSpec::Robust { beta: None }, adversary, 40, 5)
                .with_rounds(60);
            let r = runner.run_attack(&s);
            assert!(r.rounds > 0);
        }
    }

    #[test]
    fn oscillation_attack_runs_the_signed_game() {
        let s = AttackScenario::new(
            ColorerSpec::DynamicSr { sparsity: None },
            AdversarySpec::Oscillation,
            40,
            6,
        )
        .with_rounds(120)
        .with_seed(5);
        assert!(s.adversary.is_signed());
        let r = Runner::sequential().run_attack(&s);
        assert!(r.deletions > 5, "oscillation deleted only {} times", r.deletions);
        assert!(r.survived(), "dynamic-sr failed at round {:?}", r.first_failure_round);
    }

    #[test]
    fn replay_adversary_reproduces_oblivious_runs() {
        let g = sc_graph::generators::gnp_with_max_degree(40, 6, 0.4, 1);
        let edges: Vec<Edge> = sc_graph::generators::shuffled_edges(&g, 1);
        let s = AttackScenario::new(
            ColorerSpec::Robust { beta: None },
            AdversarySpec::Replay(Arc::new(edges.clone())),
            40,
            6,
        )
        .with_rounds(10_000)
        .with_seed(77);
        let r = Runner::sequential().run_attack(&s);
        assert_eq!(r.rounds, edges.len());
        assert!(r.survived());
    }
}
