//! Scoped-thread fan-out for independent work items.
//!
//! The environment has no network access to crates.io, so `rayon` is not
//! available; this is the small slice of it the runner needs. Work items
//! are claimed from a shared atomic cursor, so long and short items mix
//! without static partitioning; results come back in input order.
//! Each item runs entirely on one thread — colorers are never shared, so
//! the streaming model's per-algorithm space accounting is untouched.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `threads` scoped threads, returning
/// results in input order. `threads ≤ 1` (or a single item) runs inline.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new(items.iter().map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                results.lock().expect("worker panicked holding results")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("worker panicked holding results")
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// A default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(8, &items, |_, &x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn inline_paths_match_parallel_paths() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            par_map(1, &items, |i, &x| x + i as u64),
            par_map(4, &items, |i, &x| x + i as u64)
        );
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u64> = vec![];
        assert!(par_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u64], |_, &x| x), vec![7]);
    }

    #[test]
    fn uses_index_argument() {
        let items = vec!["a", "b", "c"];
        let out = par_map(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }
}
