//! The space story that justifies the turnstile subsystem: the
//! sparse-recovery colorer's footprint is a function of the sketch
//! budget — `O(s · polylog n)` bits, `o(n²)` for the default budget —
//! and is **independent of the stream length**, while any
//! store-the-stream baseline grows linearly with the token count on
//! churny inputs (each oscillation round appends delete/re-insert
//! pairs without changing the live graph at all).

use sc_engine::{ColorerSpec, Runner, Scenario, SourceSpec};
use sc_stream::edge_bits;

/// Peak space (model bits) and token count of a churn run.
fn churn_run(n: usize, delta: usize, rounds: usize) -> (u64, usize) {
    let source = SourceSpec::churn(n, delta, 7, rounds);
    let tokens = source.signed_tokens().len();
    let outcome = Runner::sequential()
        .run(&Scenario::new(source, ColorerSpec::DynamicSr { sparsity: None }).with_seed(9));
    assert!(outcome.proper, "churn run must stay proper (n={n}, rounds={rounds})");
    (outcome.space_bits.expect("streaming runs report space"), tokens)
}

#[test]
fn sketch_space_is_independent_of_churn_length() {
    let (n, delta) = (48, 5);
    let (base_space, base_tokens) = churn_run(n, delta, 1);
    let (long_space, long_tokens) = churn_run(n, delta, 1000);
    assert!(
        long_tokens > 10 * base_tokens,
        "oscillation rounds must actually lengthen the stream ({base_tokens} -> {long_tokens})"
    );
    assert_eq!(
        base_space, long_space,
        "the sketch's peak space must not grow with the token count"
    );
}

#[test]
fn sketch_space_beats_storing_the_stream_on_churny_inputs() {
    // The baseline a turnstile algorithm displaces: keeping every token
    // (store-all cannot even accept deletions, so the honest insert-only
    // analogue is the raw stream transcript at 2⌈log₂ n⌉ bits a token).
    // On a long churn the transcript dwarfs the live graph; the sketch
    // (constant once the budget is fixed) must undercut it. Each
    // oscillation round appends one delete/re-insert pair, so 20k
    // rounds is a ~40k-token stream over a ~120-edge live graph.
    let (n, delta) = (48, 5);
    let (space, tokens) = churn_run(n, delta, 20_000);
    let transcript_bits = tokens as u64 * edge_bits(n);
    assert!(
        space < transcript_bits,
        "sketch ({space} bits) must undercut the stream transcript ({transcript_bits} bits)"
    );
}

#[test]
fn sketch_space_grows_subquadratically_in_n() {
    // Default budget is (n·Δ)/2, so at fixed Δ doubling n must roughly
    // double the footprint (linear·polylog), nowhere near the 4× a
    // store-the-graph Θ(n²)-bit structure pays. Allow 3× for the
    // polylog factors.
    let delta = 5;
    let (small, _) = churn_run(64, delta, 4);
    let (big, _) = churn_run(128, delta, 4);
    assert!(
        big < 3 * small,
        "doubling n must not quadruple sketch space ({small} -> {big} bits)"
    );
}
