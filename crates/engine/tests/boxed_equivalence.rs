//! The erasure laws: a [`BoxedColorer`] built by the universal factory
//! ([`ColorerSpec::build`]) obeys the same batch-equivalence and
//! incremental-equivalence contracts as the concrete colorers it wraps
//! (`crates/core/tests/{batch,incremental}_equivalence.rs` prove them
//! per implementation; this suite proves type erasure — the session and
//! service layers' only view of a colorer — changes nothing).

use proptest::prelude::*;
use sc_engine::ColorerSpec;
use sc_graph::{generators, Edge, Graph};
use sc_stream::{BoxedColorer, StreamingColorer};

/// Every streaming spec the factory can build (bcg20 needs the
/// materialized graph, passed per case below).
fn streaming_specs() -> Vec<ColorerSpec> {
    vec![
        ColorerSpec::Robust { beta: None },
        ColorerSpec::Robust { beta: Some(0.5) },
        ColorerSpec::Auto,
        ColorerSpec::RandEfficient,
        ColorerSpec::Cgs22,
        ColorerSpec::Bg18 { buckets: None },
        ColorerSpec::Bcg20 { epsilon: 0.5 },
        ColorerSpec::PaletteSparsification { lists: Some(6) },
        ColorerSpec::StoreAll,
        ColorerSpec::Trivial,
    ]
}

fn build(spec: &ColorerSpec, n: usize, delta: usize, seed: u64, g: &Graph) -> BoxedColorer {
    spec.build(n, delta, seed, Some(g)).expect("streaming spec with a graph builds")
}

/// Splits `edges` into chunks whose sizes cycle through `cuts`.
fn chunkings(edges: &[Edge], cuts: &[usize]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let (mut start, mut i) = (0, 0);
    while start < edges.len() {
        let size = cuts[i % cuts.len()].max(1).min(edges.len() - start);
        spans.push((start, start + size));
        start += size;
        i += 1;
    }
    spans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch ≡ per-edge, through the erased interface: same colorings
    /// from every later query, same space report, for ragged chunkings.
    #[test]
    fn boxed_colorers_pass_batch_equivalence((n, delta, seed) in (24usize..60, 3usize..8, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 1);
        for spec in streaming_specs() {
            let mut seq = build(&spec, n, delta, seed ^ 2, &g);
            let mut bat = build(&spec, n, delta, seed ^ 2, &g);
            for &e in &edges {
                seq.process(e);
            }
            for &(a, b) in &chunkings(&edges, &[7, 1, 13]) {
                bat.process_batch(&edges[a..b]);
            }
            prop_assert_eq!(seq.query(), bat.query(), "{:?}: colorings diverge", &spec);
            prop_assert_eq!(
                seq.peak_space_bits(),
                bat.peak_space_bits(),
                "{:?}: space reports diverge",
                &spec
            );
        }
    }

    /// Incremental ≡ scratch at every prefix, through the erased
    /// interface, under an ingest/query interleaving.
    #[test]
    fn boxed_colorers_pass_incremental_equivalence((n, delta, seed) in (24usize..60, 3usize..8, any::<u64>())) {
        let g = generators::gnp_with_max_degree(n, delta, 0.5, seed);
        let edges = generators::shuffled_edges(&g, seed ^ 3);
        for spec in streaming_specs() {
            let mut inc = build(&spec, n, delta, seed ^ 4, &g);
            let mut scr = build(&spec, n, delta, seed ^ 4, &g);
            for (i, chunk) in edges.chunks(5).enumerate() {
                inc.process_batch(chunk);
                scr.process_batch(chunk);
                if i % 2 == 0 {
                    prop_assert_eq!(
                        inc.query_incremental(),
                        scr.query(),
                        "{:?}: prefix query diverges",
                        &spec
                    );
                }
            }
            // Back-to-back queries (a cache hit for colorers that have
            // one) must also agree.
            prop_assert_eq!(inc.query_incremental(), scr.query(), "{:?}: final", &spec);
            prop_assert_eq!(inc.query_incremental(), scr.query(), "{:?}: re-query", &spec);
            prop_assert_eq!(
                inc.peak_space_bits(),
                scr.peak_space_bits(),
                "{:?}: space reports diverge",
                &spec
            );
        }
    }
}
