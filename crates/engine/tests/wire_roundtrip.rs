//! Property test: the wire format is lossless.
//!
//! `from_wire(to_wire(x)) == x` over randomly generated [`Scenario`],
//! [`AttackScenario`], and [`EngineConfig`] values — including irregular
//! floats (signed zero, subnormals, extreme exponents, arbitrary finite
//! bit patterns) and empty grids. Stored graphs are generated in
//! canonical (sorted-edge) form, where exact equality is the law; the
//! idempotence of `decode ∘ encode` for *non*-canonical graphs is covered
//! in `sc_engine::wire`'s unit tests.

use proptest::prelude::*;
use sc_engine::wire;
use sc_engine::{AdversarySpec, AttackScenario, ColorerSpec, GraphFamily, Scenario, SourceSpec};
use sc_graph::{Edge, Graph};
use sc_stream::{EngineConfig, QuerySchedule, StreamOrder};
use std::collections::BTreeSet;
use std::sync::Arc;
use streamcolor::{DerandStrategy, DetConfig};

/// SplitMix64: one seed from the proptest strategy drives the whole
/// structured value, so every case is reproducible from its seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// A finite float, biased toward the irregular corners of the format:
    /// signed zero, subnormals, the extreme normals, decimal-unfriendly
    /// fractions, and arbitrary finite bit patterns.
    fn float(&mut self) -> f64 {
        const IRREGULAR: &[f64] = &[
            0.0,
            -0.0,
            5e-324, // smallest positive subnormal
            -5e-324,
            2.2250738585072014e-308, // smallest positive normal
            1.7976931348623157e308,  // f64::MAX
            -1.7976931348623157e308,
            0.1,
            0.30000000000000004, // 0.1 + 0.2
            1.0 / 3.0,
            1e16,
            -1e-300,
            std::f64::consts::PI,
        ];
        match self.below(3) {
            0 => IRREGULAR[self.below(IRREGULAR.len() as u64) as usize],
            1 => {
                // Arbitrary finite bit pattern (NaN/∞ are unrepresentable
                // on the wire by design; redraw until finite).
                loop {
                    let x = f64::from_bits(self.next());
                    if x.is_finite() {
                        return x;
                    }
                }
            }
            _ => self.below(1000) as f64 / 8.0,
        }
    }

    fn label(&mut self) -> String {
        const CHARS: &[char] = &[
            'a', 'Z', '3', ' ', '∆', 'β', '"', '\\', '\n', '\t', '\r', '\u{1}', ':', ',', '{', '}',
        ];
        (0..self.below(12)).map(|_| CHARS[self.below(CHARS.len() as u64) as usize]).collect()
    }

    fn colorer(&mut self) -> ColorerSpec {
        match self.below(15) {
            0 => ColorerSpec::Robust { beta: None },
            1 => ColorerSpec::Robust { beta: Some(self.float()) },
            2 => ColorerSpec::Auto,
            3 => ColorerSpec::RandEfficient,
            4 => ColorerSpec::Cgs22,
            5 => ColorerSpec::Bg18 { buckets: (self.below(2) == 0).then(|| self.next()) },
            6 => ColorerSpec::Bcg20 { epsilon: self.float() },
            7 => ColorerSpec::PaletteSparsification {
                lists: (self.below(2) == 0).then(|| self.below(1 << 40) as usize),
            },
            8 => ColorerSpec::StoreAll,
            9 => ColorerSpec::Trivial,
            10 => ColorerSpec::Det(DetConfig {
                derand: if self.below(2) == 0 {
                    DerandStrategy::FullFamily
                } else {
                    DerandStrategy::Grid { l: self.below(1 << 20) as usize }
                },
                max_epochs: self.below(1 << 30) as usize,
                track_potential: self.below(2) == 0,
            }),
            11 => ColorerSpec::BatchGreedy,
            12 => ColorerSpec::OfflineGreedy,
            13 => ColorerSpec::DynamicSr {
                sparsity: (self.below(2) == 0).then(|| self.below(1 << 30) as usize),
            },
            _ => ColorerSpec::Brooks,
        }
    }

    /// A canonical stored graph: built from sorted edges, so decoding its
    /// wire form reproduces it exactly (adjacency order included).
    fn stored_graph(&mut self) -> Graph {
        let n = 2 + self.below(28) as usize;
        let m = self.below(40);
        let mut edges = BTreeSet::new();
        for _ in 0..m {
            let a = self.below(n as u64) as u32;
            let b = self.below(n as u64) as u32;
            if a != b {
                edges.insert(Edge::new(a, b));
            }
        }
        Graph::from_edges(n, edges)
    }

    fn source(&mut self) -> SourceSpec {
        match self.below(6) {
            0 => return SourceSpec::Stored(Arc::new(self.stored_graph())),
            1 => {
                return SourceSpec::Churn {
                    n: self.next() as usize,
                    delta: self.next() as usize,
                    p: self.float(),
                    seed: self.next(),
                    rounds: self.below(1 << 30) as usize,
                }
            }
            2 => {
                return SourceSpec::SlidingWindow {
                    n: self.next() as usize,
                    delta: self.next() as usize,
                    p: self.float(),
                    seed: self.next(),
                    window: self.below(1 << 30) as usize,
                }
            }
            _ => {}
        }
        let family = match self.below(11) {
            0 => GraphFamily::Gnp,
            1 => GraphFamily::ExactDegree,
            2 => GraphFamily::PreferentialAttachment,
            3 => GraphFamily::Cycle,
            4 => GraphFamily::Path,
            5 => GraphFamily::Complete,
            6 => GraphFamily::Star,
            7 => GraphFamily::CliqueUnion {
                k: self.below(1 << 20) as usize,
                size: self.below(1 << 20) as usize,
            },
            8 => GraphFamily::Bipartite {
                a: self.below(1 << 20) as usize,
                b: self.below(1 << 20) as usize,
            },
            9 => GraphFamily::Petersen,
            _ => GraphFamily::Circulant,
        };
        // Wire data only — never materialized — so params are unbounded.
        SourceSpec::Family {
            family,
            n: self.next() as usize,
            delta: self.next() as usize,
            p: self.float(),
            seed: self.next(),
        }
    }

    fn order(&mut self) -> StreamOrder {
        match self.below(6) {
            0 => StreamOrder::AsGenerated,
            1 => StreamOrder::Shuffled(self.next()),
            2 => StreamOrder::HubsFirst,
            3 => StreamOrder::HubsLast,
            4 => StreamOrder::VertexContiguous,
            _ => StreamOrder::Interleaved(self.next()),
        }
    }

    fn engine_config(&mut self) -> EngineConfig {
        let schedule = match self.below(3) {
            0 => QuerySchedule::FinalOnly,
            1 => QuerySchedule::EveryEdges(self.next() as usize),
            _ => QuerySchedule::AtPrefixes(
                (0..self.below(5)).map(|_| self.next() as usize).collect(),
            ),
        };
        EngineConfig { chunk_size: self.next() as usize, schedule, incremental: self.below(2) == 0 }
    }

    fn scenario(&mut self) -> Scenario {
        Scenario {
            label: self.label(),
            source: self.source(),
            order: self.order(),
            colorer: self.colorer(),
            engine: self.engine_config(),
            seed: self.next(),
        }
    }

    fn adversary(&mut self) -> AdversarySpec {
        match self.below(7) {
            0 => AdversarySpec::Monochromatic,
            1 => AdversarySpec::Random,
            2 => AdversarySpec::CliqueBuilder,
            3 => AdversarySpec::BufferBoundary {
                buffer: (self.below(2) == 0).then(|| self.next() as usize),
            },
            4 => AdversarySpec::LevelBoundary,
            5 => AdversarySpec::Oscillation,
            _ => {
                // Replay order is part of the data: keep it un-sorted.
                let edges: Vec<Edge> = (0..self.below(20))
                    .filter_map(|_| {
                        let a = self.below(50) as u32;
                        let b = self.below(50) as u32;
                        (a != b).then(|| Edge::new(a, b))
                    })
                    .collect();
                AdversarySpec::Replay(Arc::new(edges))
            }
        }
    }

    fn attack(&mut self) -> AttackScenario {
        AttackScenario {
            label: self.label(),
            victim: self.colorer(),
            adversary: self.adversary(),
            n: self.next() as usize,
            delta: self.next() as usize,
            rounds: self.next() as usize,
            victim_seed: self.next(),
            adversary_seed: self.next(),
        }
    }
}

// ---------------------------------------------------------------------
// Error-path hardening: malformed, truncated, and unknown-key spec
// files must return Err naming the problem — never panic, never
// silently ignore a field.
// ---------------------------------------------------------------------

mod error_paths {
    use super::*;
    use sc_engine::flatjson::Scalar;
    use sc_engine::shard::ShardJob;

    fn sample_scenario() -> Scenario {
        Scenario::new(SourceSpec::exact_degree(20, 3, 1), ColorerSpec::Bg18 { buckets: Some(4) })
    }

    #[test]
    fn unknown_scenario_keys_name_the_offender() {
        let mut obj = wire::scenario_to_wire(&sample_scenario());
        obj.insert("buckts".into(), Scalar::Uint(12));
        let e = wire::scenario_from_wire(&obj).unwrap_err();
        assert!(e.contains("unknown key") && e.contains("buckts"), "{e}");
    }

    #[test]
    fn parameters_of_other_colorers_are_unknown_keys() {
        // "beta" belongs to robust; on a bg18 scenario it must error, not
        // silently vanish on the next re-encode.
        let mut obj = wire::scenario_to_wire(&sample_scenario());
        obj.insert("beta".into(), Scalar::Num(0.5));
        let e = wire::scenario_from_wire(&obj).unwrap_err();
        assert!(e.contains("unknown key") && e.contains("beta"), "{e}");
    }

    #[test]
    fn unknown_attack_keys_name_the_offender() {
        let attack = AttackScenario::new(
            ColorerSpec::Robust { beta: None },
            AdversarySpec::Monochromatic,
            30,
            4,
        );
        let mut obj = wire::attack_to_wire(&attack);
        obj.insert("round".into(), Scalar::Uint(99));
        let e = wire::attack_from_wire(&obj).unwrap_err();
        assert!(e.contains("unknown key") && e.contains("round"), "{e}");
    }

    #[test]
    fn truncated_spec_files_error_instead_of_panicking() {
        let text = ShardJob::Grid(vec![sample_scenario()]).encode();
        for cut in [1, text.len() / 3, text.len() / 2, text.len() - 2] {
            let truncated = &text[..cut];
            assert!(
                ShardJob::decode(truncated).is_err(),
                "truncation at byte {cut} must not decode"
            );
        }
    }

    #[test]
    fn shard_job_header_rejects_unknown_and_misspelled_keys() {
        let grid = ShardJob::Grid(vec![sample_scenario()]);
        let tampered = grid.encode().replace(
            "\"kind\":\"shard-job\",\"payload\":\"grid\"",
            "\"kind\":\"shard-job\",\"payload\":\"grid\",\"trails\":3",
        );
        let e = ShardJob::decode(&tampered).unwrap_err();
        assert!(e.contains("unknown key") && e.contains("trails"), "{e}");
    }

    #[test]
    fn overflowing_numbers_in_spec_files_are_decode_errors() {
        // 1e999 would parse to +inf and then panic inside canonicalize's
        // re-encode; the parser must refuse it up front.
        let text = wire::encode_grid(&[Scenario::new(
            SourceSpec::gnp(20, 3, 0.5, 1),
            ColorerSpec::Robust { beta: Some(0.5) },
        )])
        .replace("0.5,", "1e999,");
        let e = wire::decode_grid(&text).unwrap_err();
        assert!(e.contains("overflows"), "{e}");
    }

    #[test]
    fn wrongly_typed_fields_error_with_the_field_name() {
        let mut obj = wire::scenario_to_wire(&sample_scenario());
        obj.insert("seed".into(), Scalar::Str("seven".into()));
        let e = wire::scenario_from_wire(&obj).unwrap_err();
        assert!(e.contains("seed"), "{e}");

        let mut obj = wire::scenario_to_wire(&sample_scenario());
        obj.insert("buckets".into(), Scalar::Bool(true));
        let e = wire::scenario_from_wire(&obj).unwrap_err();
        assert!(e.contains("buckets"), "{e}");
    }
}

// ---------------------------------------------------------------------
// Colorer state codecs: decode ∘ encode ≡ id, canonical bytes, and loud
// failures on mangled blobs — the engine-level half of the persistence
// law (`crates/service/tests/snapshot_determinism.rs` owns the protocol
// half).
// ---------------------------------------------------------------------

mod state_codecs {
    use super::*;
    use sc_graph::generators;

    /// Every spec [`ColorerSpec::build`] accepts (the four offline
    /// algorithms are build-time errors, so a codec-less colorer cannot
    /// exist). `bcg20` is the one that needs a materialized graph.
    fn codec_specs() -> Vec<(ColorerSpec, bool)> {
        vec![
            (ColorerSpec::Robust { beta: None }, false),
            (ColorerSpec::Robust { beta: Some(0.5) }, false),
            (ColorerSpec::Auto, false),
            (ColorerSpec::RandEfficient, false),
            (ColorerSpec::Cgs22, false),
            (ColorerSpec::Bg18 { buckets: None }, false),
            (ColorerSpec::Bcg20 { epsilon: 0.5 }, true),
            (ColorerSpec::PaletteSparsification { lists: Some(6) }, false),
            (ColorerSpec::StoreAll, false),
            (ColorerSpec::Trivial, false),
        ]
    }

    /// Feeds a prefix, round-trips the state into a freshly built twin,
    /// and demands (a) canonical bytes on re-encode, (b) identical
    /// colorings now and after both ingest the rest of the stream.
    pub fn check_round_trip(seed: u64) -> Result<(), String> {
        let mut rng = Gen::new(seed);
        let n = 20 + rng.below(20) as usize;
        let delta = 3 + rng.below(5) as usize;
        let g = generators::gnp_with_max_degree(n, delta, 0.5, rng.next());
        let edges: Vec<Edge> = generators::shuffled_edges(&g, rng.next());
        let cut = rng.below(edges.len() as u64 + 1) as usize;
        for (spec, needs_graph) in codec_specs() {
            let graph = needs_graph.then_some(&g);
            let colorer_seed = rng.next();
            let mut original = spec.build(n, delta, colorer_seed, graph)?;
            original.process_batch(&edges[..cut]);

            let blob = original.encode_state()?;
            let mut restored = spec.build(n, delta, colorer_seed, graph)?;
            restored.decode_state(&blob)?;
            let reencoded = restored.encode_state()?;
            if reencoded != blob {
                return Err(format!("{spec:?}: re-encode drifted\n {blob}\n {reencoded}"));
            }

            if restored.query() != original.query() {
                return Err(format!("{spec:?}: colorings diverged at the snapshot point"));
            }
            original.process_batch(&edges[cut..]);
            restored.process_batch(&edges[cut..]);
            if restored.query() != original.query() {
                return Err(format!("{spec:?}: colorings diverged after resuming the stream"));
            }
        }
        Ok(())
    }

    /// Mangled blobs must fail loudly, naming the offender — for every
    /// codec, since each decodes its own vocabulary.
    #[test]
    fn mangled_state_blobs_name_the_offender() {
        let mut rng = Gen::new(7);
        let n = 24;
        let delta = 4;
        let g = generators::gnp_with_max_degree(n, delta, 0.5, 7);
        let edges: Vec<Edge> = generators::shuffled_edges(&g, 8);
        for (spec, needs_graph) in codec_specs() {
            let graph = needs_graph.then_some(&g);
            let seed = rng.next();
            let mut colorer = spec.build(n, delta, seed, graph).unwrap();
            colorer.process_batch(&edges[..edges.len() / 2]);
            let blob = colorer.encode_state().unwrap();
            let fresh = || spec.build(n, delta, seed, graph).unwrap();

            // Truncation: cut mid-blob (never a valid shorter blob —
            // every field is demanded by name).
            let e = fresh().decode_state(&blob[..blob.len() / 2]).unwrap_err();
            assert!(!e.is_empty(), "{spec:?}: truncation must error");

            // Typo'd first key: "algo" is every codec's opening field.
            let typod = blob.replacen("algo=", "algq=", 1);
            let e = fresh().decode_state(&typod).unwrap_err();
            assert!(e.contains("algo") && e.contains("algq"), "{spec:?}: {e}");

            // Unknown trailing key.
            let e = fresh().decode_state(&format!("{blob};bogus=1")).unwrap_err();
            assert!(e.contains("bogus"), "{spec:?}: {e}");

            // A blob from a different algorithm names the mismatch.
            if !matches!(spec, ColorerSpec::Trivial) {
                let mut stranger = ColorerSpec::Trivial.build(n, delta, seed, None).unwrap();
                let e = stranger.decode_state(&blob).unwrap_err();
                assert!(e.contains("is not"), "{spec:?}: {e}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scenarios_round_trip(seed in any::<u64>()) {
        let s = Gen::new(seed).scenario();
        let back = wire::scenario_from_wire(&wire::scenario_to_wire(&s));
        prop_assert_eq!(back.as_ref(), Ok(&s), "seed {}", seed);
    }

    #[test]
    fn attacks_round_trip(seed in any::<u64>()) {
        let a = Gen::new(seed).attack();
        let back = wire::attack_from_wire(&wire::attack_to_wire(&a));
        prop_assert_eq!(back.as_ref(), Ok(&a), "seed {}", seed);
    }

    #[test]
    fn engine_configs_round_trip(seed in any::<u64>()) {
        let cfg = Gen::new(seed).engine_config();
        let text = cfg.wire_encode();
        let back = EngineConfig::wire_decode(&text);
        prop_assert_eq!(back.as_ref(), Ok(&cfg), "wire text {:?}", text);
        // Stability: re-encoding the decoded value is byte-identical.
        prop_assert_eq!(back.unwrap().wire_encode(), text);
    }

    /// `decode_state ∘ encode_state ≡ id` for every colorer, with
    /// canonical bytes and an identical continuation of the stream.
    #[test]
    fn colorer_states_round_trip(seed in any::<u64>()) {
        prop_assert_eq!(state_codecs::check_round_trip(seed), Ok(()), "seed {}", seed);
    }

    #[test]
    fn grids_round_trip_including_empty(seed in any::<u64>(), len in 0usize..5) {
        let mut g = Gen::new(seed);
        let grid: Vec<Scenario> = (0..len).map(|_| g.scenario()).collect();
        let text = wire::encode_grid(&grid);
        let back = wire::decode_grid(&text);
        prop_assert_eq!(back.as_ref(), Ok(&grid));
        if grid.is_empty() {
            prop_assert_eq!(text, "[]\n".to_string(), "empty grids have a canonical encoding");
        }
        // Canonical: encoding the decoded grid is byte-identical.
        prop_assert_eq!(wire::encode_grid(&back.unwrap()), wire::encode_grid(&grid));
    }
}
